//! Time-series sampling of the metric registry — the signal-history
//! substrate of the ops plane.
//!
//! A [`MetricSampler`] walks a [`Registry`] on a caller-driven cadence and
//! copies every metric's current state into fixed-capacity ring buffers.
//! From those frames it computes *windowed derivatives* that point-in-time
//! snapshots cannot express: counter rates (reset-aware, Prometheus
//! `increase` semantics), gauge extrema, and histogram-delta percentiles
//! (the p50/p95/p99 of only the samples recorded *inside* a window).
//!
//! Time is supplied by the caller in microseconds, so the sampler works
//! identically against wall-clock time and the repo's simulated time — the
//! deterministic tests drive it with simulated timestamps.
//!
//! Hot-path cost: in steady state a [`MetricSampler::sample`] re-reads the
//! tracked metrics through their cached handles straight into pre-sized
//! rings — no allocation, no string hashing. Allocation happens only when
//! a metric is *discovered* (first tick that sees it), detected cheaply by
//! comparing [`Registry::len`] against the tracked count.
//!
//! ```
//! use std::sync::Arc;
//! use megastream_telemetry::{MetricSampler, SamplerConfig, Telemetry};
//!
//! let tel = Telemetry::new();
//! let counter = tel.counter("requests_total");
//! if let Some(registry) = tel.registry() {
//!     let mut sampler = MetricSampler::new(Arc::clone(registry), SamplerConfig::default());
//!     sampler.force_sample(0);
//!     counter.add(30);
//!     sampler.force_sample(2_000_000); // t = 2 s
//!     assert_eq!(sampler.counter_delta("requests_total", 2_000_000), Some(30));
//!     assert_eq!(sampler.counter_rate("requests_total", 2_000_000), Some(15.0));
//! }
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::metrics::{Counter, Gauge, Histogram};
use crate::registry::{MetricHandle, Registry};

/// Configuration of a [`MetricSampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Minimum spacing between frames for [`MetricSampler::sample`]
    /// (microseconds). Calls arriving earlier are no-ops.
    pub cadence_micros: u64,
    /// Frames each ring holds; the oldest frame is overwritten when full.
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            // One frame per second, ten minutes of history.
            cadence_micros: 1_000_000,
            capacity: 600,
        }
    }
}

/// Prometheus-style `increase` over an observed cumulative sequence:
/// monotone steps contribute their delta; a drop is a *counter reset* and
/// the post-reset value counts as increments since the reset. Never
/// negative, never panics.
pub fn monotonic_increase<I: IntoIterator<Item = u64>>(values: I) -> u64 {
    let mut iter = values.into_iter();
    let Some(mut prev) = iter.next() else {
        return 0;
    };
    let mut total = 0u64;
    for v in iter {
        total = total.saturating_add(if v >= prev { v - prev } else { v });
        prev = v;
    }
    total
}

/// One ring of `u64` frames, indexed by global tick number.
#[derive(Debug, Clone)]
struct Ring {
    slots: Vec<u64>,
    /// Tick at which this ring recorded its first frame.
    since: u64,
    /// One past the last recorded tick.
    until: u64,
}

impl Ring {
    fn new(capacity: usize, since: u64) -> Self {
        Ring {
            slots: vec![0; capacity.max(1)],
            since,
            until: since,
        }
    }

    fn push(&mut self, v: u64) {
        let cap = self.slots.len() as u64;
        self.slots[(self.until % cap) as usize] = v;
        self.until += 1;
        if self.until - self.since > cap {
            self.since = self.until - cap;
        }
    }

    /// The value recorded at global tick `t`, if still buffered.
    fn at(&self, t: u64) -> Option<u64> {
        if t < self.since || t >= self.until {
            return None;
        }
        Some(self.slots[(t % self.slots.len() as u64) as usize])
    }
}

#[derive(Debug)]
struct CounterSeries {
    name: String,
    handle: Counter,
    ring: Ring,
}

#[derive(Debug)]
struct GaugeSeries {
    name: String,
    handle: Gauge,
    /// Gauge values are `i64`; stored as raw bits to reuse [`Ring`].
    ring: Ring,
}

#[derive(Debug)]
struct HistSeries {
    name: String,
    handle: Histogram,
    bounds: Vec<u64>,
    /// Cumulative per-bucket counts, flattened: frame `t` occupies
    /// `[slot(t) * stride, (slot(t) + 1) * stride)`.
    buckets: Vec<u64>,
    stride: usize,
    counts: Ring,
    sums: Ring,
}

/// A windowed view of one histogram: the per-bucket sample counts recorded
/// between two frames, with reset-aware deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedHistogram {
    /// Inclusive bucket upper bounds (one fewer than `counts`).
    pub bounds: Vec<u64>,
    /// Samples per bucket recorded inside the window (overflow last).
    pub counts: Vec<u64>,
    /// Total samples recorded inside the window.
    pub count: u64,
    /// Sum of samples recorded inside the window.
    pub sum: u64,
    /// Wall/simulated time the window spans, in microseconds.
    pub span_micros: u64,
}

impl WindowedHistogram {
    /// Approximate quantile (`0.0..=1.0`) of the samples recorded inside
    /// the window: the inclusive upper bound of the bucket holding the
    /// q-th sample. Saturates at the last finite bound for samples in the
    /// overflow bucket (a windowed view has no per-window max), and
    /// returns 0 for an empty window.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&b) => b,
                    None => self.bounds.last().copied().unwrap_or(0),
                };
            }
        }
        self.bounds.last().copied().unwrap_or(0)
    }

    /// Samples per second recorded inside the window (0.0 for an
    /// instantaneous or empty window).
    pub fn rate_per_sec(&self) -> f64 {
        if self.span_micros == 0 {
            return 0.0;
        }
        self.count as f64 / (self.span_micros as f64 / 1e6)
    }

    /// Mean sample value inside the window (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fraction of windowed samples above `threshold` (0.0 if the window
    /// is empty). Bucketed approximation: a bucket counts as *above* unless
    /// its inclusive upper bound is ≤ `threshold`, so thresholds on bucket
    /// bounds are exact and others round pessimistically — the SLO
    /// burn-rate rules prefer a false alarm to a missed burn.
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut above = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            match self.bounds.get(i) {
                Some(&bound) if bound <= threshold => {}
                _ => above += c,
            }
        }
        above as f64 / self.count as f64
    }
}

/// Samples a [`Registry`] into fixed-capacity ring buffers and answers
/// windowed queries over the buffered history. See the module docs for
/// the model.
#[derive(Debug)]
pub struct MetricSampler {
    registry: Arc<Registry>,
    config: SamplerConfig,
    counters: Vec<CounterSeries>,
    gauges: Vec<GaugeSeries>,
    hists: Vec<HistSeries>,
    /// Global tick counter; rings index frames by it.
    ticks: u64,
    /// Stamp of every buffered tick (ring like the series rings).
    stamps: Ring,
    last_stamp: Option<u64>,
}

impl MetricSampler {
    /// A sampler over `registry` with the given cadence and capacity.
    pub fn new(registry: Arc<Registry>, config: SamplerConfig) -> Self {
        let capacity = config.capacity.max(2);
        MetricSampler {
            registry,
            config: SamplerConfig { capacity, ..config },
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            ticks: 0,
            stamps: Ring::new(capacity, 0),
            last_stamp: None,
        }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Number of frames currently buffered.
    pub fn frames(&self) -> usize {
        (self.stamps.until - self.stamps.since) as usize
    }

    /// Total frames recorded over the sampler's lifetime.
    pub fn total_frames(&self) -> u64 {
        self.ticks
    }

    /// Number of metric series being tracked.
    pub fn series(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// Records a frame if at least the configured cadence has elapsed
    /// since the previous one (or none exists yet). Returns whether a
    /// frame was recorded. `now_micros` must be non-decreasing across
    /// calls; an out-of-order stamp is ignored.
    pub fn sample(&mut self, now_micros: u64) -> bool {
        match self.last_stamp {
            Some(last) if now_micros < last.saturating_add(self.config.cadence_micros) => false,
            _ => {
                self.force_sample(now_micros);
                true
            }
        }
    }

    /// Records a frame unconditionally (cadence ignored).
    pub fn force_sample(&mut self, now_micros: u64) {
        if let Some(last) = self.last_stamp {
            if now_micros < last {
                return;
            }
        }
        self.discover();
        self.stamps.push(now_micros);
        for s in &mut self.counters {
            s.ring.push(s.handle.get());
        }
        for s in &mut self.gauges {
            s.ring.push(s.handle.get() as u64);
        }
        let cap = self.config.capacity;
        for s in &mut self.hists {
            let slot = (self.ticks % cap as u64) as usize;
            let base = slot * s.stride;
            let (count, sum) = match &s.handle.0 {
                Some(core) => {
                    for (i, bucket) in core.buckets.iter().enumerate() {
                        s.buckets[base + i] = bucket.load(Ordering::Relaxed);
                    }
                    (
                        core.count.load(Ordering::Relaxed),
                        core.sum.load(Ordering::Relaxed),
                    )
                }
                None => (0, 0),
            };
            s.counts.push(count);
            s.sums.push(sum);
        }
        self.ticks += 1;
        self.last_stamp = Some(now_micros);
    }

    /// Tracks any metrics registered since the last frame. Cheap when
    /// nothing changed: one `len()` comparison.
    fn discover(&mut self) {
        if self.registry.len() == self.series() {
            return;
        }
        let cap = self.config.capacity;
        for (name, handle) in self.registry.handles() {
            match handle {
                MetricHandle::Counter(h) => {
                    if !self.counters.iter().any(|s| s.name == name) {
                        self.counters.push(CounterSeries {
                            name,
                            handle: h,
                            ring: Ring::new(cap, self.ticks),
                        });
                    }
                }
                MetricHandle::Gauge(h) => {
                    if !self.gauges.iter().any(|s| s.name == name) {
                        self.gauges.push(GaugeSeries {
                            name,
                            handle: h,
                            ring: Ring::new(cap, self.ticks),
                        });
                    }
                }
                MetricHandle::Histogram(h) => {
                    if !self.hists.iter().any(|s| s.name == name) {
                        let stride = match &h.0 {
                            Some(core) => core.buckets.len(),
                            None => 0,
                        };
                        let bounds = match &h.0 {
                            Some(core) => core.bounds.clone(),
                            None => Vec::new(),
                        };
                        self.hists.push(HistSeries {
                            name,
                            handle: h,
                            bounds,
                            buckets: vec![0; stride * cap],
                            stride,
                            counts: Ring::new(cap, self.ticks),
                            sums: Ring::new(cap, self.ticks),
                        });
                    }
                }
            }
        }
    }

    /// The stamp of the newest buffered frame.
    pub fn latest_stamp(&self) -> Option<u64> {
        self.last_stamp
    }

    /// Whether the sampler has ever tracked a metric called `name` (of any
    /// kind). Health rules use this to distinguish a metric that exists but
    /// has too little history yet from one that was **never registered** —
    /// the latter usually means a misspelled rule or a component that never
    /// came up.
    pub fn has_metric(&self, name: &str) -> bool {
        self.counters.iter().any(|s| s.name == name)
            || self.gauges.iter().any(|s| s.name == name)
            || self.hists.iter().any(|s| s.name == name)
    }

    /// The ticks whose stamps fall inside `[newest - window, newest]`,
    /// as an inclusive `(first, last)` pair — `None` with fewer than two
    /// buffered frames (a window needs two endpoints).
    fn window_ticks(&self, window_micros: u64) -> Option<(u64, u64)> {
        if self.ticks - self.stamps.since < 2 {
            return None;
        }
        let last = self.ticks - 1;
        let newest = self.stamps.at(last)?;
        let start_stamp = newest.saturating_sub(window_micros);
        let mut first = last;
        while first > self.stamps.since {
            match self.stamps.at(first - 1) {
                Some(s) if s >= start_stamp => first -= 1,
                _ => break,
            }
        }
        if first == last {
            // Window shorter than one cadence: use the adjacent frame.
            first = last - 1;
        }
        Some((first, last))
    }

    /// Reset-aware counter increase over the trailing `window_micros`.
    /// `None` if the counter is unknown or fewer than two frames cover it.
    pub fn counter_delta(&self, name: &str, window_micros: u64) -> Option<u64> {
        let s = self.counters.iter().find(|s| s.name == name)?;
        let (first, last) = self.window_ticks(window_micros)?;
        let first = first.max(s.ring.since);
        if last <= first || last >= s.ring.until {
            return None;
        }
        Some(monotonic_increase(
            (first..=last).filter_map(|t| s.ring.at(t)),
        ))
    }

    /// Counter increase per second over the trailing `window_micros`.
    pub fn counter_rate(&self, name: &str, window_micros: u64) -> Option<f64> {
        let delta = self.counter_delta(name, window_micros)?;
        let (first, last) = self.window_ticks(window_micros)?;
        let span = self.stamps.at(last)?.saturating_sub(self.stamps.at(first)?);
        if span == 0 {
            return Some(0.0);
        }
        Some(delta as f64 / (span as f64 / 1e6))
    }

    /// Per-frame reset-aware counter increases across the trailing
    /// `window_micros` — the series a sparkline renders. Oldest first.
    pub fn counter_increments(&self, name: &str, window_micros: u64) -> Vec<u64> {
        let Some(s) = self.counters.iter().find(|s| s.name == name) else {
            return Vec::new();
        };
        let Some((first, last)) = self.window_ticks(window_micros) else {
            return Vec::new();
        };
        let first = first.max(s.ring.since);
        let mut out = Vec::new();
        let mut prev: Option<u64> = None;
        for t in first..=last {
            let Some(v) = s.ring.at(t) else { continue };
            if let Some(p) = prev {
                out.push(if v >= p { v - p } else { v });
            }
            prev = Some(v);
        }
        out
    }

    /// The gauge's value in the newest frame.
    pub fn gauge_last(&self, name: &str) -> Option<i64> {
        let s = self.gauges.iter().find(|s| s.name == name)?;
        if self.ticks == 0 || self.ticks <= s.ring.since {
            return None;
        }
        s.ring.at(self.ticks - 1).map(|v| v as i64)
    }

    /// Per-frame gauge values across the trailing `window_micros`, oldest
    /// first — the series a sparkline renders.
    pub fn gauge_series(&self, name: &str, window_micros: u64) -> Vec<i64> {
        let Some(s) = self.gauges.iter().find(|s| s.name == name) else {
            return Vec::new();
        };
        let Some((first, last)) = self.window_ticks(window_micros) else {
            return Vec::new();
        };
        (first.max(s.ring.since)..=last)
            .filter_map(|t| s.ring.at(t).map(|v| v as i64))
            .collect()
    }

    /// The gauge's maximum across the trailing `window_micros`.
    pub fn gauge_max(&self, name: &str, window_micros: u64) -> Option<i64> {
        let s = self.gauges.iter().find(|s| s.name == name)?;
        let (first, last) = self.window_ticks(window_micros)?;
        (first.max(s.ring.since)..=last)
            .filter_map(|t| s.ring.at(t).map(|v| v as i64))
            .max()
    }

    /// Microseconds since the named counter or gauge last changed value,
    /// judged from the buffered frames (a lower bound when the change
    /// predates the ring). `None` for unknown metrics or a single frame.
    pub fn staleness_micros(&self, name: &str) -> Option<u64> {
        let ring = self
            .counters
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.ring)
            .or_else(|| self.gauges.iter().find(|s| s.name == name).map(|s| &s.ring))?;
        if self.ticks == 0 || self.ticks <= ring.since {
            return None;
        }
        let last = self.ticks - 1;
        let newest = ring.at(last)?;
        let newest_stamp = self.stamps.at(last)?;
        let mut t = last;
        while t > ring.since.max(self.stamps.since) {
            match ring.at(t - 1) {
                Some(v) if v == newest => t -= 1,
                _ => break,
            }
        }
        Some(newest_stamp.saturating_sub(self.stamps.at(t)?))
    }

    /// The histogram's reset-aware windowed view over the trailing
    /// `window_micros`: how many samples landed in each bucket *inside*
    /// the window. `None` if the histogram is unknown or not covered by
    /// two frames yet.
    pub fn histogram_window(&self, name: &str, window_micros: u64) -> Option<WindowedHistogram> {
        let s = self.hists.iter().find(|s| s.name == name)?;
        let (first, last) = self.window_ticks(window_micros)?;
        let first = first.max(s.counts.since);
        if last <= first || last >= s.counts.until {
            return None;
        }
        let cap = self.config.capacity as u64;
        let bucket_at = |t: u64, i: usize| -> u64 { s.buckets[(t % cap) as usize * s.stride + i] };
        let mut counts = vec![0u64; s.stride];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = monotonic_increase((first..=last).map(|t| bucket_at(t, i)));
        }
        let count = monotonic_increase((first..=last).filter_map(|t| s.counts.at(t)));
        let sum = monotonic_increase((first..=last).filter_map(|t| s.sums.at(t)));
        let span_micros = self.stamps.at(last)?.saturating_sub(self.stamps.at(first)?);
        Some(WindowedHistogram {
            bounds: s.bounds.clone(),
            counts,
            count,
            sum,
            span_micros,
        })
    }

    /// Windowed quantile shorthand:
    /// `histogram_window(name, w).map(|h| h.quantile(q))`.
    pub fn window_quantile(&self, name: &str, q: f64, window_micros: u64) -> Option<u64> {
        Some(self.histogram_window(name, window_micros)?.quantile(q))
    }

    /// Names of all tracked counters, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.counters.iter().map(|s| s.name.clone()).collect();
        v.sort();
        v
    }

    /// Names of all tracked gauges, sorted.
    pub fn gauge_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.gauges.iter().map(|s| s.name.clone()).collect();
        v.sort();
        v
    }

    /// Names of all tracked histograms, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.hists.iter().map(|s| s.name.clone()).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, LATENCY_MICROS_BOUNDS};

    const SEC: u64 = 1_000_000;

    fn sampler(tel: &Telemetry, cadence: u64, cap: usize) -> MetricSampler {
        MetricSampler::new(
            Arc::clone(tel.registry().unwrap()),
            SamplerConfig {
                cadence_micros: cadence,
                capacity: cap,
            },
        )
    }

    #[test]
    fn cadence_gates_frames() {
        let tel = Telemetry::new();
        tel.counter("c").inc();
        let mut s = sampler(&tel, SEC, 16);
        assert!(s.sample(0));
        assert!(!s.sample(SEC / 2));
        assert!(s.sample(SEC));
        assert!(!s.sample(SEC)); // same stamp: below cadence
        assert_eq!(s.frames(), 2);
    }

    #[test]
    fn counter_rate_and_delta() {
        let tel = Telemetry::new();
        let c = tel.counter("events");
        let mut s = sampler(&tel, SEC, 16);
        s.force_sample(0);
        c.add(10);
        s.force_sample(SEC);
        c.add(30);
        s.force_sample(2 * SEC);
        assert_eq!(s.counter_delta("events", 2 * SEC), Some(40));
        assert_eq!(s.counter_delta("events", SEC), Some(30));
        let rate = s.counter_rate("events", 2 * SEC).unwrap();
        assert!((rate - 20.0).abs() < 1e-9, "{rate}");
        assert_eq!(s.counter_increments("events", 2 * SEC), vec![10, 30]);
    }

    #[test]
    fn monotonic_increase_handles_resets() {
        assert_eq!(monotonic_increase([5, 8, 12]), 7);
        // Reset: 12 → 3 counts the 3 post-reset increments.
        assert_eq!(monotonic_increase([5, 12, 3, 7]), 7 + 3 + 4);
        assert_eq!(monotonic_increase([7]), 0);
        assert_eq!(monotonic_increase([]), 0);
    }

    #[test]
    fn gauge_last_and_max() {
        let tel = Telemetry::new();
        let g = tel.gauge("depth");
        let mut s = sampler(&tel, SEC, 16);
        g.set(5);
        s.force_sample(0);
        g.set(-3);
        s.force_sample(SEC);
        assert_eq!(s.gauge_last("depth"), Some(-3));
        assert_eq!(s.gauge_max("depth", 2 * SEC), Some(5));
    }

    #[test]
    fn staleness_tracks_last_change() {
        let tel = Telemetry::new();
        let c = tel.counter("c");
        let mut s = sampler(&tel, SEC, 16);
        c.inc();
        s.force_sample(0);
        s.force_sample(SEC);
        s.force_sample(2 * SEC);
        assert_eq!(s.staleness_micros("c"), Some(2 * SEC));
        c.inc();
        s.force_sample(3 * SEC);
        assert_eq!(s.staleness_micros("c"), Some(0));
    }

    #[test]
    fn histogram_window_isolates_the_window() {
        let tel = Telemetry::new();
        let h = tel.histogram("lat", LATENCY_MICROS_BOUNDS);
        let mut s = sampler(&tel, SEC, 16);
        h.record(10); // before the first frame: invisible to windows
        s.force_sample(0);
        h.record(100);
        h.record(150);
        s.force_sample(SEC);
        h.record(5_000);
        s.force_sample(2 * SEC);
        let w = s.histogram_window("lat", SEC).unwrap();
        assert_eq!(w.count, 1);
        assert_eq!(w.quantile(0.99), 5_000);
        let w2 = s.histogram_window("lat", 2 * SEC).unwrap();
        assert_eq!(w2.count, 3);
        // Median of {100, 150, 5000} is 150 → bucket upper bound 200.
        assert_eq!(w2.quantile(0.5), 200);
        assert_eq!(w2.sum, 100 + 150 + 5_000);
        assert_eq!(w2.span_micros, 2 * SEC);
        assert!((w2.rate_per_sec() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_window_quantile_is_zero() {
        let tel = Telemetry::new();
        let h = tel.histogram("lat", LATENCY_MICROS_BOUNDS);
        h.record(10);
        let mut s = sampler(&tel, SEC, 16);
        s.force_sample(0);
        s.force_sample(SEC);
        let w = s.histogram_window("lat", SEC).unwrap();
        assert_eq!(w.count, 0);
        assert_eq!(w.quantile(0.5), 0);
        assert_eq!(w.rate_per_sec(), 0.0);
    }

    #[test]
    fn ring_eviction_keeps_recent_frames() {
        let tel = Telemetry::new();
        let c = tel.counter("c");
        let mut s = sampler(&tel, SEC, 4);
        for t in 0..10u64 {
            c.add(1);
            s.force_sample(t * SEC);
        }
        assert_eq!(s.frames(), 4);
        // Only the last 4 frames (values 7..=10) are visible.
        assert_eq!(s.counter_delta("c", 3 * SEC), Some(3));
        assert_eq!(s.counter_delta("c", 100 * SEC), Some(3));
    }

    #[test]
    fn late_metrics_join_midstream() {
        let tel = Telemetry::new();
        let mut s = sampler(&tel, SEC, 16);
        s.force_sample(0);
        let c = tel.counter("late");
        c.add(2);
        s.force_sample(SEC);
        c.add(3);
        s.force_sample(2 * SEC);
        assert_eq!(s.counter_delta("late", 2 * SEC), Some(3));
    }

    #[test]
    fn out_of_order_stamp_is_ignored() {
        let tel = Telemetry::new();
        tel.counter("c").inc();
        let mut s = sampler(&tel, SEC, 16);
        s.force_sample(5 * SEC);
        s.force_sample(SEC); // ignored
        assert_eq!(s.frames(), 1);
        assert_eq!(s.latest_stamp(), Some(5 * SEC));
    }

    #[test]
    fn steady_state_sampling_does_not_grow_series() {
        let tel = Telemetry::new();
        tel.counter("a").inc();
        tel.gauge("b").set(1);
        tel.histogram("c", &[1, 10]).record(5);
        let mut s = sampler(&tel, SEC, 8);
        s.force_sample(0);
        let series = s.series();
        for t in 1..50u64 {
            s.force_sample(t * SEC);
        }
        assert_eq!(s.series(), series);
    }
}
