//! Scoped-activity profiling: explicit call-path stacks aggregated into a
//! flamegraph.
//!
//! The paper's P4 property (self-adaptation) presumes the system can answer
//! "where does the time go?" — not just *how long* a stage took (the span
//! histograms already answer that) but *under which caller*. This module
//! adds that third observability axis next to metrics ([`crate::Telemetry`])
//! and causal traces ([`crate::Tracer`]):
//!
//! * A [`Profiler`] is a cheap cloneable handle, default-**disabled** like
//!   the other two: every instrumentation site costs exactly one branch
//!   when profiling is off, and the clock is never read.
//! * [`Profiler::activity`] pushes a named frame onto an explicit
//!   **per-thread activity stack** and returns an [`ActivityGuard`]; when
//!   the guard drops, the frame pops and its inclusive/exclusive time is
//!   folded into an aggregate keyed by the full call path (`a;b;c`).
//! * [`ProfileSnapshot::render_collapsed`] exports the aggregate in the
//!   collapsed-stack format `flamegraph.pl` consumes (`path count`, one
//!   line per path, counts in exclusive microseconds);
//!   [`ProfileSnapshot::render_top`] is the human-readable top-N table.
//!
//! All time is measured through [`crate::clock::Stopwatch`] — relative
//! durations only, so profiling can never leak an absolute timestamp into
//! a result path.
//!
//! ```
//! use megastream_telemetry::Profiler;
//!
//! let prof = Profiler::new();
//! {
//!     let _q = prof.activity("query");
//!     let _p = prof.activity("parse");
//!     std::thread::sleep(std::time::Duration::from_millis(2));
//! } // guards drop: paths "query" and "query;parse" are recorded
//! let snap = prof.snapshot();
//! assert_eq!(snap.activities.len(), 2);
//! assert!(snap.activities.iter().any(|a| a.path == "query;parse"));
//! assert!(snap.render_collapsed().contains("query;parse "));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

use crate::clock::{self, Stopwatch};

thread_local! {
    /// The explicit activity stack of this thread. One stack per thread —
    /// like a call stack — shared by every enabled [`Profiler`] handle, so
    /// nested activities compose into one path even across components.
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// A pushed-but-not-yet-popped activity on a thread's stack.
struct Frame {
    /// Full `;`-joined path including this activity.
    path: String,
    /// Inclusive microseconds accumulated by already-finished children,
    /// subtracted from this frame's inclusive time to get exclusive time.
    child_micros: u64,
}

/// Aggregate for one call path.
#[derive(Debug, Default, Clone, Copy)]
struct PathAgg {
    count: u64,
    inclusive_micros: u64,
    exclusive_micros: u64,
}

/// Shared aggregation state behind an enabled [`Profiler`].
#[derive(Debug, Default)]
struct ProfileStore {
    agg: Mutex<BTreeMap<String, PathAgg>>,
}

impl ProfileStore {
    fn record(&self, path: &str, inclusive: u64, exclusive: u64) {
        let mut agg = match self.agg.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // BTreeMap keeps exports deterministic in path order.
        let e = agg.entry(path.to_owned()).or_default();
        e.count += 1;
        e.inclusive_micros += inclusive;
        e.exclusive_micros += exclusive;
    }
}

/// The profiling handle threaded through the pipeline. Cloning is cheap
/// (an `Option<Arc>` clone); `Default` is the *disabled* handle, so
/// instrumented code pays one branch — and never reads the clock — unless
/// a live profiler is installed.
#[derive(Debug, Clone, Default)]
pub struct Profiler(Option<Arc<ProfileStore>>);

impl Profiler {
    /// Creates an enabled profiler with an empty aggregate.
    pub fn new() -> Self {
        Profiler(Some(Arc::new(ProfileStore::default())))
    }

    /// The null handle: [`Profiler::activity`] returns inert guards.
    pub fn disabled() -> Self {
        Profiler(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Pushes activity `name` onto this thread's stack and returns the
    /// guard that pops it. Nested calls extend the path with `;`
    /// (collapsed-stack convention). Disabled handles return an inert
    /// guard without touching the stack or the clock.
    pub fn activity(&self, name: &str) -> ActivityGuard {
        let Some(store) = &self.0 else {
            return ActivityGuard {
                store: None,
                start: None,
                path: String::new(),
                _not_send: PhantomData,
            };
        };
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let path = match s.last() {
                Some(parent) => format!("{};{name}", parent.path),
                None => name.to_owned(),
            };
            s.push(Frame {
                path: path.clone(),
                child_micros: 0,
            });
            path
        });
        ActivityGuard {
            store: Some(Arc::clone(store)),
            start: Some(clock::start()),
            path,
            _not_send: PhantomData,
        }
    }

    /// Point-in-time copy of the aggregate, sorted by path.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let activities = match &self.0 {
            None => Vec::new(),
            Some(store) => {
                let agg = match store.agg.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                agg.iter()
                    .map(|(path, a)| ActivityStat {
                        path: path.clone(),
                        count: a.count,
                        inclusive_micros: a.inclusive_micros,
                        exclusive_micros: a.exclusive_micros,
                    })
                    .collect()
            }
        };
        ProfileSnapshot { activities }
    }

    /// Discards all aggregated paths (the per-thread stacks of live guards
    /// are untouched).
    pub fn clear(&self) {
        if let Some(store) = &self.0 {
            let mut agg = match store.agg.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            agg.clear();
        }
    }
}

/// RAII frame on the per-thread activity stack: created by
/// [`Profiler::activity`], pops and records on drop.
///
/// Deliberately `!Send`: a frame must pop on the thread that pushed it.
/// Worker threads open their own activities (their stacks start fresh, so
/// their paths are rooted at the worker's first activity).
#[derive(Debug)]
pub struct ActivityGuard {
    store: Option<Arc<ProfileStore>>,
    start: Option<Stopwatch>,
    path: String,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ActivityGuard {
    fn drop(&mut self) {
        let Some(store) = self.store.take() else {
            return;
        };
        let inclusive = match &self.start {
            Some(sw) => sw.elapsed_micros(),
            None => 0,
        };
        let child_micros = STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop until our own frame surfaces: guards dropped out of
            // order (e.g. via `mem::drop` shuffling) discard the orphaned
            // deeper frames instead of corrupting the stack.
            let mine = loop {
                match s.pop() {
                    Some(f) if f.path == self.path => break Some(f),
                    Some(_) => continue,
                    None => break None,
                }
            };
            if let Some(parent) = s.last_mut() {
                parent.child_micros += inclusive;
            }
            mine.map(|f| f.child_micros).unwrap_or(0)
        });
        let exclusive = inclusive.saturating_sub(child_micros);
        store.record(&self.path, inclusive, exclusive);
    }
}

/// One aggregated call path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityStat {
    /// `;`-joined path from the thread's root activity to this one.
    pub path: String,
    /// How many times this exact path completed.
    pub count: u64,
    /// Total microseconds including children.
    pub inclusive_micros: u64,
    /// Total microseconds excluding children (self time).
    pub exclusive_micros: u64,
}

impl ActivityStat {
    /// The leaf activity name (the last `;` segment).
    pub fn leaf(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }
}

/// Point-in-time aggregate of every completed activity path.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// All paths, sorted lexicographically by path.
    pub activities: Vec<ActivityStat>,
}

impl ProfileSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// Total self time across all paths (equals total inclusive time of
    /// root activities).
    pub fn total_micros(&self) -> u64 {
        self.activities.iter().map(|a| a.exclusive_micros).sum()
    }

    /// Collapsed-stack export, one `path count` line per path with
    /// non-zero self time, `flamegraph.pl`-compatible (counts are
    /// exclusive microseconds). Lines are sorted by path, so the export
    /// is deterministic for a given aggregate.
    pub fn render_collapsed(&self) -> String {
        let mut out = String::new();
        for a in &self.activities {
            if a.exclusive_micros > 0 {
                out.push_str(&format!("{} {}\n", a.path, a.exclusive_micros));
            }
        }
        out
    }

    /// Human-readable top-`n` table by exclusive (self) time.
    pub fn render_top(&self, n: usize) -> String {
        let mut ranked: Vec<&ActivityStat> = self.activities.iter().collect();
        ranked.sort_by(|a, b| {
            b.exclusive_micros
                .cmp(&a.exclusive_micros)
                .then_with(|| a.path.cmp(&b.path))
        });
        let total = self.total_micros().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>10}  {:>6}  {:>8}  {:>10}  path\n",
            "self µs", "%", "calls", "incl µs"
        ));
        for a in ranked.into_iter().take(n) {
            out.push_str(&format!(
                "{:>10}  {:>5.1}%  {:>8}  {:>10}  {}\n",
                a.exclusive_micros,
                a.exclusive_micros as f64 * 100.0 / total as f64,
                a.count,
                a.inclusive_micros,
                a.path,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        {
            let _a = prof.activity("a");
            let _b = prof.activity("b");
        }
        assert!(prof.snapshot().is_empty());
        assert_eq!(prof.snapshot().render_collapsed(), "");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Profiler::default().is_enabled());
    }

    #[test]
    fn nesting_builds_semicolon_paths() {
        let prof = Profiler::new();
        {
            let _q = prof.activity("query");
            {
                let _p = prof.activity("parse");
            }
            {
                let _m = prof.activity("merge");
                let _i = prof.activity("inner");
            }
        }
        let snap = prof.snapshot();
        let paths: Vec<&str> = snap.activities.iter().map(|a| a.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["query", "query;merge", "query;merge;inner", "query;parse"]
        );
        assert!(snap.activities.iter().all(|a| a.count == 1));
    }

    #[test]
    fn exclusive_excludes_children_inclusive_does_not() {
        let prof = Profiler::new();
        {
            let _outer = prof.activity("outer");
            {
                let _inner = prof.activity("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = prof.snapshot();
        let outer = snap
            .activities
            .iter()
            .find(|a| a.path == "outer")
            .expect("outer recorded");
        let inner = snap
            .activities
            .iter()
            .find(|a| a.path == "outer;inner")
            .expect("inner recorded");
        assert!(inner.inclusive_micros >= 2000);
        assert!(outer.inclusive_micros >= inner.inclusive_micros);
        // Outer self time excludes the slept-in child.
        assert!(outer.exclusive_micros <= outer.inclusive_micros - inner.inclusive_micros + 1000);
        assert_eq!(inner.inclusive_micros, inner.exclusive_micros);
    }

    #[test]
    fn repeated_paths_aggregate() {
        let prof = Profiler::new();
        for _ in 0..5 {
            let _a = prof.activity("tick");
        }
        let snap = prof.snapshot();
        assert_eq!(snap.activities.len(), 1);
        assert_eq!(snap.activities[0].count, 5);
    }

    #[test]
    fn collapsed_stack_lines_parse() {
        let prof = Profiler::new();
        {
            let _a = prof.activity("a");
            let _b = prof.activity("b");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        for line in prof.snapshot().render_collapsed().lines() {
            let (path, count) = line.rsplit_once(' ').expect("space-separated");
            assert!(!path.is_empty());
            assert!(path.split(';').all(|f| !f.is_empty()), "no empty frames");
            assert!(count.parse::<u64>().expect("count parses") > 0);
        }
    }

    #[test]
    fn threads_have_independent_stacks() {
        let prof = Profiler::new();
        let _main = prof.activity("main");
        std::thread::scope(|scope| {
            let p = prof.clone();
            scope.spawn(move || {
                // The worker's stack starts empty: no "main;" prefix.
                let _w = p.activity("worker");
            });
        });
        drop(_main);
        let snap = prof.snapshot();
        let paths: Vec<&str> = snap.activities.iter().map(|a| a.path.as_str()).collect();
        assert_eq!(paths, vec!["main", "worker"]);
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_stack() {
        let prof = Profiler::new();
        let a = prof.activity("a");
        let b = prof.activity("b");
        drop(a); // drops before b: b's frame is discarded from the stack
        drop(b);
        {
            let _c = prof.activity("c");
        }
        let snap = prof.snapshot();
        // "c" is a fresh root, not nested under a stale frame.
        assert!(snap.activities.iter().any(|x| x.path == "c"));
    }

    #[test]
    fn clear_resets_aggregate() {
        let prof = Profiler::new();
        {
            let _a = prof.activity("a");
        }
        assert!(!prof.snapshot().is_empty());
        prof.clear();
        assert!(prof.snapshot().is_empty());
    }

    #[test]
    fn top_table_ranks_by_self_time() {
        let prof = Profiler::new();
        {
            let _fast = prof.activity("fast");
        }
        {
            let _slow = prof.activity("slow");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let top = prof.snapshot().render_top(1);
        assert!(top.contains("slow"));
        assert!(!top.contains("fast"));
    }

    #[test]
    fn leaf_returns_last_segment() {
        let s = ActivityStat {
            path: "a;b;c".into(),
            count: 1,
            inclusive_micros: 1,
            exclusive_micros: 1,
        };
        assert_eq!(s.leaf(), "c");
    }
}
