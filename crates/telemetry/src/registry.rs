//! The sharded metric registry and its snapshot/export machinery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64};
use std::sync::{Arc, Mutex};

use crate::json;
use crate::metrics::{Counter, Gauge, HistCore, Histogram, HistogramSnapshot};

const SHARD_COUNT: usize = 16;

/// One registered metric. Kinds are fixed at first registration.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistCore>),
}

/// A concurrent registry of named metrics.
///
/// Lookups take one short-lived lock on one of 16 name-hashed shards; the
/// returned handles then record through lock-free atomics, so the hot path
/// (ingest loops, per-query timers) never contends on the registry itself.
/// Register handles once and reuse them where possible.
#[derive(Debug, Default)]
pub struct Registry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

/// FNV-1a, used only to pick a shard for a metric name.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARD_COUNT
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Locks one shard, recovering from poisoning: metric cells are plain
    /// atomics, so a panic mid-insert cannot leave them inconsistent.
    fn lock_shard(
        shard: &Mutex<HashMap<String, Metric>>,
    ) -> std::sync::MutexGuard<'_, HashMap<String, Metric>> {
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn shard(&self, name: &str) -> std::sync::MutexGuard<'_, HashMap<String, Metric>> {
        Self::lock_shard(&self.shards[shard_of(name)])
    }

    /// Returns the counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut shard = self.shard(name);
        let metric = shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(cell) => Counter(Some(Arc::clone(cell))),
            _ => panic!("telemetry metric {name:?} already registered as a non-counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut shard = self.shard(name);
        let metric = shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))));
        match metric {
            Metric::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            _ => panic!("telemetry metric {name:?} already registered as a non-gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given inclusive upper `bounds` on first use. Later calls reuse the
    /// original bounds and ignore the argument.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut shard = self.shard(name);
        let metric = shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistCore::new(bounds))));
        match metric {
            Metric::Histogram(core) => Histogram(Some(Arc::clone(core))),
            _ => panic!("telemetry metric {name:?} already registered as a non-histogram"),
        }
    }

    /// Number of registered metrics across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock_shard(s).len()).sum()
    }

    /// Whether no metrics have been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live handles to every registered metric, in no particular order.
    /// Intended for pollers (the time-series sampler) that cache the
    /// handles and thereafter read values lock-free.
    pub fn handles(&self) -> Vec<(String, MetricHandle)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = Self::lock_shard(shard);
            for (name, metric) in shard.iter() {
                let handle = match metric {
                    Metric::Counter(cell) => MetricHandle::Counter(Counter(Some(Arc::clone(cell)))),
                    Metric::Gauge(cell) => MetricHandle::Gauge(Gauge(Some(Arc::clone(cell)))),
                    Metric::Histogram(core) => {
                        MetricHandle::Histogram(Histogram(Some(Arc::clone(core))))
                    }
                };
                out.push((name.clone(), handle));
            }
        }
        out
    }

    /// Takes a consistent-enough point-in-time copy of every metric, sorted
    /// by name within each kind. (Individual metrics are read atomically;
    /// cross-metric skew is possible under concurrent writes.)
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.shards {
            let shard = Self::lock_shard(shard);
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(cell) => snap.counters.push((
                        name.clone(),
                        cell.load(std::sync::atomic::Ordering::Relaxed),
                    )),
                    Metric::Gauge(cell) => snap.gauges.push((
                        name.clone(),
                        cell.load(std::sync::atomic::Ordering::Relaxed),
                    )),
                    Metric::Histogram(core) => snap
                        .histograms
                        .push((name.clone(), HistogramSnapshot::from_core(core))),
                }
            }
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

/// A live handle to one registered metric of any kind — what
/// [`Registry::handles`] enumerates.
#[derive(Debug, Clone)]
pub enum MetricHandle {
    /// A counter handle.
    Counter(Counter),
    /// A gauge handle.
    Gauge(Gauge),
    /// A histogram handle.
    Histogram(Histogram),
}

/// A point-in-time copy of an entire registry, sorted by metric name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Total number of metrics captured.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders a human-readable multi-line report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} min={} max={} mean={:.1} p50~{} p99~{}\n",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
            ));
        }
        out
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {"bounds":
    /// [..], "counts": [..], "count": n, "sum": n, "min": n, "max": n}}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push_str(":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str(&format!(
                "],\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                h.count, h.sum, h.min, h.max
            ));
        }
        out.push_str("}}");
        out
    }
}
