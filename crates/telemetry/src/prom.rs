//! Prometheus text-format exposition for registry [`Snapshot`]s.
//!
//! The registry stores labeled series as flat `base{key=value}` names
//! (see [`crate::labeled`]); this module parses those back into base
//! name + label pairs, sanitizes names into the Prometheus charset,
//! escapes label values, and renders the `# TYPE`-grouped text format.
//! Histograms are exposed with *cumulative* `_bucket{le="..."}` series —
//! every configured bucket is emitted even at zero count, plus the
//! `+Inf` bucket, `_sum`, and `_count`, so scrapes are well-formed.

use crate::registry::Snapshot;

/// Maps a metric name into the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; out-of-charset bytes (dots, dashes,
/// spaces, anything else) become `_`.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be escaped.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Splits an internal `base{key=value,key2=value2}` series name into its
/// sanitized base and label pairs (keys sanitized, values verbatim for
/// later escaping). Names without a label block pass through whole.
fn split_series(name: &str) -> (String, Vec<(String, String)>) {
    let Some(open) = name.find('{') else {
        return (sanitize_name(name), Vec::new());
    };
    if !name.ends_with('}') {
        return (sanitize_name(name), Vec::new());
    }
    let base = sanitize_name(&name[..open]);
    let body = &name[open + 1..name.len() - 1];
    let mut labels = Vec::new();
    for pair in body.split(',') {
        if pair.is_empty() {
            continue;
        }
        match pair.split_once('=') {
            Some((k, v)) => labels.push((sanitize_name(k), v.to_owned())),
            None => labels.push((sanitize_name(pair), String::new())),
        }
    }
    (base, labels)
}

/// Renders a `{k="v",...}` block (empty string when no labels), with an
/// optional extra label appended (used for `le`).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
    }
    out.push('}');
    out
}

/// Emits a `# TYPE` header the first time each base name appears.
fn type_line(out: &mut String, last_base: &mut String, base: &str, kind: &str) {
    if last_base != base {
        out.push_str(&format!("# TYPE {base} {kind}\n"));
        last_base.clear();
        last_base.push_str(base);
    }
}

/// Series sorted for grouped emission: `(sanitized base, labels, payload)`.
type Series<T> = Vec<(String, Vec<(String, String)>, T)>;

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Internal `base{key=value}` series names become labeled series
    /// under a shared sanitized base name with one `# TYPE` line per
    /// base; label values are escaped; histograms emit cumulative
    /// `_bucket` series for every bound (including zero-count buckets)
    /// plus `+Inf`, `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();

        let mut counters: Series<u64> = self
            .counters
            .iter()
            .map(|(name, v)| {
                let (base, labels) = split_series(name);
                (base, labels, *v)
            })
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        for (base, labels, value) in &counters {
            type_line(&mut out, &mut last_base, base, "counter");
            out.push_str(&format!("{base}{} {value}\n", render_labels(labels, None)));
        }

        last_base.clear();
        let mut gauges: Series<i64> = self
            .gauges
            .iter()
            .map(|(name, v)| {
                let (base, labels) = split_series(name);
                (base, labels, *v)
            })
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (base, labels, value) in &gauges {
            type_line(&mut out, &mut last_base, base, "gauge");
            out.push_str(&format!("{base}{} {value}\n", render_labels(labels, None)));
        }

        last_base.clear();
        let mut hists: Series<usize> = self
            .histograms
            .iter()
            .enumerate()
            .map(|(i, (name, _))| {
                let (base, labels) = split_series(name);
                (base, labels, i)
            })
            .collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        for (base, labels, idx) in &hists {
            let h = &self.histograms[*idx].1;
            type_line(&mut out, &mut last_base, base, "histogram");
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                out.push_str(&format!(
                    "{base}_bucket{} {cumulative}\n",
                    render_labels(labels, Some(("le", &bound.to_string())))
                ));
            }
            out.push_str(&format!(
                "{base}_bucket{} {}\n",
                render_labels(labels, Some(("le", "+Inf"))),
                h.count
            ));
            out.push_str(&format!(
                "{base}_sum{} {}\n",
                render_labels(labels, None),
                h.sum
            ));
            out.push_str(&format!(
                "{base}_count{} {}\n",
                render_labels(labels, None),
                h.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{labeled, Telemetry};

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("flowdb.exec.total"), "flowdb_exec_total");
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn escapes_label_values() {
        let tel = Telemetry::new();
        tel.counter(&labeled("hits", "path", "a\\b\"c\nd")).add(1);
        let text = tel.snapshot().render_prometheus();
        assert!(text.contains("hits{path=\"a\\\\b\\\"c\\nd\"} 1"));
    }

    #[test]
    fn groups_labeled_series_under_one_type_line() {
        let tel = Telemetry::new();
        tel.counter(&labeled("flowdb.exec.total", "op", "topk"))
            .add(3);
        tel.counter(&labeled("flowdb.exec.total", "op", "count"))
            .add(5);
        let text = tel.snapshot().render_prometheus();
        assert_eq!(text.matches("# TYPE flowdb_exec_total counter").count(), 1);
        assert!(text.contains("flowdb_exec_total{op=\"topk\"} 3"));
        assert!(text.contains("flowdb_exec_total{op=\"count\"} 5"));
    }

    #[test]
    fn histograms_emit_every_bucket_cumulatively() {
        let tel = Telemetry::new();
        let h = tel.histogram("lat", &[10, 100, 1000]);
        h.record(5);
        h.record(500);
        h.record(5000); // overflow
        let text = tel.snapshot().render_prometheus();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"10\"} 1"));
        // The 100 bucket saw nothing directly; cumulative still emitted.
        assert!(text.contains("lat_bucket{le=\"100\"} 1"));
        assert!(text.contains("lat_bucket{le=\"1000\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 5505"));
        assert!(text.contains("lat_count 3"));
    }

    #[test]
    fn zero_count_histogram_is_fully_emitted() {
        let tel = Telemetry::new();
        let _h = tel.histogram("empty", &[1, 2]);
        let text = tel.snapshot().render_prometheus();
        assert!(text.contains("empty_bucket{le=\"1\"} 0"));
        assert!(text.contains("empty_bucket{le=\"2\"} 0"));
        assert!(text.contains("empty_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("empty_sum 0"));
        assert!(text.contains("empty_count 0"));
    }

    #[test]
    fn gauges_render_with_type() {
        let tel = Telemetry::new();
        tel.gauge("store.depth").set(-4);
        let text = tel.snapshot().render_prometheus();
        assert!(text.contains("# TYPE store_depth gauge"));
        assert!(text.contains("store_depth -4"));
    }
}
