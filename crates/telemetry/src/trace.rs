//! Causal tracing: connected span trees across the hierarchy.
//!
//! The metrics layer answers "how much, how often"; this module answers
//! *which* levels, stores, and operators one particular query or export
//! pass touched, and where its time went. The model follows the usual
//! distributed-tracing shape:
//!
//! * A **trace** is one causal episode (a FlowQL query, one
//!   `hierarchy.pump` pass, one replication decision), identified by a
//!   [`TraceId`].
//! * A **span** is one timed stage inside it, identified by a [`SpanId`]
//!   and linked to its parent span. Spans carry string attributes plus
//!   dedicated byte/record payload annotations, so a span tree doubles as
//!   a lineage tree ("this merge consumed 3 summaries, 12 kB").
//! * A [`SpanContext`] is the copyable `(trace, span)` pair that crosses
//!   component boundaries: a child store stamps its export span's context
//!   onto the transfer, and the parent's re-aggregation opens its span
//!   *under* that context — the two ends of the link share one tree.
//!
//! The discipline matches the metrics layer: [`Tracer`] is an
//! `Option<Arc<TraceStore>>`; the default (disabled) handle makes every
//! span operation a single branch — no clock reads, no allocation. With a
//! live store, **head-based sampling** decides once per trace root
//! (always / never / every-Nth) and unsampled traces cost the same single
//! branch downstream. Finished spans land in a lock-sharded ring buffer
//! ([`TraceStore`]) whose oldest spans are overwritten under pressure.
//!
//! ```
//! use megastream_telemetry::trace::Tracer;
//!
//! let tracer = Tracer::new();
//! {
//!     let mut root = tracer.root("query");
//!     let mut fanout = root.child("fanout");
//!     fanout.annotate("location", "region-0");
//!     fanout.add_bytes(1024);
//!     fanout.finish();
//!     root.child("merge").finish();
//! }
//! let snap = tracer.snapshot();
//! assert_eq!(snap.spans.len(), 3);
//! assert!(snap.render_tree().contains("merge"));
//! assert!(snap.render_chrome_json().starts_with("{\"traceEvents\":["));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{self, Stopwatch};

use crate::json;

const SHARD_COUNT: usize = 16;

/// Default total span capacity of a [`TraceStore`].
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// Identifier of one causal episode. Allocated monotonically per store,
/// never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifier of one span. Allocation order is creation order, so sorting
/// a trace's spans by id yields a stable parent-before-child ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The copyable context that propagates a trace across component
/// boundaries: "whatever you do with this payload, file it under me."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace this context belongs to.
    pub trace: TraceId,
    /// The span that new work should link to as its parent.
    pub span: SpanId,
}

/// Head-based sampling policy: decided once when a trace root is opened,
/// inherited by every descendant span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplePolicy {
    /// Record every trace.
    #[default]
    Always,
    /// Record no traces (the store stays reachable for explicit contexts).
    Never,
    /// Record one of every `n` trace roots (n = 0 behaves like `Never`).
    EveryNth(u64),
}

/// One finished span as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id (creation-ordered).
    pub id: SpanId,
    /// The parent span, `None` for trace roots.
    pub parent: Option<SpanId>,
    /// The stage label, e.g. `flowstream.query` or `fanout`.
    pub name: String,
    /// Start time in microseconds since the store was created.
    pub start_micros: u64,
    /// Elapsed microseconds.
    pub duration_micros: u64,
    /// Payload bytes attributed to this span (0 if not annotated).
    pub bytes: u64,
    /// Payload records/summaries attributed to this span (0 if none).
    pub records: u64,
    /// Free-form `(key, value)` attributes, in annotation order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[derive(Debug, Default)]
struct Shard {
    spans: VecDeque<SpanRecord>,
}

/// The lock-sharded ring buffer finished spans land in.
///
/// Spans are sharded by span id; each shard holds at most
/// `capacity / SHARD_COUNT` records and overwrites its oldest span when
/// full (the `dropped` counter keeps the loss observable). All clocks are
/// relative to the store's creation instant, so spans from different
/// threads order consistently.
#[derive(Debug)]
pub struct TraceStore {
    epoch: Stopwatch,
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    policy: SamplePolicy,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    roots_seen: AtomicU64,
    roots_sampled: AtomicU64,
    dropped: AtomicU64,
}

impl TraceStore {
    /// Creates a store with the given sampling policy and total span
    /// capacity (rounded up to a multiple of the shard count).
    pub fn with_policy_and_capacity(policy: SamplePolicy, capacity: usize) -> Self {
        TraceStore {
            epoch: clock::start(),
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(SHARD_COUNT).max(1),
            policy,
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            roots_seen: AtomicU64::new(0),
            roots_sampled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creates an always-sampling store with [`DEFAULT_TRACE_CAPACITY`].
    pub fn new() -> Self {
        TraceStore::with_policy_and_capacity(SamplePolicy::Always, DEFAULT_TRACE_CAPACITY)
    }

    /// The sampling policy in force.
    pub fn policy(&self) -> SamplePolicy {
        self.policy
    }

    /// Trace roots opened (sampled or not).
    pub fn roots_seen(&self) -> u64 {
        self.roots_seen.load(Ordering::Relaxed)
    }

    /// Trace roots the head-based decision kept.
    pub fn roots_sampled(&self) -> u64 {
        self.roots_sampled.load(Ordering::Relaxed)
    }

    /// Spans overwritten by ring-buffer pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn sample_decision(&self) -> bool {
        let seen = self.roots_seen.fetch_add(1, Ordering::Relaxed);
        let keep = match self.policy {
            SamplePolicy::Always => true,
            SamplePolicy::Never => false,
            SamplePolicy::EveryNth(0) => false,
            SamplePolicy::EveryNth(n) => seen.is_multiple_of(n),
        };
        if keep {
            self.roots_sampled.fetch_add(1, Ordering::Relaxed);
        }
        keep
    }

    fn alloc_trace(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    fn alloc_span(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    fn micros_since_epoch(&self, at: Stopwatch) -> u64 {
        at.micros_since(&self.epoch)
    }

    fn push(&self, record: SpanRecord) {
        let shard = (record.id.0 as usize) % SHARD_COUNT;
        let mut shard = match self.shards[shard].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if shard.spans.len() >= self.per_shard_capacity {
            shard.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.spans.push_back(record);
    }

    /// Copies out every stored span, sorted by span id (creation order).
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut spans = Vec::new();
        for shard in &self.shards {
            let shard = match shard.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            spans.extend(shard.spans.iter().cloned());
        }
        spans.sort_by_key(|s| s.id);
        TraceSnapshot {
            spans,
            roots_seen: self.roots_seen(),
            roots_sampled: self.roots_sampled(),
            dropped: self.dropped(),
        }
    }

    /// Discards every stored span (sampling counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            match shard.lock() {
                Ok(mut guard) => guard.spans.clear(),
                Err(poisoned) => poisoned.into_inner().spans.clear(),
            }
        }
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

/// The pipeline-facing tracing handle: either a live shared [`TraceStore`]
/// or a null handle whose every operation is a no-op. `Default` is the
/// *disabled* handle, mirroring [`crate::Telemetry`].
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Arc<TraceStore>>);

impl Tracer {
    /// Creates an enabled, always-sampling handle with a fresh store.
    pub fn new() -> Self {
        Tracer(Some(Arc::new(TraceStore::new())))
    }

    /// Creates an enabled handle sampling one of every `n` trace roots.
    pub fn sampled_every(n: u64) -> Self {
        Tracer(Some(Arc::new(TraceStore::with_policy_and_capacity(
            SamplePolicy::EveryNth(n),
            DEFAULT_TRACE_CAPACITY,
        ))))
    }

    /// The null handle: roots and spans are no-ops.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// Creates a handle sharing an existing store.
    pub fn with_store(store: Arc<TraceStore>) -> Self {
        Tracer(Some(store))
    }

    /// Whether this handle records into a live store.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The underlying store, if enabled.
    pub fn store(&self) -> Option<&Arc<TraceStore>> {
        self.0.as_ref()
    }

    /// Opens a new trace root. The head-based sampling decision is made
    /// here: an unsampled (or disabled) root returns a null span, and all
    /// of its descendants stay null for one branch each.
    pub fn root(&self, name: &str) -> TraceSpan {
        match &self.0 {
            None => TraceSpan::null(),
            Some(store) => {
                if !store.sample_decision() {
                    return TraceSpan::null();
                }
                let trace = store.alloc_trace();
                TraceSpan::live(Arc::clone(store), trace, None, name)
            }
        }
    }

    /// Opens a span *inside an existing trace*, linked under `ctx`. This is
    /// the cross-component half of propagation: the caller received the
    /// context stamped onto a payload (an exported summary, a replication
    /// order) and files its own work under it. No sampling decision is
    /// made — holding a context means the trace was sampled.
    pub fn span_in(&self, ctx: SpanContext, name: &str) -> TraceSpan {
        match &self.0 {
            None => TraceSpan::null(),
            Some(store) => TraceSpan::live(Arc::clone(store), ctx.trace, Some(ctx.span), name),
        }
    }

    /// Point-in-time copy of all finished spans (empty when disabled).
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.0 {
            None => TraceSnapshot::default(),
            Some(store) => store.snapshot(),
        }
    }

    /// Discards all stored spans (no-op when disabled).
    pub fn clear(&self) {
        if let Some(store) = &self.0 {
            store.clear();
        }
    }

    /// Convenience: [`TraceSnapshot::render_tree`] of the current state.
    pub fn render_tree(&self) -> String {
        self.snapshot().render_tree()
    }

    /// Convenience: [`TraceSnapshot::render_chrome_json`] of the current
    /// state.
    pub fn render_chrome_json(&self) -> String {
        self.snapshot().render_chrome_json()
    }
}

/// An active span. Finished (explicitly or on drop) it files a
/// [`SpanRecord`] into the owning store. A null span — from a disabled
/// tracer or an unsampled trace — holds no store and never reads the
/// clock; every method on it is a single branch.
#[derive(Debug)]
pub struct TraceSpan {
    store: Option<Arc<TraceStore>>,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    start: Option<Stopwatch>,
    bytes: u64,
    records: u64,
    attrs: Vec<(String, String)>,
    finished: bool,
}

impl TraceSpan {
    /// A detached span that records nothing — the explicit-argument
    /// counterpart of [`Tracer::disabled`], for APIs that thread a parent
    /// span through call chains unconditionally.
    pub fn disabled() -> Self {
        TraceSpan::null()
    }

    fn null() -> Self {
        TraceSpan {
            store: None,
            trace: TraceId(0),
            id: SpanId(0),
            parent: None,
            name: String::new(),
            start: None,
            bytes: 0,
            records: 0,
            attrs: Vec::new(),
            finished: true,
        }
    }

    fn live(store: Arc<TraceStore>, trace: TraceId, parent: Option<SpanId>, name: &str) -> Self {
        let id = store.alloc_span();
        TraceSpan {
            store: Some(store),
            trace,
            id,
            parent,
            name: name.to_owned(),
            start: Some(clock::start()),
            bytes: 0,
            records: 0,
            attrs: Vec::new(),
            finished: false,
        }
    }

    /// Whether this span records anywhere (false for null spans).
    pub fn is_recording(&self) -> bool {
        self.store.is_some()
    }

    /// The context to stamp onto payloads so downstream work links here.
    /// `None` for null spans — callers propagate the `Option` as-is.
    pub fn context(&self) -> Option<SpanContext> {
        self.store.as_ref().map(|_| SpanContext {
            trace: self.trace,
            span: self.id,
        })
    }

    /// Opens a child span. Children of null spans are null.
    pub fn child(&self, name: &str) -> TraceSpan {
        match &self.store {
            None => TraceSpan::null(),
            Some(store) => TraceSpan::live(Arc::clone(store), self.trace, Some(self.id), name),
        }
    }

    /// Attaches a string attribute (no-op on null spans).
    pub fn annotate(&mut self, key: &str, value: &str) {
        if self.store.is_some() {
            self.attrs.push((key.to_owned(), value.to_owned()));
        }
    }

    /// Adds payload bytes to this span's annotation.
    pub fn add_bytes(&mut self, n: u64) {
        if self.store.is_some() {
            self.bytes += n;
        }
    }

    /// Adds payload records/summaries to this span's annotation.
    pub fn add_records(&mut self, n: u64) {
        if self.store.is_some() {
            self.records += n;
        }
    }

    /// Ends the span now, returning the elapsed microseconds (0 for null
    /// spans).
    pub fn finish(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        if self.finished {
            return 0;
        }
        self.finished = true;
        let (Some(store), Some(start)) = (self.store.take(), self.start) else {
            return 0;
        };
        let duration = start.elapsed_micros();
        store.push(SpanRecord {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_micros: store.micros_since_epoch(start),
            duration_micros: duration,
            bytes: self.bytes,
            records: self.records,
            attrs: std::mem::take(&mut self.attrs),
        });
        duration
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.record();
    }
}

/// A point-in-time copy of a [`TraceStore`], creation-ordered.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Every finished span still in the ring, sorted by span id.
    pub spans: Vec<SpanRecord>,
    /// Trace roots opened against the store.
    pub roots_seen: u64,
    /// Roots the head-based sampler kept.
    pub roots_sampled: u64,
    /// Spans lost to ring-buffer pressure.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Whether no spans were captured.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Distinct trace ids, ascending.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut out: Vec<TraceId> = self.spans.iter().map(|s| s.trace).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All spans of one trace, creation-ordered.
    pub fn trace(&self, id: TraceId) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.trace == id).collect()
    }

    /// Spans with the given name, across all traces.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Looks a span up by id.
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Renders every captured trace as an indented span tree:
    ///
    /// ```text
    /// trace 1 (3 spans)
    /// flowstream.query                            412 µs  flowql="SELECT …"
    /// ├─ parse                                      8 µs
    /// └─ fanout                                    90 µs  location=region-0  [3 rec, 12034 B]
    /// ```
    ///
    /// Spans whose parent fell out of the ring are promoted to roots so
    /// the render never loses spans silently.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for trace in self.trace_ids() {
            let spans = self.trace(trace);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("trace {} ({} spans)\n", trace.0, spans.len()),
            );
            let present: std::collections::HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
            let roots: Vec<&SpanRecord> = spans
                .iter()
                .filter(|s| s.parent.is_none_or(|p| !present.contains(&p)))
                .copied()
                .collect();
            for root in roots {
                self.render_subtree(&mut out, &spans, root, "", true, true);
            }
        }
        out
    }

    fn render_subtree(
        &self,
        out: &mut String,
        spans: &[&SpanRecord],
        node: &SpanRecord,
        prefix: &str,
        is_last: bool,
        is_root: bool,
    ) {
        let connector = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}└─ ")
        } else {
            format!("{prefix}├─ ")
        };
        let label = format!("{connector}{}", node.name);
        let mut line = format!("{label:<44}{:>8} µs", node.duration_micros);
        for (k, v) in &node.attrs {
            line.push_str(&format!("  {k}={v}"));
        }
        if node.records > 0 || node.bytes > 0 {
            line.push_str(&format!("  [{} rec, {} B]", node.records, node.bytes));
        }
        line.push('\n');
        out.push_str(&line);
        let children: Vec<&&SpanRecord> =
            spans.iter().filter(|s| s.parent == Some(node.id)).collect();
        let child_prefix = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        let n = children.len();
        for (i, child) in children.into_iter().enumerate() {
            self.render_subtree(out, spans, child, &child_prefix, i + 1 == n, false);
        }
    }

    /// Renders the snapshot in Chrome `trace_event` JSON (the format
    /// `chrome://tracing` / Perfetto load): one complete (`"ph":"X"`)
    /// event per span, one timeline row (`tid`) per trace. Span links and
    /// payload annotations ride in `args`.
    pub fn render_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &s.name);
            out.push_str(",\"cat\":\"megastream\",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&s.trace.0.to_string());
            out.push_str(&format!(
                ",\"ts\":{},\"dur\":{},\"args\":{{\"span\":{},\"parent\":{}",
                s.start_micros,
                s.duration_micros,
                s.id.0,
                s.parent.map_or(0, |p| p.0),
            ));
            if s.bytes > 0 {
                out.push_str(&format!(",\"bytes\":{}", s.bytes));
            }
            if s.records > 0 {
                out.push_str(&format!(",\"records\":{}", s.records));
            }
            for (k, v) in &s.attrs {
                out.push(',');
                json::write_string(&mut out, k);
                out.push(':');
                json::write_string(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn disabled_tracer_costs_nothing_and_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut root = tracer.root("r");
        assert!(!root.is_recording());
        assert!(root.context().is_none());
        root.annotate("k", "v");
        root.add_bytes(10);
        let child = root.child("c");
        assert!(!child.is_recording());
        drop(child);
        assert_eq!(root.finish(), 0);
        assert!(tracer.snapshot().is_empty());
        assert_eq!(tracer.render_tree(), "");
    }

    #[test]
    fn spans_link_parent_to_child() {
        let tracer = Tracer::new();
        let root = tracer.root("root");
        let root_ctx = root.context().unwrap();
        let mut child = root.child("child");
        child.annotate("k", "v");
        child.add_bytes(64);
        child.add_records(2);
        let grandchild = child.child("grandchild");
        grandchild.finish();
        child.finish();
        root.finish();
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 3);
        let root_rec = &snap.spans_named("root")[0];
        let child_rec = &snap.spans_named("child")[0];
        let grand_rec = &snap.spans_named("grandchild")[0];
        assert_eq!(root_rec.parent, None);
        assert_eq!(root_rec.id, root_ctx.span);
        assert_eq!(child_rec.parent, Some(root_rec.id));
        assert_eq!(grand_rec.parent, Some(child_rec.id));
        assert_eq!(child_rec.attr("k"), Some("v"));
        assert_eq!(child_rec.bytes, 64);
        assert_eq!(child_rec.records, 2);
        // One trace, parent ids precede child ids.
        assert_eq!(snap.trace_ids().len(), 1);
        assert!(root_rec.id < child_rec.id && child_rec.id < grand_rec.id);
    }

    #[test]
    fn span_in_links_across_components() {
        let tracer = Tracer::new();
        let export = tracer.root("export");
        let ctx = export.context().unwrap();
        // "The other side": a different handle sharing the same store.
        let other = Tracer::with_store(std::sync::Arc::clone(tracer.store().unwrap()));
        other.span_in(ctx, "absorb").finish();
        export.finish();
        let snap = tracer.snapshot();
        let absorb = &snap.spans_named("absorb")[0];
        assert_eq!(absorb.trace, ctx.trace);
        assert_eq!(absorb.parent, Some(ctx.span));
    }

    #[test]
    fn head_sampling_keeps_every_nth_trace() {
        let tracer = Tracer::sampled_every(4);
        let mut recorded = 0;
        for _ in 0..16 {
            let root = tracer.root("r");
            if root.is_recording() {
                recorded += 1;
                // Children of sampled roots record; of unsampled, don't.
                assert!(root.child("c").is_recording());
            } else {
                assert!(!root.child("c").is_recording());
            }
        }
        assert_eq!(recorded, 4);
        let snap = tracer.snapshot();
        assert_eq!(snap.roots_seen, 16);
        assert_eq!(snap.roots_sampled, 4);
        assert_eq!(snap.spans.len(), 8);
        assert_eq!(snap.trace_ids().len(), 4);
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let store = Arc::new(TraceStore::with_policy_and_capacity(
            SamplePolicy::Always,
            SHARD_COUNT, // one span per shard
        ));
        let tracer = Tracer::with_store(store);
        for _ in 0..3 * SHARD_COUNT as u64 {
            tracer.root("r").finish();
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), SHARD_COUNT);
        assert_eq!(snap.dropped, 2 * SHARD_COUNT as u64);
        // The survivors are the newest spans.
        assert!(snap.spans.iter().all(|s| s.id.0 > SHARD_COUNT as u64));
    }

    #[test]
    fn clear_empties_the_ring() {
        let tracer = Tracer::new();
        tracer.root("r").finish();
        assert!(!tracer.snapshot().is_empty());
        tracer.clear();
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn tree_render_shows_structure_and_annotations() {
        let tracer = Tracer::new();
        let mut root = tracer.root("query");
        root.annotate("flowql", "SELECT QUERY FROM ALL");
        let mut a = root.child("fanout");
        a.annotate("location", "region-0");
        a.add_bytes(123);
        a.add_records(3);
        a.finish();
        root.child("merge").finish();
        root.finish();
        let text = tracer.render_tree();
        assert!(text.contains("trace 1 (3 spans)"));
        assert!(text.contains("query"));
        assert!(text.contains("├─ fanout") || text.contains("└─ fanout"));
        assert!(text.contains("location=region-0"));
        assert!(text.contains("[3 rec, 123 B]"));
        assert!(text.contains("flowql=SELECT QUERY FROM ALL"));
    }

    #[test]
    fn orphaned_spans_render_as_roots() {
        // A parent that fell out of the ring must not hide its children.
        let store = Arc::new(TraceStore::with_policy_and_capacity(
            SamplePolicy::Always,
            SHARD_COUNT,
        ));
        let tracer = Tracer::with_store(Arc::clone(&store));
        let root = tracer.root("will-be-dropped");
        let ctx = root.context().unwrap();
        root.finish();
        for _ in 0..SHARD_COUNT as u64 {
            tracer.root("filler").finish();
        }
        tracer.span_in(ctx, "orphan").finish();
        let text = tracer.render_tree();
        assert!(text.contains("orphan"), "orphan missing from:\n{text}");
    }

    #[test]
    fn chrome_export_is_valid_and_complete() {
        let tracer = Tracer::new();
        let mut root = tracer.root("query");
        root.annotate("flowql", "SELECT \"x\"");
        let mut child = root.child("merge");
        child.add_bytes(42);
        child.finish();
        root.finish();
        let json_text = tracer.render_chrome_json();
        let parsed = Json::parse(&json_text).expect("chrome export must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(ev.get("cat").and_then(Json::as_str), Some("megastream"));
            assert!(ev.get("ts").and_then(Json::as_u64).is_some());
            assert!(ev.get("dur").and_then(Json::as_u64).is_some());
        }
        let merge = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("merge"))
            .unwrap();
        let root_ev = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("query"))
            .unwrap();
        assert_eq!(
            merge
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Json::as_u64),
            root_ev
                .get("args")
                .and_then(|a| a.get("span"))
                .and_then(Json::as_u64),
        );
        assert_eq!(
            merge
                .get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(Json::as_u64),
            Some(42)
        );
    }

    #[test]
    fn drop_finishes_unfinished_spans() {
        let tracer = Tracer::new();
        {
            let root = tracer.root("r");
            let _child = root.child("c");
            // both dropped here
        }
        assert_eq!(tracer.snapshot().spans.len(), 2);
    }
}
