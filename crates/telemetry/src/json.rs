//! A minimal JSON reader/writer used by the exporters and their tests.
//!
//! The build environment is fully offline, so `serde_json` is unavailable;
//! this module covers exactly the subset the telemetry exporter emits
//! (objects, arrays, strings, numbers, booleans, null).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted (BTreeMap) for deterministic iteration.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("bad \\u escape"))?;
                            let d = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("bad \\u code point"))?,
                        );
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": null, "e": true}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn unicode_passthrough() {
        let mut out = String::new();
        write_string(&mut out, "héllo→世界");
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("héllo→世界"));
    }
}
