//! Timing scopes: [`Span`] for labeled pipeline stages and [`ScopedTimer`]
//! for recording into a specific histogram.

use crate::clock::{self, Stopwatch};
use crate::metrics::Histogram;
use crate::Telemetry;

/// A labeled timing scope. On drop (or explicit [`Span::finish`]) it records
/// the elapsed microseconds into the histogram `<name>.micros` of the
/// [`Telemetry`] that created it. Child spans extend the label with a dot:
/// `flowdb.exec` → `flowdb.exec.parse`.
///
/// When the owning telemetry is disabled the span holds no start time — the
/// clock is never read and drop is free.
#[derive(Debug)]
pub struct Span {
    tel: Telemetry,
    name: String,
    start: Option<Stopwatch>,
    finished: bool,
}

impl Span {
    pub(crate) fn new(tel: &Telemetry, name: &str) -> Self {
        let enabled = tel.is_enabled();
        Span {
            tel: tel.clone(),
            name: if enabled {
                name.to_owned()
            } else {
                String::new()
            },
            start: if enabled { Some(clock::start()) } else { None },
            finished: false,
        }
    }

    /// Starts a nested span labeled `<self>.<stage>`.
    pub fn child(&self, stage: &str) -> Span {
        if self.start.is_some() {
            Span::new(&self.tel, &format!("{}.{}", self.name, stage))
        } else {
            Span::new(&Telemetry::disabled(), stage)
        }
    }

    /// The span's label (empty when disabled).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ends the span now and returns the recorded duration in microseconds
    /// (0 when disabled).
    pub fn finish(mut self) -> u64 {
        self.finished = true;
        self.record()
    }

    fn record(&self) -> u64 {
        match self.start {
            None => 0,
            Some(start) => {
                let micros = start.elapsed_micros();
                self.tel
                    .histogram(
                        &format!("{}.micros", self.name),
                        crate::LATENCY_MICROS_BOUNDS,
                    )
                    .record(micros);
                micros
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.record();
        }
    }
}

/// Times a scope and records the elapsed microseconds into one histogram on
/// drop. Unlike [`Span`] it performs no name formatting or registry lookup
/// at stop time, so it is the right tool inside hot loops where the
/// histogram handle is already registered.
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Histogram,
    start: Option<Stopwatch>,
}

impl ScopedTimer {
    /// Starts timing into `hist`. If the histogram is a no-op handle the
    /// clock is never read.
    pub fn start(hist: &Histogram) -> Self {
        ScopedTimer {
            start: if hist.is_enabled() {
                Some(clock::start())
            } else {
                None
            },
            hist: hist.clone(),
        }
    }

    /// Stops now and returns the recorded duration in microseconds (0 when
    /// disabled).
    pub fn stop(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        match self.start.take() {
            None => 0,
            Some(start) => {
                let micros = start.elapsed_micros();
                self.hist.record(micros);
                micros
            }
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.record();
    }
}
