//! The health model of the ops plane: declarative rules folded over the
//! time-series windows into per-component states, with hysteresis and an
//! append-only alert log.
//!
//! A [`HealthRule`] names a [`Signal`] (a windowed derivative the
//! [`MetricSampler`] computes), a breach [`Direction`], and two
//! thresholds. Each evaluation classifies the signal's current value as
//! [`Healthy`](HealthStatus::Healthy),
//! [`Degraded`](HealthStatus::Degraded) or
//! [`Critical`](HealthStatus::Critical); hysteresis requires the *same*
//! target state for `enter_after` (worsening) or `exit_after`
//! (recovering) consecutive evaluations before the rule actually
//! transitions, so a signal dancing around a threshold cannot flap the
//! component. Every transition is appended to the [`Alert`] log with the
//! observed value.
//!
//! A component's state is the worst state of its rules; the system's
//! state is the worst component. Signals whose metric has no buffered
//! data yet evaluate as `Healthy` — absence of evidence is not an
//! outage — but a rule whose metric was **never registered at all**
//! surfaces a one-time "signal missing" note (see
//! [`HealthMonitor::notes`]): a misspelled rule silently reporting
//! Healthy forever is a monitoring outage of its own.
//!
//! [`Signal::BurnRate`] adds multi-window SLO burn-rate alerting: a rule
//! trips only when both a long and a short trailing window consume the
//! error budget faster than the threshold, which resists flapping by
//! construction.

use crate::json;
use crate::timeseries::MetricSampler;

/// The three-state health classification of a rule, component, or the
/// whole system. Ordered: `Healthy < Degraded < Critical`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthStatus {
    /// Operating normally.
    #[default]
    Healthy,
    /// Impaired but serving (the paper's "availability over exactness"
    /// regime — spills buffering, partial answers).
    Degraded,
    /// Breaching the critical threshold; intervention expected.
    Critical,
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Critical => "critical",
        })
    }
}

/// What a [`Signal::BurnRate`] counts as "bad" events.
#[derive(Debug, Clone, PartialEq)]
pub enum BurnSource {
    /// Histogram samples above a latency threshold — e.g. FlowQL
    /// executions slower than the objective
    /// (`flowdb.exec.micros{op=...}` over `threshold_micros`).
    HistogramAbove {
        /// Histogram name.
        name: String,
        /// Samples above this value count against the error budget.
        threshold_micros: u64,
    },
    /// The ratio of two counters' windowed increases — e.g. partial
    /// query answers over total answers
    /// (`flowdb.exec.partial_total` / `flowdb.exec.total{op=...}`).
    ///
    /// The `bad` counter may legitimately never register while the system
    /// is healthy (lazily-registered error counters); a missing `bad`
    /// counter reads as zero as long as `total` has data.
    CounterRatio {
        /// Counter of bad events.
        bad: String,
        /// Counter of all events.
        total: String,
    },
}

/// The windowed derivative a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// Reset-aware counter increase per second over the trailing window.
    CounterRate {
        /// Counter name.
        name: String,
        /// Trailing window, microseconds.
        window_micros: u64,
    },
    /// The gauge's newest sampled value.
    GaugeLevel {
        /// Gauge name.
        name: String,
    },
    /// Windowed histogram quantile (e.g. p99 latency inside the window).
    WindowQuantile {
        /// Histogram name.
        name: String,
        /// Quantile in `0.0..=1.0`.
        q: f64,
        /// Trailing window, microseconds.
        window_micros: u64,
    },
    /// `now - gauge` in microseconds, for gauges holding a timestamp:
    /// watermark freshness, epoch-rotation lag.
    GaugeLag {
        /// Gauge name (value interpreted as a microsecond timestamp).
        name: String,
    },
    /// Microseconds since the counter or gauge last changed value —
    /// liveness of a component that should be making progress.
    Staleness {
        /// Counter or gauge name.
        name: String,
    },
    /// Multi-window SLO burn rate: how fast the error budget implied by
    /// `objective_pct` is being consumed, evaluated over a long *and* a
    /// short trailing window. The signal's value is the **minimum** of the
    /// two windows' burn rates, so a rule's threshold only trips when both
    /// windows exceed it — the long window filters noise, the short window
    /// guarantees the breach is still happening (classic multi-window
    /// burn-rate alerting, resistant to flapping by construction).
    ///
    /// A burn rate of 1.0 means the budget is consumed exactly at the
    /// objective's rate; 10.0 means ten times faster.
    BurnRate {
        /// What counts against the error budget.
        source: BurnSource,
        /// The service-level objective as a percentage (e.g. `99.0` allows
        /// 1% bad events).
        objective_pct: f64,
        /// The long trailing window, microseconds.
        long_window_micros: u64,
        /// The short trailing window, microseconds.
        short_window_micros: u64,
    },
}

impl Signal {
    /// The primary metric name the signal reads (for burn rates, the
    /// metric whose absence means the signal cannot evaluate).
    pub fn metric(&self) -> &str {
        match self {
            Signal::CounterRate { name, .. }
            | Signal::GaugeLevel { name }
            | Signal::WindowQuantile { name, .. }
            | Signal::GaugeLag { name }
            | Signal::Staleness { name } => name,
            Signal::BurnRate { source, .. } => match source {
                BurnSource::HistogramAbove { name, .. } => name,
                BurnSource::CounterRatio { total, .. } => total,
            },
        }
    }

    /// The metric names that must exist for the signal to ever produce a
    /// value. A burn rate's `bad` counter is *not* required — it may
    /// legitimately stay unregistered while the system is healthy.
    pub fn required_metrics(&self) -> Vec<&str> {
        vec![self.metric()]
    }

    /// Evaluates the signal against the sampler's buffered history.
    /// `None` when the metric has no (or not enough) frames yet.
    pub fn value(&self, sampler: &MetricSampler, now_micros: u64) -> Option<f64> {
        match self {
            Signal::CounterRate {
                name,
                window_micros,
            } => sampler.counter_rate(name, *window_micros),
            Signal::GaugeLevel { name } => sampler.gauge_last(name).map(|v| v as f64),
            Signal::WindowQuantile {
                name,
                q,
                window_micros,
            } => sampler
                .window_quantile(name, *q, *window_micros)
                .map(|v| v as f64),
            Signal::GaugeLag { name } => sampler
                .gauge_last(name)
                .map(|v| now_micros.saturating_sub(v.max(0) as u64) as f64),
            Signal::Staleness { name } => sampler.staleness_micros(name).map(|v| v as f64),
            Signal::BurnRate {
                source,
                objective_pct,
                long_window_micros,
                short_window_micros,
            } => {
                let budget = (1.0 - objective_pct / 100.0).max(1e-9);
                let long = source.bad_fraction(sampler, *long_window_micros)?;
                let short = source.bad_fraction(sampler, *short_window_micros)?;
                // Min of the windows: both must burn for the rule to trip.
                Some(long.min(short) / budget)
            }
        }
    }
}

impl BurnSource {
    /// The fraction of events inside the trailing window that count
    /// against the budget. `None` when the underlying metrics have no
    /// (or not enough) frames yet.
    fn bad_fraction(&self, sampler: &MetricSampler, window_micros: u64) -> Option<f64> {
        match self {
            BurnSource::HistogramAbove {
                name,
                threshold_micros,
            } => sampler
                .histogram_window(name, window_micros)
                .map(|h| h.fraction_above(*threshold_micros)),
            BurnSource::CounterRatio { bad, total } => {
                let total = sampler.counter_delta(total, window_micros)?;
                // A bad counter that never registered simply read zero.
                let bad = sampler.counter_delta(bad, window_micros).unwrap_or(0);
                if total == 0 {
                    Some(0.0)
                } else {
                    Some(bad as f64 / total as f64)
                }
            }
        }
    }
}

/// Which side of the thresholds is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Breach when the value rises above a threshold (rates, depths,
    /// latencies, lags).
    Above,
    /// Breach when the value falls below a threshold (completeness,
    /// throughput floors).
    Below,
}

/// One declarative health rule. Build with [`HealthRule::new`] and the
/// builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRule {
    /// Rule name, unique within the monitor (e.g. `spill-occupancy`).
    pub name: String,
    /// The component the rule scores (e.g. `flowstream`, `hierarchy`).
    pub component: String,
    /// The windowed signal to watch.
    pub signal: Signal,
    /// Value beyond which the rule is `Degraded` (per `direction`).
    pub degraded: f64,
    /// Value beyond which the rule is `Critical` (per `direction`).
    /// Must be at least as severe as `degraded`.
    pub critical: f64,
    /// Breach side.
    pub direction: Direction,
    /// Consecutive worsening evaluations before the state rises.
    pub enter_after: u32,
    /// Consecutive improving evaluations before the state falls.
    pub exit_after: u32,
}

impl HealthRule {
    /// A rule with `Above` direction and 2/2 hysteresis; adjust with the
    /// builder methods.
    pub fn new(
        name: impl Into<String>,
        component: impl Into<String>,
        signal: Signal,
        degraded: f64,
        critical: f64,
    ) -> Self {
        HealthRule {
            name: name.into(),
            component: component.into(),
            signal,
            degraded,
            critical,
            direction: Direction::Above,
            enter_after: 2,
            exit_after: 2,
        }
    }

    /// Flips the rule to breach when the value falls *below* thresholds.
    #[must_use]
    pub fn below(mut self) -> Self {
        self.direction = Direction::Below;
        self
    }

    /// Sets the hysteresis: `enter` consecutive breaches to rise,
    /// `exit` consecutive clears to fall (each clamped to ≥ 1).
    #[must_use]
    pub fn hysteresis(mut self, enter: u32, exit: u32) -> Self {
        self.enter_after = enter.max(1);
        self.exit_after = exit.max(1);
        self
    }

    /// Classifies one observed value (no hysteresis — that is the
    /// monitor's job).
    fn classify(&self, value: f64) -> HealthStatus {
        let breach = |threshold: f64| match self.direction {
            Direction::Above => value > threshold,
            Direction::Below => value < threshold,
        };
        if breach(self.critical) {
            HealthStatus::Critical
        } else if breach(self.degraded) {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        }
    }
}

/// One entry of the append-only alert log: a rule transitioned.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Evaluation stamp (microseconds, caller's time base).
    pub at_micros: u64,
    /// The component the rule scores.
    pub component: String,
    /// The transitioning rule.
    pub rule: String,
    /// State before.
    pub from: HealthStatus,
    /// State after.
    pub to: HealthStatus,
    /// The signal value that completed the transition.
    pub value: f64,
}

impl std::fmt::Display for Alert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>10.3}s] {:<12} {:<24} {} -> {} (value {:.3})",
            self.at_micros as f64 / 1e6,
            self.component,
            self.rule,
            self.from,
            self.to,
            self.value
        )
    }
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    current: HealthStatus,
    /// The state the signal currently argues for, if != current.
    pending: Option<HealthStatus>,
    /// Consecutive evaluations that argued for `pending`.
    streak: u32,
    /// Newest observed value (None before first evaluation with data).
    last_value: Option<f64>,
    /// Whether the one-time "signal missing" note for this rule was
    /// already emitted (the watched metric was never registered).
    missing_noted: bool,
}

/// Folds [`HealthRule`]s over a [`MetricSampler`]'s windows into
/// per-component health, with an append-only [`Alert`] log.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    rules: Vec<HealthRule>,
    states: Vec<RuleState>,
    alerts: Vec<Alert>,
    /// One-time diagnostic notes (e.g. a rule whose metric was never
    /// registered) — append-only, like the alert log.
    notes: Vec<String>,
    evaluations: u64,
}

impl HealthMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        HealthMonitor::default()
    }

    /// Adds a rule (evaluated from the next [`HealthMonitor::evaluate`]).
    pub fn add_rule(&mut self, rule: HealthRule) {
        self.rules.push(rule);
        self.states.push(RuleState::default());
    }

    /// Builder-style [`HealthMonitor::add_rule`].
    #[must_use]
    pub fn with_rule(mut self, rule: HealthRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// The installed rules.
    pub fn rules(&self) -> &[HealthRule] {
        &self.rules
    }

    /// Number of evaluation passes run.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Evaluates every rule against the sampler's current history.
    /// Call once per recorded frame (the ops plane does this for you).
    pub fn evaluate(&mut self, sampler: &MetricSampler, now_micros: u64) {
        self.evaluations += 1;
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(value) = rule.signal.value(sampler, now_micros) else {
                // No data: hold the current state, clear any streak. If
                // the watched metric was *never registered* (not merely
                // short on history), surface it once — a rule silently
                // reporting Healthy against a misspelled or never-started
                // signal is a monitoring outage of its own.
                if !state.missing_noted {
                    let missing: Vec<&str> = rule
                        .signal
                        .required_metrics()
                        .into_iter()
                        .filter(|m| !sampler.has_metric(m))
                        .collect();
                    if !missing.is_empty() {
                        state.missing_noted = true;
                        self.notes.push(format!(
                            "rule {} ({}): signal missing — metric {} never registered",
                            rule.name,
                            rule.component,
                            missing.join(", ")
                        ));
                    }
                }
                state.pending = None;
                state.streak = 0;
                continue;
            };
            state.last_value = Some(value);
            let target = rule.classify(value);
            if target == state.current {
                state.pending = None;
                state.streak = 0;
                continue;
            }
            match state.pending {
                Some(p) if p == target => state.streak += 1,
                _ => {
                    state.pending = Some(target);
                    state.streak = 1;
                }
            }
            let needed = if target > state.current {
                rule.enter_after
            } else {
                rule.exit_after
            };
            if state.streak >= needed {
                self.alerts.push(Alert {
                    at_micros: now_micros,
                    component: rule.component.clone(),
                    rule: rule.name.clone(),
                    from: state.current,
                    to: target,
                    value,
                });
                state.current = target;
                state.pending = None;
                state.streak = 0;
            }
        }
    }

    /// The current state of one rule (`Healthy` for unknown names).
    pub fn rule_status(&self, rule: &str) -> HealthStatus {
        self.rules
            .iter()
            .zip(&self.states)
            .find(|(r, _)| r.name == rule)
            .map(|(_, s)| s.current)
            .unwrap_or_default()
    }

    /// The newest value a rule's signal produced, if any.
    pub fn rule_value(&self, rule: &str) -> Option<f64> {
        self.rules
            .iter()
            .zip(&self.states)
            .find(|(r, _)| r.name == rule)
            .and_then(|(_, s)| s.last_value)
    }

    /// The worst state among a component's rules (`Healthy` for unknown
    /// components).
    pub fn component_status(&self, component: &str) -> HealthStatus {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(r, _)| r.component == component)
            .map(|(_, s)| s.current)
            .max()
            .unwrap_or_default()
    }

    /// All components with rules, sorted and deduplicated.
    pub fn components(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rules.iter().map(|r| r.component.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// The worst state across every rule.
    pub fn overall(&self) -> HealthStatus {
        self.states
            .iter()
            .map(|s| s.current)
            .max()
            .unwrap_or_default()
    }

    /// The append-only alert log, oldest first.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// One-time diagnostic notes, oldest first: currently, rules whose
    /// watched metric was never registered ("signal missing").
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Renders a human-readable health report: overall state, per
    /// component and rule, then the alert log.
    pub fn render_text(&self) -> String {
        let mut out = format!("overall: {}\n", self.overall());
        for component in self.components() {
            out.push_str(&format!(
                "component {:<12} {}\n",
                component,
                self.component_status(&component)
            ));
            for (rule, state) in self.rules.iter().zip(&self.states) {
                if rule.component != component {
                    continue;
                }
                match state.last_value {
                    Some(v) => out.push_str(&format!(
                        "  rule {:<24} {:<8} value {:.3}\n",
                        rule.name, state.current, v
                    )),
                    None if state.missing_noted => out.push_str(&format!(
                        "  rule {:<24} {:<8} (signal missing)\n",
                        rule.name, state.current
                    )),
                    None => out.push_str(&format!(
                        "  rule {:<24} {:<8} (no data)\n",
                        rule.name, state.current
                    )),
                }
            }
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for n in &self.notes {
                out.push_str(&format!("  {n}\n"));
            }
        }
        if !self.alerts.is_empty() {
            out.push_str("alerts:\n");
            for a in &self.alerts {
                out.push_str(&format!("  {a}\n"));
            }
        }
        out
    }

    /// Renders the health state as a JSON object:
    /// `{"overall": "...", "components": {name: "..."}, "rules":
    /// [{"name": .., "component": .., "status": .., "value": ..}],
    /// "alerts": [{"at_micros": .., "component": .., "rule": ..,
    /// "from": .., "to": .., "value": ..}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"overall\":");
        json::write_string(&mut out, &self.overall().to_string());
        out.push_str(",\"components\":{");
        for (i, component) in self.components().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, component);
            out.push(':');
            json::write_string(&mut out, &self.component_status(component).to_string());
        }
        out.push_str("},\"rules\":[");
        for (i, (rule, state)) in self.rules.iter().zip(&self.states).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &rule.name);
            out.push_str(",\"component\":");
            json::write_string(&mut out, &rule.component);
            out.push_str(",\"status\":");
            json::write_string(&mut out, &state.current.to_string());
            match state.last_value {
                Some(v) => out.push_str(&format!(",\"value\":{v}}}")),
                None => out.push('}'),
            }
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"at_micros\":{},\"component\":", a.at_micros));
            json::write_string(&mut out, &a.component);
            out.push_str(",\"rule\":");
            json::write_string(&mut out, &a.rule);
            out.push_str(",\"from\":");
            json::write_string(&mut out, &a.from.to_string());
            out.push_str(",\"to\":");
            json::write_string(&mut out, &a.to.to_string());
            out.push_str(&format!(",\"value\":{}}}", a.value));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricSampler, SamplerConfig, Telemetry};
    use std::sync::Arc;

    const SEC: u64 = 1_000_000;

    fn sampler(tel: &Telemetry) -> MetricSampler {
        MetricSampler::new(
            Arc::clone(tel.registry().unwrap()),
            SamplerConfig {
                cadence_micros: SEC,
                capacity: 64,
            },
        )
    }

    fn gauge_rule(enter: u32, exit: u32) -> HealthRule {
        HealthRule::new(
            "depth",
            "store",
            Signal::GaugeLevel {
                name: "depth".into(),
            },
            10.0,
            100.0,
        )
        .hysteresis(enter, exit)
    }

    #[test]
    fn status_ordering_is_severity() {
        assert!(HealthStatus::Healthy < HealthStatus::Degraded);
        assert!(HealthStatus::Degraded < HealthStatus::Critical);
    }

    #[test]
    fn hysteresis_requires_consecutive_breaches() {
        let tel = Telemetry::new();
        let g = tel.gauge("depth");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(gauge_rule(2, 2));
        // One breach tick: no transition yet.
        g.set(50);
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        // A clear tick resets the streak.
        g.set(5);
        s.force_sample(SEC);
        m.evaluate(&s, SEC);
        // Two consecutive breaches transition.
        g.set(50);
        s.force_sample(2 * SEC);
        m.evaluate(&s, 2 * SEC);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        s.force_sample(3 * SEC);
        m.evaluate(&s, 3 * SEC);
        assert_eq!(m.overall(), HealthStatus::Degraded);
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts()[0].from, HealthStatus::Healthy);
        assert_eq!(m.alerts()[0].to, HealthStatus::Degraded);
    }

    #[test]
    fn flapping_signal_does_not_flap_state() {
        let tel = Telemetry::new();
        let g = tel.gauge("depth");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(gauge_rule(2, 2));
        // Alternate breach/clear every tick: with 2/2 hysteresis the rule
        // must never leave Healthy.
        for t in 0..20u64 {
            g.set(if t % 2 == 0 { 50 } else { 5 });
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        assert_eq!(m.overall(), HealthStatus::Healthy);
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn critical_and_recovery_are_logged() {
        let tel = Telemetry::new();
        let g = tel.gauge("depth");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(gauge_rule(1, 1));
        g.set(500);
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.overall(), HealthStatus::Critical);
        g.set(0);
        s.force_sample(SEC);
        m.evaluate(&s, SEC);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        let transitions: Vec<(HealthStatus, HealthStatus)> =
            m.alerts().iter().map(|a| (a.from, a.to)).collect();
        assert_eq!(
            transitions,
            vec![
                (HealthStatus::Healthy, HealthStatus::Critical),
                (HealthStatus::Critical, HealthStatus::Healthy),
            ]
        );
    }

    #[test]
    fn below_direction_breaches_low_values() {
        let tel = Telemetry::new();
        let g = tel.gauge("completeness_pct");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(
            HealthRule::new(
                "completeness",
                "flowstream",
                Signal::GaugeLevel {
                    name: "completeness_pct".into(),
                },
                99.0,
                50.0,
            )
            .below()
            .hysteresis(1, 1),
        );
        g.set(100);
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        g.set(80);
        s.force_sample(SEC);
        m.evaluate(&s, SEC);
        assert_eq!(m.overall(), HealthStatus::Degraded);
        g.set(10);
        s.force_sample(2 * SEC);
        m.evaluate(&s, 2 * SEC);
        assert_eq!(m.overall(), HealthStatus::Critical);
    }

    #[test]
    fn missing_metric_stays_healthy_but_is_noted() {
        let tel = Telemetry::new();
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(gauge_rule(1, 1));
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        assert_eq!(m.rule_value("depth"), None);
        // Never-registered metric: a one-time "signal missing" note, not
        // a silent Healthy.
        assert_eq!(m.notes().len(), 1);
        assert!(m.notes()[0].contains("signal missing"));
        assert!(m.notes()[0].contains("depth"));
        let text = m.render_text();
        assert!(text.contains("(signal missing)"));
        assert!(text.contains("notes:"));
        // The note is one-time: further evaluations do not repeat it.
        s.force_sample(SEC);
        m.evaluate(&s, SEC);
        assert_eq!(m.notes().len(), 1);
    }

    #[test]
    fn registered_but_short_history_is_no_data_not_missing() {
        let tel = Telemetry::new();
        let _c = tel.counter("events");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(
            HealthRule::new(
                "rate",
                "x",
                Signal::CounterRate {
                    name: "events".into(),
                    window_micros: 10 * SEC,
                },
                1.0,
                2.0,
            )
            .hysteresis(1, 1),
        );
        // One frame: the counter exists but a rate needs two endpoints.
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert!(m.notes().is_empty());
        assert!(m.render_text().contains("(no data)"));
    }

    #[test]
    fn component_is_worst_of_rules() {
        let tel = Telemetry::new();
        let a = tel.gauge("a");
        let _b = tel.gauge("b");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new()
            .with_rule(
                HealthRule::new("ra", "x", Signal::GaugeLevel { name: "a".into() }, 1.0, 2.0)
                    .hysteresis(1, 1),
            )
            .with_rule(
                HealthRule::new("rb", "x", Signal::GaugeLevel { name: "b".into() }, 1.0, 2.0)
                    .hysteresis(1, 1),
            );
        a.set(10);
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.component_status("x"), HealthStatus::Critical);
        assert_eq!(m.rule_status("rb"), HealthStatus::Healthy);
        let json = m.render_json();
        assert!(json.contains("\"overall\":\"critical\""));
        assert!(json.contains("\"components\":{\"x\":\"critical\"}"));
    }

    fn completeness_burn_rule() -> HealthRule {
        HealthRule::new(
            "completeness-burn",
            "flowstream",
            Signal::BurnRate {
                source: BurnSource::CounterRatio {
                    bad: "partial".into(),
                    total: "total".into(),
                },
                objective_pct: 99.0,
                long_window_micros: 10 * SEC,
                short_window_micros: 3 * SEC,
            },
            1.0,
            10.0,
        )
        .hysteresis(2, 2)
    }

    #[test]
    fn burn_rate_counter_ratio_trips_on_sustained_burn() {
        let tel = Telemetry::new();
        let total = tel.counter("total");
        let partial = tel.counter("partial");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(completeness_burn_rule());
        // Healthy traffic: 10 answers/s, none partial.
        for t in 0..5u64 {
            total.add(10);
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        assert_eq!(m.overall(), HealthStatus::Healthy);
        // Outage: half the answers go partial — 50% bad vs a 1% budget is
        // a 50x burn; after the 2-tick hysteresis the rule trips.
        for t in 5..10u64 {
            total.add(10);
            partial.add(5);
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        assert_eq!(m.rule_status("completeness-burn"), HealthStatus::Critical);
        // Recovery: the short window clears first, dragging the min down.
        for t in 10..25u64 {
            total.add(10);
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        assert_eq!(m.rule_status("completeness-burn"), HealthStatus::Healthy);
    }

    #[test]
    fn burn_rate_short_blip_does_not_trip() {
        let tel = Telemetry::new();
        let total = tel.counter("total");
        let partial = tel.counter("partial");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(completeness_burn_rule());
        for t in 0..20u64 {
            total.add(50);
            if t == 8 {
                // One partial answer among ~150 in even the short window:
                // 0.67% bad against the 1% budget is a burn below 1.0, so
                // neither window ever argues for a transition.
                partial.add(1);
            }
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        assert_eq!(m.overall(), HealthStatus::Healthy);
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn burn_rate_missing_bad_counter_reads_zero() {
        let tel = Telemetry::new();
        let total = tel.counter("total");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(completeness_burn_rule());
        for t in 0..5u64 {
            total.add(10);
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        // The bad counter never registered: the signal still evaluates
        // (burn 0.0) and no "signal missing" note fires — only `total`
        // is required.
        assert_eq!(m.rule_value("completeness-burn"), Some(0.0));
        assert!(m.notes().is_empty());
    }

    #[test]
    fn burn_rate_histogram_above_threshold() {
        let tel = Telemetry::new();
        let h = tel.histogram("latency", &[100, 1_000, 10_000]);
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(
            HealthRule::new(
                "latency-burn",
                "flowdb",
                Signal::BurnRate {
                    source: BurnSource::HistogramAbove {
                        name: "latency".into(),
                        threshold_micros: 1_000,
                    },
                    objective_pct: 90.0,
                    long_window_micros: 10 * SEC,
                    short_window_micros: 3 * SEC,
                },
                1.0,
                5.0,
            )
            .hysteresis(1, 1),
        );
        // All fast: zero burn.
        for t in 0..3u64 {
            h.record(50);
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        assert_eq!(m.overall(), HealthStatus::Healthy);
        // All slow: 100% bad vs a 10% budget is a 10x burn → Critical.
        for t in 3..8u64 {
            for _ in 0..10 {
                h.record(50_000);
            }
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        assert_eq!(m.rule_status("latency-burn"), HealthStatus::Critical);
    }

    #[test]
    fn fraction_above_is_bucket_exact_on_bounds() {
        let tel = Telemetry::new();
        let h = tel.histogram("lat", &[100, 1_000]);
        let mut s = sampler(&tel);
        s.force_sample(0);
        h.record(50); // bucket ≤ 100
        h.record(500); // bucket ≤ 1_000
        h.record(5_000); // overflow
        s.force_sample(SEC);
        let w = s.histogram_window("lat", 10 * SEC).unwrap();
        assert!((w.fraction_above(1_000) - 1.0 / 3.0).abs() < 1e-9);
        assert!((w.fraction_above(100) - 2.0 / 3.0).abs() < 1e-9);
        assert!((w.fraction_above(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_lag_measures_against_now() {
        let tel = Telemetry::new();
        let g = tel.gauge("watermark_micros");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(
            HealthRule::new(
                "freshness",
                "store",
                Signal::GaugeLag {
                    name: "watermark_micros".into(),
                },
                (5 * SEC) as f64,
                (60 * SEC) as f64,
            )
            .hysteresis(1, 1),
        );
        g.set((10 * SEC) as i64);
        s.force_sample(10 * SEC);
        m.evaluate(&s, 10 * SEC);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        // 20 s later the watermark has not moved: lag 20 s > 5 s.
        s.force_sample(30 * SEC);
        m.evaluate(&s, 30 * SEC);
        assert_eq!(m.overall(), HealthStatus::Degraded);
    }
}
