//! The health model of the ops plane: declarative rules folded over the
//! time-series windows into per-component states, with hysteresis and an
//! append-only alert log.
//!
//! A [`HealthRule`] names a [`Signal`] (a windowed derivative the
//! [`MetricSampler`] computes), a breach [`Direction`], and two
//! thresholds. Each evaluation classifies the signal's current value as
//! [`Healthy`](HealthStatus::Healthy),
//! [`Degraded`](HealthStatus::Degraded) or
//! [`Critical`](HealthStatus::Critical); hysteresis requires the *same*
//! target state for `enter_after` (worsening) or `exit_after`
//! (recovering) consecutive evaluations before the rule actually
//! transitions, so a signal dancing around a threshold cannot flap the
//! component. Every transition is appended to the [`Alert`] log with the
//! observed value.
//!
//! A component's state is the worst state of its rules; the system's
//! state is the worst component. Signals whose metric has no buffered
//! data yet evaluate as `Healthy` — absence of evidence is not an
//! outage.

use crate::json;
use crate::timeseries::MetricSampler;

/// The three-state health classification of a rule, component, or the
/// whole system. Ordered: `Healthy < Degraded < Critical`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthStatus {
    /// Operating normally.
    #[default]
    Healthy,
    /// Impaired but serving (the paper's "availability over exactness"
    /// regime — spills buffering, partial answers).
    Degraded,
    /// Breaching the critical threshold; intervention expected.
    Critical,
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Critical => "critical",
        })
    }
}

/// The windowed derivative a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// Reset-aware counter increase per second over the trailing window.
    CounterRate {
        /// Counter name.
        name: String,
        /// Trailing window, microseconds.
        window_micros: u64,
    },
    /// The gauge's newest sampled value.
    GaugeLevel {
        /// Gauge name.
        name: String,
    },
    /// Windowed histogram quantile (e.g. p99 latency inside the window).
    WindowQuantile {
        /// Histogram name.
        name: String,
        /// Quantile in `0.0..=1.0`.
        q: f64,
        /// Trailing window, microseconds.
        window_micros: u64,
    },
    /// `now - gauge` in microseconds, for gauges holding a timestamp:
    /// watermark freshness, epoch-rotation lag.
    GaugeLag {
        /// Gauge name (value interpreted as a microsecond timestamp).
        name: String,
    },
    /// Microseconds since the counter or gauge last changed value —
    /// liveness of a component that should be making progress.
    Staleness {
        /// Counter or gauge name.
        name: String,
    },
}

impl Signal {
    /// The metric name the signal reads.
    pub fn metric(&self) -> &str {
        match self {
            Signal::CounterRate { name, .. }
            | Signal::GaugeLevel { name }
            | Signal::WindowQuantile { name, .. }
            | Signal::GaugeLag { name }
            | Signal::Staleness { name } => name,
        }
    }

    /// Evaluates the signal against the sampler's buffered history.
    /// `None` when the metric has no (or not enough) frames yet.
    pub fn value(&self, sampler: &MetricSampler, now_micros: u64) -> Option<f64> {
        match self {
            Signal::CounterRate {
                name,
                window_micros,
            } => sampler.counter_rate(name, *window_micros),
            Signal::GaugeLevel { name } => sampler.gauge_last(name).map(|v| v as f64),
            Signal::WindowQuantile {
                name,
                q,
                window_micros,
            } => sampler
                .window_quantile(name, *q, *window_micros)
                .map(|v| v as f64),
            Signal::GaugeLag { name } => sampler
                .gauge_last(name)
                .map(|v| now_micros.saturating_sub(v.max(0) as u64) as f64),
            Signal::Staleness { name } => sampler.staleness_micros(name).map(|v| v as f64),
        }
    }
}

/// Which side of the thresholds is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Breach when the value rises above a threshold (rates, depths,
    /// latencies, lags).
    Above,
    /// Breach when the value falls below a threshold (completeness,
    /// throughput floors).
    Below,
}

/// One declarative health rule. Build with [`HealthRule::new`] and the
/// builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRule {
    /// Rule name, unique within the monitor (e.g. `spill-occupancy`).
    pub name: String,
    /// The component the rule scores (e.g. `flowstream`, `hierarchy`).
    pub component: String,
    /// The windowed signal to watch.
    pub signal: Signal,
    /// Value beyond which the rule is `Degraded` (per `direction`).
    pub degraded: f64,
    /// Value beyond which the rule is `Critical` (per `direction`).
    /// Must be at least as severe as `degraded`.
    pub critical: f64,
    /// Breach side.
    pub direction: Direction,
    /// Consecutive worsening evaluations before the state rises.
    pub enter_after: u32,
    /// Consecutive improving evaluations before the state falls.
    pub exit_after: u32,
}

impl HealthRule {
    /// A rule with `Above` direction and 2/2 hysteresis; adjust with the
    /// builder methods.
    pub fn new(
        name: impl Into<String>,
        component: impl Into<String>,
        signal: Signal,
        degraded: f64,
        critical: f64,
    ) -> Self {
        HealthRule {
            name: name.into(),
            component: component.into(),
            signal,
            degraded,
            critical,
            direction: Direction::Above,
            enter_after: 2,
            exit_after: 2,
        }
    }

    /// Flips the rule to breach when the value falls *below* thresholds.
    #[must_use]
    pub fn below(mut self) -> Self {
        self.direction = Direction::Below;
        self
    }

    /// Sets the hysteresis: `enter` consecutive breaches to rise,
    /// `exit` consecutive clears to fall (each clamped to ≥ 1).
    #[must_use]
    pub fn hysteresis(mut self, enter: u32, exit: u32) -> Self {
        self.enter_after = enter.max(1);
        self.exit_after = exit.max(1);
        self
    }

    /// Classifies one observed value (no hysteresis — that is the
    /// monitor's job).
    fn classify(&self, value: f64) -> HealthStatus {
        let breach = |threshold: f64| match self.direction {
            Direction::Above => value > threshold,
            Direction::Below => value < threshold,
        };
        if breach(self.critical) {
            HealthStatus::Critical
        } else if breach(self.degraded) {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        }
    }
}

/// One entry of the append-only alert log: a rule transitioned.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Evaluation stamp (microseconds, caller's time base).
    pub at_micros: u64,
    /// The component the rule scores.
    pub component: String,
    /// The transitioning rule.
    pub rule: String,
    /// State before.
    pub from: HealthStatus,
    /// State after.
    pub to: HealthStatus,
    /// The signal value that completed the transition.
    pub value: f64,
}

impl std::fmt::Display for Alert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>10.3}s] {:<12} {:<24} {} -> {} (value {:.3})",
            self.at_micros as f64 / 1e6,
            self.component,
            self.rule,
            self.from,
            self.to,
            self.value
        )
    }
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    current: HealthStatus,
    /// The state the signal currently argues for, if != current.
    pending: Option<HealthStatus>,
    /// Consecutive evaluations that argued for `pending`.
    streak: u32,
    /// Newest observed value (None before first evaluation with data).
    last_value: Option<f64>,
}

/// Folds [`HealthRule`]s over a [`MetricSampler`]'s windows into
/// per-component health, with an append-only [`Alert`] log.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    rules: Vec<HealthRule>,
    states: Vec<RuleState>,
    alerts: Vec<Alert>,
    evaluations: u64,
}

impl HealthMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        HealthMonitor::default()
    }

    /// Adds a rule (evaluated from the next [`HealthMonitor::evaluate`]).
    pub fn add_rule(&mut self, rule: HealthRule) {
        self.rules.push(rule);
        self.states.push(RuleState::default());
    }

    /// Builder-style [`HealthMonitor::add_rule`].
    #[must_use]
    pub fn with_rule(mut self, rule: HealthRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// The installed rules.
    pub fn rules(&self) -> &[HealthRule] {
        &self.rules
    }

    /// Number of evaluation passes run.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Evaluates every rule against the sampler's current history.
    /// Call once per recorded frame (the ops plane does this for you).
    pub fn evaluate(&mut self, sampler: &MetricSampler, now_micros: u64) {
        self.evaluations += 1;
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(value) = rule.signal.value(sampler, now_micros) else {
                // No data: hold the current state, clear any streak.
                state.pending = None;
                state.streak = 0;
                continue;
            };
            state.last_value = Some(value);
            let target = rule.classify(value);
            if target == state.current {
                state.pending = None;
                state.streak = 0;
                continue;
            }
            match state.pending {
                Some(p) if p == target => state.streak += 1,
                _ => {
                    state.pending = Some(target);
                    state.streak = 1;
                }
            }
            let needed = if target > state.current {
                rule.enter_after
            } else {
                rule.exit_after
            };
            if state.streak >= needed {
                self.alerts.push(Alert {
                    at_micros: now_micros,
                    component: rule.component.clone(),
                    rule: rule.name.clone(),
                    from: state.current,
                    to: target,
                    value,
                });
                state.current = target;
                state.pending = None;
                state.streak = 0;
            }
        }
    }

    /// The current state of one rule (`Healthy` for unknown names).
    pub fn rule_status(&self, rule: &str) -> HealthStatus {
        self.rules
            .iter()
            .zip(&self.states)
            .find(|(r, _)| r.name == rule)
            .map(|(_, s)| s.current)
            .unwrap_or_default()
    }

    /// The newest value a rule's signal produced, if any.
    pub fn rule_value(&self, rule: &str) -> Option<f64> {
        self.rules
            .iter()
            .zip(&self.states)
            .find(|(r, _)| r.name == rule)
            .and_then(|(_, s)| s.last_value)
    }

    /// The worst state among a component's rules (`Healthy` for unknown
    /// components).
    pub fn component_status(&self, component: &str) -> HealthStatus {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(r, _)| r.component == component)
            .map(|(_, s)| s.current)
            .max()
            .unwrap_or_default()
    }

    /// All components with rules, sorted and deduplicated.
    pub fn components(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rules.iter().map(|r| r.component.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// The worst state across every rule.
    pub fn overall(&self) -> HealthStatus {
        self.states
            .iter()
            .map(|s| s.current)
            .max()
            .unwrap_or_default()
    }

    /// The append-only alert log, oldest first.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Renders a human-readable health report: overall state, per
    /// component and rule, then the alert log.
    pub fn render_text(&self) -> String {
        let mut out = format!("overall: {}\n", self.overall());
        for component in self.components() {
            out.push_str(&format!(
                "component {:<12} {}\n",
                component,
                self.component_status(&component)
            ));
            for (rule, state) in self.rules.iter().zip(&self.states) {
                if rule.component != component {
                    continue;
                }
                match state.last_value {
                    Some(v) => out.push_str(&format!(
                        "  rule {:<24} {:<8} value {:.3}\n",
                        rule.name, state.current, v
                    )),
                    None => out.push_str(&format!(
                        "  rule {:<24} {:<8} (no data)\n",
                        rule.name, state.current
                    )),
                }
            }
        }
        if !self.alerts.is_empty() {
            out.push_str("alerts:\n");
            for a in &self.alerts {
                out.push_str(&format!("  {a}\n"));
            }
        }
        out
    }

    /// Renders the health state as a JSON object:
    /// `{"overall": "...", "components": {name: "..."}, "rules":
    /// [{"name": .., "component": .., "status": .., "value": ..}],
    /// "alerts": [{"at_micros": .., "component": .., "rule": ..,
    /// "from": .., "to": .., "value": ..}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"overall\":");
        json::write_string(&mut out, &self.overall().to_string());
        out.push_str(",\"components\":{");
        for (i, component) in self.components().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, component);
            out.push(':');
            json::write_string(&mut out, &self.component_status(component).to_string());
        }
        out.push_str("},\"rules\":[");
        for (i, (rule, state)) in self.rules.iter().zip(&self.states).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &rule.name);
            out.push_str(",\"component\":");
            json::write_string(&mut out, &rule.component);
            out.push_str(",\"status\":");
            json::write_string(&mut out, &state.current.to_string());
            match state.last_value {
                Some(v) => out.push_str(&format!(",\"value\":{v}}}")),
                None => out.push('}'),
            }
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"at_micros\":{},\"component\":", a.at_micros));
            json::write_string(&mut out, &a.component);
            out.push_str(",\"rule\":");
            json::write_string(&mut out, &a.rule);
            out.push_str(",\"from\":");
            json::write_string(&mut out, &a.from.to_string());
            out.push_str(",\"to\":");
            json::write_string(&mut out, &a.to.to_string());
            out.push_str(&format!(",\"value\":{}}}", a.value));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricSampler, SamplerConfig, Telemetry};
    use std::sync::Arc;

    const SEC: u64 = 1_000_000;

    fn sampler(tel: &Telemetry) -> MetricSampler {
        MetricSampler::new(
            Arc::clone(tel.registry().unwrap()),
            SamplerConfig {
                cadence_micros: SEC,
                capacity: 64,
            },
        )
    }

    fn gauge_rule(enter: u32, exit: u32) -> HealthRule {
        HealthRule::new(
            "depth",
            "store",
            Signal::GaugeLevel {
                name: "depth".into(),
            },
            10.0,
            100.0,
        )
        .hysteresis(enter, exit)
    }

    #[test]
    fn status_ordering_is_severity() {
        assert!(HealthStatus::Healthy < HealthStatus::Degraded);
        assert!(HealthStatus::Degraded < HealthStatus::Critical);
    }

    #[test]
    fn hysteresis_requires_consecutive_breaches() {
        let tel = Telemetry::new();
        let g = tel.gauge("depth");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(gauge_rule(2, 2));
        // One breach tick: no transition yet.
        g.set(50);
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        // A clear tick resets the streak.
        g.set(5);
        s.force_sample(SEC);
        m.evaluate(&s, SEC);
        // Two consecutive breaches transition.
        g.set(50);
        s.force_sample(2 * SEC);
        m.evaluate(&s, 2 * SEC);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        s.force_sample(3 * SEC);
        m.evaluate(&s, 3 * SEC);
        assert_eq!(m.overall(), HealthStatus::Degraded);
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts()[0].from, HealthStatus::Healthy);
        assert_eq!(m.alerts()[0].to, HealthStatus::Degraded);
    }

    #[test]
    fn flapping_signal_does_not_flap_state() {
        let tel = Telemetry::new();
        let g = tel.gauge("depth");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(gauge_rule(2, 2));
        // Alternate breach/clear every tick: with 2/2 hysteresis the rule
        // must never leave Healthy.
        for t in 0..20u64 {
            g.set(if t % 2 == 0 { 50 } else { 5 });
            s.force_sample(t * SEC);
            m.evaluate(&s, t * SEC);
        }
        assert_eq!(m.overall(), HealthStatus::Healthy);
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn critical_and_recovery_are_logged() {
        let tel = Telemetry::new();
        let g = tel.gauge("depth");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(gauge_rule(1, 1));
        g.set(500);
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.overall(), HealthStatus::Critical);
        g.set(0);
        s.force_sample(SEC);
        m.evaluate(&s, SEC);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        let transitions: Vec<(HealthStatus, HealthStatus)> =
            m.alerts().iter().map(|a| (a.from, a.to)).collect();
        assert_eq!(
            transitions,
            vec![
                (HealthStatus::Healthy, HealthStatus::Critical),
                (HealthStatus::Critical, HealthStatus::Healthy),
            ]
        );
    }

    #[test]
    fn below_direction_breaches_low_values() {
        let tel = Telemetry::new();
        let g = tel.gauge("completeness_pct");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(
            HealthRule::new(
                "completeness",
                "flowstream",
                Signal::GaugeLevel {
                    name: "completeness_pct".into(),
                },
                99.0,
                50.0,
            )
            .below()
            .hysteresis(1, 1),
        );
        g.set(100);
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        g.set(80);
        s.force_sample(SEC);
        m.evaluate(&s, SEC);
        assert_eq!(m.overall(), HealthStatus::Degraded);
        g.set(10);
        s.force_sample(2 * SEC);
        m.evaluate(&s, 2 * SEC);
        assert_eq!(m.overall(), HealthStatus::Critical);
    }

    #[test]
    fn missing_metric_stays_healthy() {
        let tel = Telemetry::new();
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(gauge_rule(1, 1));
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        assert_eq!(m.rule_value("depth"), None);
        assert!(m.render_text().contains("(no data)"));
    }

    #[test]
    fn component_is_worst_of_rules() {
        let tel = Telemetry::new();
        let a = tel.gauge("a");
        let _b = tel.gauge("b");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new()
            .with_rule(
                HealthRule::new("ra", "x", Signal::GaugeLevel { name: "a".into() }, 1.0, 2.0)
                    .hysteresis(1, 1),
            )
            .with_rule(
                HealthRule::new("rb", "x", Signal::GaugeLevel { name: "b".into() }, 1.0, 2.0)
                    .hysteresis(1, 1),
            );
        a.set(10);
        s.force_sample(0);
        m.evaluate(&s, 0);
        assert_eq!(m.component_status("x"), HealthStatus::Critical);
        assert_eq!(m.rule_status("rb"), HealthStatus::Healthy);
        let json = m.render_json();
        assert!(json.contains("\"overall\":\"critical\""));
        assert!(json.contains("\"components\":{\"x\":\"critical\"}"));
    }

    #[test]
    fn gauge_lag_measures_against_now() {
        let tel = Telemetry::new();
        let g = tel.gauge("watermark_micros");
        let mut s = sampler(&tel);
        let mut m = HealthMonitor::new().with_rule(
            HealthRule::new(
                "freshness",
                "store",
                Signal::GaugeLag {
                    name: "watermark_micros".into(),
                },
                (5 * SEC) as f64,
                (60 * SEC) as f64,
            )
            .hysteresis(1, 1),
        );
        g.set((10 * SEC) as i64);
        s.force_sample(10 * SEC);
        m.evaluate(&s, 10 * SEC);
        assert_eq!(m.overall(), HealthStatus::Healthy);
        // 20 s later the watermark has not moved: lag 20 s > 5 s.
        s.force_sample(30 * SEC);
        m.evaluate(&s, 30 * SEC);
        assert_eq!(m.overall(), HealthStatus::Degraded);
    }
}
