//! Space-Saving heavy-hitter detection (Metwally, Agrawal, El Abbadi 2005),
//! extended with weighted updates and summary merging.
//!
//! This is the classic "heavy hitter detection" aggregation method the paper
//! lists (§V) and one of the baselines Flowtree is compared against in the
//! E7 experiment.

use std::collections::BTreeMap;

use megastream_flow::time::{TimeWindow, Timestamp};

use crate::aggregator::{Combinable, ComputingPrimitive, Granularity, PrimitiveDescription};

/// A monitored counter: estimated count plus maximum overestimation error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsCounter {
    /// Estimated count (never underestimates the true count).
    pub count: u64,
    /// Maximum possible overestimation.
    pub error: u64,
}

impl SsCounter {
    /// Guaranteed lower bound on the true count.
    pub fn guaranteed(&self) -> u64 {
        self.count - self.error
    }
}

/// The Space-Saving sketch: tracks (approximately) the `capacity` most
/// frequent keys of a weighted stream.
///
/// ```
/// use megastream_primitives::spacesaving::SpaceSaving;
/// let mut ss = SpaceSaving::new(4);
/// for _ in 0..100 { ss.offer("elephant", 1); }
/// for m in 0..20 { ss.offer(format!("mouse{m}").leak() as &str, 1); }
/// let top = ss.top_k(1);
/// assert_eq!(top[0].0, "elephant");
/// assert!(top[0].1.count >= 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSaving<K: Ord> {
    capacity: usize,
    // Ordered so that iteration — and therefore min-eviction tie-breaking
    // and truncation among equal counts — is a function of the keys alone,
    // never of hasher seeding or insertion history.
    counters: BTreeMap<K, SsCounter>,
    /// Total weight offered (kept for relative thresholds).
    total: u64,
}

impl<K: Ord + Clone> SpaceSaving<K> {
    /// Creates a sketch tracking at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "space-saving capacity must be non-zero");
        SpaceSaving {
            capacity,
            counters: BTreeMap::new(),
            total: 0,
        }
    }

    /// Offers `weight` occurrences of `key`.
    pub fn offer(&mut self, key: K, weight: u64) {
        self.total += weight;
        if let Some(c) = self.counters.get_mut(&key) {
            c.count += weight;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(
                key,
                SsCounter {
                    count: weight,
                    error: 0,
                },
            );
            return;
        }
        // Evict the minimum counter and inherit its count as error. Among
        // equal minimum counts, `min_by_key` keeps the first in BTreeMap
        // iteration order — the smallest key — so eviction is deterministic.
        // `capacity > 0` makes the map non-empty here; if that invariant
        // ever broke we degrade to a plain insert instead of panicking.
        match self
            .counters
            .iter()
            .min_by_key(|(_, c)| c.count)
            .map(|(k, c)| (k.clone(), c.count))
        {
            Some((min_key, min_count)) => {
                self.counters.remove(&min_key);
                self.counters.insert(
                    key,
                    SsCounter {
                        count: min_count + weight,
                        error: min_count,
                    },
                );
            }
            None => {
                self.counters.insert(
                    key,
                    SsCounter {
                        count: weight,
                        error: 0,
                    },
                );
            }
        }
    }

    /// Rebuilds a sketch from its observable parts, or `None` if the parts
    /// violate the invariants (`capacity == 0`, more entries than capacity,
    /// or a counter whose error exceeds its count). Duplicate keys collapse
    /// to the last occurrence. Used by the
    /// cold-tier codec to reconstruct summaries from disk.
    pub fn from_parts(capacity: usize, entries: Vec<(K, SsCounter)>, total: u64) -> Option<Self> {
        if capacity == 0 {
            return None;
        }
        let mut counters = BTreeMap::new();
        for (key, counter) in entries {
            if counter.error > counter.count {
                return None;
            }
            counters.insert(key, counter);
        }
        if counters.len() > capacity {
            return None;
        }
        Some(SpaceSaving {
            capacity,
            counters,
            total,
        })
    }

    /// Estimated counter for `key`, if monitored.
    pub fn estimate(&self, key: &K) -> Option<SsCounter> {
        self.counters.get(key).copied()
    }

    /// Raw iteration over all monitored counters in key order. Used by the
    /// cold-tier codec; prefer [`SpaceSaving::top_k`] for ranked queries.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &SsCounter)> {
        self.counters.iter()
    }

    /// Total stream weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of monitored keys.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no key is monitored.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Shrinks the capacity, evicting the smallest counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "space-saving capacity must be non-zero");
        self.capacity = capacity;
        if self.counters.len() > capacity {
            let mut entries: Vec<(K, SsCounter)> =
                std::mem::take(&mut self.counters).into_iter().collect();
            sort_descending(&mut entries);
            entries.truncate(capacity);
            self.counters = entries.into_iter().collect();
        }
    }

    /// The `k` keys with the highest estimated counts, descending.
    pub fn top_k(&self, k: usize) -> Vec<(K, SsCounter)> {
        let mut entries: Vec<(K, SsCounter)> =
            self.counters.iter().map(|(k, c)| (k.clone(), *c)).collect();
        sort_descending(&mut entries);
        entries.truncate(k);
        entries
    }

    /// Keys whose *guaranteed* count is at least `threshold` (no false
    /// positives with respect to the guarantee).
    pub fn above(&self, threshold: u64) -> Vec<(K, SsCounter)> {
        let mut entries: Vec<(K, SsCounter)> = self
            .counters
            .iter()
            .filter(|(_, c)| c.guaranteed() >= threshold)
            .map(|(k, c)| (k.clone(), *c))
            .collect();
        sort_descending(&mut entries);
        entries
    }
}

/// Sorts by estimated count descending, breaking count ties by ascending
/// key so every ranking (and every capacity truncation) is deterministic.
fn sort_descending<K: Ord>(entries: &mut [(K, SsCounter)]) {
    entries.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
}

impl<K: Ord + Clone> Combinable for SpaceSaving<K> {
    /// Merges two sketches: counts and errors add for shared keys, then the
    /// result is truncated back to the larger capacity. Estimates never
    /// underestimate the combined stream for keys that survive truncation.
    fn combine(&mut self, other: &Self) {
        for (k, c) in &other.counters {
            self.counters
                .entry(k.clone())
                .and_modify(|mine| {
                    mine.count += c.count;
                    mine.error += c.error;
                })
                .or_insert(*c);
        }
        self.total += other.total;
        let capacity = self.capacity.max(other.capacity);
        self.set_capacity(capacity);
    }
}

impl<K: Ord + Clone> ComputingPrimitive for SpaceSaving<K> {
    type Item = (K, u64);
    type Summary = SpaceSaving<K>;

    fn describe(&self) -> PrimitiveDescription {
        PrimitiveDescription {
            name: "space-saving",
            domain_aware: false,
            on_demand_granularity: false,
        }
    }

    fn ingest(&mut self, item: &(K, u64), _ts: Timestamp) {
        self.offer(item.0.clone(), item.1);
    }

    fn snapshot(&self, _window: TimeWindow) -> SpaceSaving<K> {
        self.clone()
    }

    fn reset(&mut self) {
        self.counters.clear();
        self.total = 0;
    }

    fn set_granularity(&mut self, granularity: Granularity) {
        // The dial scales the capacity relative to the current maximum of
        // capacity and monitored keys.
        let base = self.capacity.max(1);
        let new = ((base as f64) * granularity.value()).round().max(1.0) as usize;
        self.set_capacity(new);
    }

    fn granularity(&self) -> Granularity {
        Granularity::new(self.counters.len() as f64 / self.capacity.max(1) as f64)
    }

    fn footprint_bytes(&self) -> usize {
        self.counters.len() * (std::mem::size_of::<K>() + std::mem::size_of::<SsCounter>())
    }

    fn deep_bytes(&self) -> usize {
        // Per-counter payload plus the fixed header — a pure function of
        // the monitored-key count, independent of insertion history.
        self.counters.len() * (std::mem::size_of::<K>() + std::mem::size_of::<SsCounter>())
            + std::mem::size_of::<Self>()
    }

    fn node_count(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn never_underestimates() {
        let mut ss = SpaceSaving::new(3);
        // True counts: a=50, b=30, then 40 distinct singletons.
        for _ in 0..50 {
            ss.offer("a", 1);
        }
        for _ in 0..30 {
            ss.offer("b", 1);
        }
        let noise: Vec<String> = (0..40).map(|i| format!("n{i}")).collect();
        for n in &noise {
            ss.offer(n.as_str(), 1);
        }
        let a = ss.estimate(&"a").unwrap();
        assert!(a.count >= 50);
        assert!(a.guaranteed() <= 50);
        assert_eq!(ss.total(), 120);
        assert_eq!(ss.len(), 3);
    }

    #[test]
    fn weighted_updates() {
        let mut ss = SpaceSaving::new(2);
        ss.offer("x", 10);
        ss.offer("y", 5);
        ss.offer("x", 7);
        assert_eq!(ss.estimate(&"x").unwrap().count, 17);
        assert_eq!(ss.estimate(&"x").unwrap().error, 0);
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut ss = SpaceSaving::new(2);
        ss.offer("a", 10);
        ss.offer("b", 3);
        ss.offer("c", 1); // evicts b (count 3)
        let c = ss.estimate(&"c").unwrap();
        assert_eq!(c.count, 4);
        assert_eq!(c.error, 3);
        assert_eq!(c.guaranteed(), 1);
        assert!(ss.estimate(&"b").is_none());
    }

    #[test]
    fn top_k_sorted_descending() {
        let mut ss = SpaceSaving::new(8);
        for (k, w) in [("a", 5u64), ("b", 9), ("c", 2), ("d", 7)] {
            ss.offer(k, w);
        }
        let top = ss.top_k(3);
        assert_eq!(
            top.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec!["b", "d", "a"]
        );
    }

    #[test]
    fn above_uses_guaranteed_counts() {
        let mut ss = SpaceSaving::new(2);
        ss.offer("a", 10);
        ss.offer("b", 3);
        ss.offer("c", 1); // c: count 4, guaranteed 1
        let hh = ss.above(4);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].0, "a");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = SpaceSaving::new(4);
        a.offer("x", 10);
        a.offer("y", 5);
        let mut b = SpaceSaving::new(4);
        b.offer("x", 7);
        b.offer("z", 2);
        a.combine(&b);
        assert_eq!(a.estimate(&"x").unwrap().count, 17);
        assert_eq!(a.estimate(&"z").unwrap().count, 2);
        assert_eq!(a.total(), 24);
    }

    #[test]
    fn merge_truncates_to_capacity() {
        let mut a = SpaceSaving::new(2);
        a.offer("a", 10);
        a.offer("b", 1);
        let mut b = SpaceSaving::new(2);
        b.offer("c", 20);
        b.offer("d", 2);
        a.combine(&b);
        assert_eq!(a.len(), 2);
        // The two largest survive.
        assert!(a.estimate(&"c").is_some());
        assert!(a.estimate(&"a").is_some());
    }

    #[test]
    fn set_capacity_keeps_largest() {
        let mut ss = SpaceSaving::new(4);
        for (k, w) in [("a", 5u64), ("b", 9), ("c", 2), ("d", 7)] {
            ss.offer(k, w);
        }
        ss.set_capacity(2);
        assert_eq!(ss.len(), 2);
        assert!(ss.estimate(&"b").is_some());
        assert!(ss.estimate(&"d").is_some());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = SpaceSaving::<u32>::new(0);
    }

    proptest! {
        /// Classic Space-Saving guarantee: overestimation of any monitored
        /// key is at most total/capacity.
        #[test]
        fn prop_error_bounded_by_total_over_capacity(
            keys in proptest::collection::vec(0u8..20, 1..300),
            cap in 1usize..16,
        ) {
            let mut ss = SpaceSaving::new(cap);
            let mut truth: HashMap<u8, u64> = HashMap::new();
            for k in &keys {
                ss.offer(*k, 1);
                *truth.entry(*k).or_default() += 1;
            }
            let bound = ss.total() / cap as u64;
            for (k, c) in ss.top_k(cap) {
                let t = truth[&k];
                prop_assert!(c.count >= t, "underestimated {k}: {} < {t}", c.count);
                prop_assert!(c.count - t <= bound, "overestimate beyond bound");
                prop_assert!(c.error <= bound);
            }
        }

        /// Any key with true count > total/capacity must be monitored.
        #[test]
        fn prop_heavy_keys_are_monitored(
            keys in proptest::collection::vec(0u8..10, 1..300),
            cap in 2usize..16,
        ) {
            let mut ss = SpaceSaving::new(cap);
            let mut truth: HashMap<u8, u64> = HashMap::new();
            for k in &keys {
                ss.offer(*k, 1);
                *truth.entry(*k).or_default() += 1;
            }
            let bound = ss.total() / cap as u64;
            for (k, t) in truth {
                if t > bound {
                    prop_assert!(ss.estimate(&k).is_some(), "heavy key {k} lost");
                }
            }
        }
    }
}
