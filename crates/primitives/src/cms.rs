//! Count-Min sketch frequency estimation (Cormode & Muthukrishnan 2005).
//!
//! A second classic streaming baseline (paper §V: "more complicated
//! streaming algorithms"). Used in experiment E7 as a comparator for
//! Flowtree point queries.

use std::hash::{Hash, Hasher};

use megastream_flow::time::{TimeWindow, Timestamp};

use crate::aggregator::{Combinable, ComputingPrimitive, Granularity, PrimitiveDescription};

/// A Count-Min sketch with `depth` rows of `width` counters.
///
/// Uses Kirsch–Mitzenmacher double hashing: row `i` hashes a key to
/// `h1 + i·h2 mod width`.
///
/// ```
/// use megastream_primitives::cms::CountMinSketch;
/// let mut cms = CountMinSketch::new(1024, 4, 99);
/// cms.offer(&"k", 10);
/// cms.offer(&"k", 5);
/// assert!(cms.estimate(&"k") >= 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    rows: Vec<Vec<u64>>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0, "sketch width must be non-zero");
        assert!(depth > 0, "sketch depth must be non-zero");
        CountMinSketch {
            width,
            depth,
            seed,
            rows: vec![vec![0; width]; depth],
            total: 0,
        }
    }

    /// Creates a sketch sized for additive error `epsilon·total` with
    /// failure probability `delta` (width = ⌈e/ε⌉, depth = ⌈ln 1/δ⌉).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` or `delta` is outside `(0, 1)`.
    pub fn with_error(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon outside (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta outside (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth, seed)
    }

    fn hashes<K: Hash + ?Sized>(&self, key: &K) -> (u64, u64) {
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h1);
        key.hash(&mut h1);
        let a = h1.finish();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        (self.seed ^ 0x9E37_79B9_7F4A_7C15).hash(&mut h2);
        key.hash(&mut h2);
        // Force h2 odd so row offsets cycle through the whole width.
        (a, h2.finish() | 1)
    }

    /// Adds `weight` occurrences of `key`.
    pub fn offer<K: Hash + ?Sized>(&mut self, key: &K, weight: u64) {
        let (h1, h2) = self.hashes(key);
        for (i, row) in self.rows.iter_mut().enumerate() {
            let idx = (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.width as u64) as usize;
            row[idx] = row[idx].saturating_add(weight);
        }
        self.total = self.total.saturating_add(weight);
    }

    /// Point query: an estimate that never underestimates the true count.
    pub fn estimate<K: Hash + ?Sized>(&self, key: &K) -> u64 {
        let (h1, h2) = self.hashes(key);
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let idx = (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.width as u64) as usize;
                row[idx]
            })
            .min()
            .unwrap_or(0)
    }

    /// Total stream weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sketch width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (number of rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether `other` can combine with this sketch: same width, depth,
    /// and seed, so the two share hash functions cell for cell.
    pub fn compatible_with(&self, other: &Self) -> bool {
        self.width == other.width && self.depth == other.depth && self.seed == other.seed
    }

    /// Non-panicking [`Combinable::combine`]: adds counters cell-wise and
    /// returns `true`, or leaves `self` untouched and returns `false` when
    /// the sketches are incompatible (different shape or seed). The merge
    /// laws suite uses this to pin that mismatches are *rejected*, never a
    /// panic or a silent corruption.
    pub fn try_combine(&mut self, other: &Self) -> bool {
        if !self.compatible_with(other) {
            return false;
        }
        self.combine(other);
        true
    }
}

impl Combinable for CountMinSketch {
    /// Adds counters cell-wise.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches have different dimensions or seeds (they
    /// would not share hash functions and cannot be combined meaningfully).
    fn combine(&mut self, other: &Self) {
        assert!(
            self.width == other.width && self.depth == other.depth && self.seed == other.seed,
            "cannot combine count-min sketches with different shapes or seeds"
        );
        for (mine, theirs) in self.rows.iter_mut().zip(other.rows.iter()) {
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a = a.saturating_add(*b);
            }
        }
        self.total = self.total.saturating_add(other.total);
    }
}

/// Stream items are `(key-hash-input, weight)` pairs; to keep the primitive
/// object-safe over arbitrary keys we fix the item to a pre-hashed `u64`.
impl ComputingPrimitive for CountMinSketch {
    type Item = (u64, u64);
    type Summary = CountMinSketch;

    fn describe(&self) -> PrimitiveDescription {
        PrimitiveDescription {
            name: "count-min-sketch",
            domain_aware: false,
            on_demand_granularity: false,
        }
    }

    fn ingest(&mut self, item: &(u64, u64), _ts: Timestamp) {
        self.offer(&item.0, item.1);
    }

    fn snapshot(&self, _window: TimeWindow) -> CountMinSketch {
        self.clone()
    }

    fn reset(&mut self) {
        for row in &mut self.rows {
            row.fill(0);
        }
        self.total = 0;
    }

    fn set_granularity(&mut self, granularity: Granularity) {
        // Width scales with the dial; counters cannot be re-hashed, so the
        // sketch restarts at the new width (acceptable at epoch boundaries,
        // which is when the manager retunes primitives).
        let new_width = ((self.width as f64) * granularity.value()).round().max(1.0) as usize;
        if new_width != self.width {
            *self = CountMinSketch::new(new_width, self.depth, self.seed);
        }
    }

    fn granularity(&self) -> Granularity {
        Granularity::FULL
    }

    fn footprint_bytes(&self) -> usize {
        self.width * self.depth * std::mem::size_of::<u64>()
    }

    fn deep_bytes(&self) -> usize {
        // The cell matrix plus the fixed header — a pure function of the
        // dimensions, which never change after construction.
        self.width * self.depth * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }

    fn node_count(&self) -> usize {
        self.width * self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::new(64, 4, 7);
        for i in 0..100u32 {
            cms.offer(&i, (i % 5 + 1) as u64);
        }
        for i in 0..100u32 {
            assert!(cms.estimate(&i) >= (i % 5 + 1) as u64);
        }
    }

    #[test]
    fn exactness_with_ample_width() {
        let mut cms = CountMinSketch::new(4096, 4, 7);
        for i in 0..10u32 {
            cms.offer(&i, 100 + i as u64);
        }
        for i in 0..10u32 {
            assert_eq!(cms.estimate(&i), 100 + i as u64);
        }
        assert_eq!(cms.estimate(&999u32), 0);
    }

    #[test]
    fn with_error_dimensions() {
        let cms = CountMinSketch::with_error(0.01, 0.01, 1);
        assert!(cms.width() >= 272); // e/0.01 ≈ 271.8
        assert!(cms.depth() >= 5); // ln(100) ≈ 4.6
    }

    #[test]
    fn merge_is_additive() {
        let mut a = CountMinSketch::new(128, 4, 3);
        let mut b = CountMinSketch::new(128, 4, 3);
        a.offer(&"x", 5);
        b.offer(&"x", 7);
        b.offer(&"y", 2);
        a.combine(&b);
        assert!(a.estimate(&"x") >= 12);
        assert!(a.estimate(&"y") >= 2);
        assert_eq!(a.total(), 14);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = CountMinSketch::new(128, 4, 3);
        let b = CountMinSketch::new(64, 4, 3);
        a.combine(&b);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_rejects_mismatched_seeds() {
        let mut a = CountMinSketch::new(128, 4, 3);
        let b = CountMinSketch::new(128, 4, 4);
        a.combine(&b);
    }

    #[test]
    fn error_bound_holds_statistically() {
        // width 272 → additive error ≤ total/100 with high probability.
        let mut cms = CountMinSketch::with_error(0.01, 0.001, 42);
        let n_keys = 1_000u32;
        for i in 0..n_keys {
            cms.offer(&i, 1);
        }
        let bound = (cms.total() as f64 * 0.01).ceil() as u64;
        let violations = (0..n_keys).filter(|i| cms.estimate(i) > 1 + bound).count();
        assert!(violations < 10, "{violations} estimates beyond bound");
    }

    proptest! {
        #[test]
        fn prop_estimate_at_least_truth(
            keys in proptest::collection::vec(0u16..50, 1..200)
        ) {
            let mut cms = CountMinSketch::new(32, 3, 5);
            let mut truth = std::collections::HashMap::new();
            for k in &keys {
                cms.offer(k, 1);
                *truth.entry(*k).or_insert(0u64) += 1;
            }
            for (k, t) in truth {
                prop_assert!(cms.estimate(&k) >= t);
            }
        }
    }
}
