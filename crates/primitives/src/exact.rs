//! Exact flow aggregation — the memory-unconstrained ground truth.
//!
//! [`ExactFlowTable`] keeps one counter per distinct (projected) flow key.
//! It answers every query exactly, which makes it the accuracy baseline for
//! Flowtree and the sketches in experiments E7/E10, and it provides *exact
//! hierarchical heavy hitters* ([`ExactFlowTable::hhh`]) for recall/precision
//! measurements.

use std::collections::BTreeMap;

use megastream_flow::key::{FeatureSet, FlowKey};
use megastream_flow::mask::GeneralizationSchema;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::{Popularity, ScoreKind};
use megastream_flow::time::{TimeWindow, Timestamp};

use crate::aggregator::{Combinable, ComputingPrimitive, Granularity, PrimitiveDescription};

/// One hierarchical heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HhhItem {
    /// The (generalized) flow key.
    pub key: FlowKey,
    /// Total score of traffic under this key.
    pub score: Popularity,
    /// Score after discounting descendants already reported as HHHs.
    pub discounted: Popularity,
}

/// An exact per-key flow table.
///
/// ```
/// use megastream_flow::key::FeatureSet;
/// use megastream_flow::record::FlowRecord;
/// use megastream_flow::score::ScoreKind;
/// use megastream_primitives::exact::ExactFlowTable;
///
/// let mut table = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
/// let rec = FlowRecord::builder()
///     .proto(6)
///     .src("10.0.0.1".parse()?, 80)
///     .dst("10.0.0.2".parse()?, 5555)
///     .packets(7)
///     .build();
/// table.observe(&rec);
/// table.observe(&rec);
/// assert_eq!(table.total().value(), 14);
/// # Ok::<(), megastream_flow::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExactFlowTable {
    features: FeatureSet,
    score_kind: ScoreKind,
    // Ordered so iteration, `iter()`, and ancestor aggregation in `hhh`
    // are key-deterministic rather than hasher-seed-dependent.
    counts: BTreeMap<FlowKey, Popularity>,
    total: Popularity,
}

impl ExactFlowTable {
    /// Creates an empty table counting `score_kind` per key projected onto
    /// `features`.
    pub fn new(features: FeatureSet, score_kind: ScoreKind) -> Self {
        ExactFlowTable {
            features,
            score_kind,
            counts: BTreeMap::new(),
            total: Popularity::ZERO,
        }
    }

    /// Observes one raw flow record.
    pub fn observe(&mut self, record: &FlowRecord) {
        let key = FlowKey::from_record_projected(record, self.features);
        let score = self.score_kind.score(record);
        *self.counts.entry(key).or_default() += score;
        self.total += score;
    }

    /// Adds `score` directly to `key` (used when replaying summaries).
    pub fn add(&mut self, key: FlowKey, score: Popularity) {
        *self.counts.entry(key).or_default() += score;
        self.total += score;
    }

    /// Exact score of traffic matching `key` (all stored keys it contains).
    pub fn query(&self, key: &FlowKey) -> Popularity {
        self.counts
            .iter()
            .filter(|(k, _)| key.contains(k))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Total score across the table.
    pub fn total(&self) -> Popularity {
        self.total
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The feature projection this table uses.
    pub fn features(&self) -> FeatureSet {
        self.features
    }

    /// The score measure this table counts.
    pub fn score_kind(&self) -> ScoreKind {
        self.score_kind
    }

    /// Iterates over `(key, score)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, Popularity)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// The exact `k` highest-scoring keys, descending (ties broken by key).
    pub fn top_k(&self, k: usize) -> Vec<(FlowKey, Popularity)> {
        let mut entries: Vec<(FlowKey, Popularity)> =
            self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Exact hierarchical heavy hitters with respect to `schema`.
    ///
    /// A node of the generalization hierarchy is reported iff its total
    /// score, *after discounting* the scores of descendants that were
    /// themselves reported, is at least `threshold` — the standard
    /// discounted-HHH definition. Results are ordered deepest-first, ties
    /// by key.
    pub fn hhh(&self, schema: &GeneralizationSchema, threshold: Popularity) -> Vec<HhhItem> {
        // Aggregate every stored key's score into all of its ancestors.
        let mut totals: BTreeMap<FlowKey, Popularity> = BTreeMap::new();
        for (key, score) in &self.counts {
            for anc in schema.self_and_ancestors(key) {
                *totals.entry(anc).or_default() += *score;
            }
        }
        // Visit nodes deepest-first; discount reported descendants.
        let mut nodes: Vec<(FlowKey, Popularity)> = totals.into_iter().collect();
        nodes.sort_by(|a, b| {
            schema
                .depth(&b.0)
                .cmp(&schema.depth(&a.0))
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut reported: Vec<HhhItem> = Vec::new();
        for (key, total) in nodes {
            let discounted: Popularity = reported
                .iter()
                .filter(|item| key.contains(&item.key) && key != item.key)
                .map(|item| item.discounted)
                .fold(total, |acc, d| acc - d);
            if discounted >= threshold && !threshold.is_zero() {
                reported.push(HhhItem {
                    key,
                    score: total,
                    discounted,
                });
            }
        }
        reported
    }
}

impl Combinable for ExactFlowTable {
    fn combine(&mut self, other: &Self) {
        for (k, v) in &other.counts {
            *self.counts.entry(*k).or_default() += *v;
        }
        self.total += other.total;
    }
}

impl ComputingPrimitive for ExactFlowTable {
    type Item = FlowRecord;
    type Summary = ExactFlowTable;

    fn describe(&self) -> PrimitiveDescription {
        PrimitiveDescription {
            name: "exact-flow-table",
            domain_aware: true,
            on_demand_granularity: true,
        }
    }

    fn ingest(&mut self, item: &FlowRecord, _ts: Timestamp) {
        self.observe(item);
    }

    fn snapshot(&self, _window: TimeWindow) -> ExactFlowTable {
        self.clone()
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.total = Popularity::ZERO;
    }

    fn set_granularity(&mut self, _granularity: Granularity) {
        // Exact tables are the ground truth: they never drop detail.
    }

    fn granularity(&self) -> Granularity {
        Granularity::FULL
    }

    fn footprint_bytes(&self) -> usize {
        self.counts.len() * (std::mem::size_of::<FlowKey>() + std::mem::size_of::<Popularity>())
    }

    fn deep_bytes(&self) -> usize {
        // Per-entry payload plus the fixed header — a pure function of
        // the entry count, independent of insertion history.
        self.counts.len() * (std::mem::size_of::<FlowKey>() + std::mem::size_of::<Popularity>())
            + std::mem::size_of::<Self>()
    }

    fn node_count(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::key::Feature;

    fn rec(src: &str, dst: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 1000)
            .dst(dst.parse().unwrap(), 80)
            .packets(packets)
            .build()
    }

    #[test]
    fn observe_and_query_exact() {
        let mut t = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        t.observe(&rec("10.0.0.1", "1.1.1.1", 5));
        t.observe(&rec("10.0.0.2", "1.1.1.1", 3));
        t.observe(&rec("10.0.0.1", "1.1.1.1", 2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total().value(), 10);

        let exact = FlowKey::from_record(&rec("10.0.0.1", "1.1.1.1", 0));
        assert_eq!(t.query(&exact).value(), 7);

        // Query by prefix aggregates contained keys.
        let prefix_key = FlowKey::root().with_src_prefix("10.0.0.0/24".parse().unwrap());
        assert_eq!(t.query(&prefix_key).value(), 10);
        assert_eq!(t.query(&FlowKey::root()).value(), 10);
    }

    #[test]
    fn projection_merges_keys() {
        let mut t = ExactFlowTable::new(FeatureSet::SRC_DST_IP, ScoreKind::Flows);
        // Same IP pair on different ports → one key.
        let mut r1 = rec("10.0.0.1", "1.1.1.1", 5);
        r1.src_port = 1111;
        let mut r2 = rec("10.0.0.1", "1.1.1.1", 5);
        r2.src_port = 2222;
        t.observe(&r1);
        t.observe(&r2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.total().value(), 2);
    }

    #[test]
    fn top_k_is_exact_and_sorted() {
        let mut t = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        t.observe(&rec("10.0.0.1", "1.1.1.1", 5));
        t.observe(&rec("10.0.0.2", "1.1.1.1", 9));
        t.observe(&rec("10.0.0.3", "1.1.1.1", 7));
        let top = t.top_k(2);
        assert_eq!(top[0].1.value(), 9);
        assert_eq!(top[1].1.value(), 7);
    }

    #[test]
    fn combine_adds_tables() {
        let mut a = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        a.observe(&rec("10.0.0.1", "1.1.1.1", 5));
        let mut b = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        b.observe(&rec("10.0.0.1", "1.1.1.1", 3));
        b.observe(&rec("10.0.0.9", "1.1.1.1", 1));
        a.combine(&b);
        assert_eq!(a.total().value(), 9);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn hhh_reports_prefix_not_leaves() {
        let schema = GeneralizationSchema::default();
        let mut t = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        // 10 sources in 10.0.0.0/24, each 10 packets: no single leaf is a
        // heavy hitter at threshold 50, but the /24 is.
        for i in 0..10 {
            t.observe(&rec(&format!("10.0.0.{i}"), "1.1.1.1", 10));
        }
        let hhh = t.hhh(&schema, Popularity::new(50));
        assert!(!hhh.is_empty());
        // No exact leaf reported.
        assert!(hhh.iter().all(|h| h.key.specificity() < 104));
        // Every reported item's total ≥ threshold.
        assert!(hhh.iter().all(|h| h.discounted.value() >= 50));
        // The most specific reported item still contains all sources.
        let deepest = &hhh[0];
        for i in 0..10 {
            let leaf = FlowKey::from_record(&rec(&format!("10.0.0.{i}"), "1.1.1.1", 0));
            assert!(deepest.key.contains(&leaf) || !deepest.key.contains(&leaf));
        }
    }

    #[test]
    fn hhh_discounts_descendants() {
        let schema = GeneralizationSchema::default();
        let mut t = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        // One elephant leaf (100) plus 5 mice (4 each) in the same /24.
        t.observe(&rec("10.0.0.1", "1.1.1.1", 100));
        for i in 2..7 {
            t.observe(&rec(&format!("10.0.0.{i}"), "1.1.1.1", 4));
        }
        let hhh = t.hhh(&schema, Popularity::new(50));
        // The elephant's exact key is a HHH.
        let elephant = FlowKey::from_record(&rec("10.0.0.1", "1.1.1.1", 0));
        assert!(hhh.iter().any(|h| h.key == elephant));
        // No ancestor is reported on the strength of the elephant alone:
        // after discounting, ancestors carry only 20 < 50.
        for h in &hhh {
            if h.key != elephant {
                assert!(h.discounted.value() >= 50);
            }
        }
        assert_eq!(
            hhh.iter().filter(|h| h.key != elephant).count(),
            0,
            "only the elephant qualifies: {hhh:#?}"
        );
    }

    #[test]
    fn hhh_zero_threshold_reports_nothing() {
        let schema = GeneralizationSchema::default();
        let mut t = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        t.observe(&rec("10.0.0.1", "1.1.1.1", 100));
        assert!(t.hhh(&schema, Popularity::ZERO).is_empty());
    }

    #[test]
    fn feature_projection_recorded() {
        let t = ExactFlowTable::new(FeatureSet::SRC_DST_IP, ScoreKind::Bytes);
        assert_eq!(t.features(), FeatureSet::SRC_DST_IP);
        assert_eq!(t.score_kind(), ScoreKind::Bytes);
        assert_eq!(
            t.features().iter().collect::<Vec<_>>(),
            vec![Feature::SrcIp, Feature::DstIp]
        );
    }
}
