//! Statistics over time bins: "simple statistics over time bins (e.g., sum,
//! mean, median, and standard deviation)" (paper §V).
//!
//! [`TimeBinStats`] buckets a stream of `(ts, value)` observations into bins
//! of a configurable width and keeps per-bin [`BinStats`] — count, sum,
//! min/max, sum of squares (for the standard deviation) and a small
//! reservoir (for the median and other quantiles).
//!
//! Granularity maps to the bin width: dial value `g` selects a width of
//! `base_width · 2^⌈log2(1/g)⌉`, so all admissible widths are power-of-two
//! multiples of the base width and any two summaries can be aligned by
//! re-binning the finer one ([`BinnedSeries::coarsened_to`]).

use std::collections::BTreeMap;

use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};

use crate::aggregator::{Combinable, ComputingPrimitive, Granularity, PrimitiveDescription};
use crate::reservoir::Reservoir;

/// Default number of values retained per bin for quantile estimation.
const QUANTILE_SAMPLE: usize = 32;

/// Aggregate statistics of one time bin.
#[derive(Debug, Clone, PartialEq)]
pub struct BinStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    sample: Reservoir<f64>,
}

impl BinStats {
    fn new(seed: u64) -> Self {
        BinStats {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sample: Reservoir::new(QUANTILE_SAMPLE, seed),
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sample.insert(value);
    }

    /// Rebuilds bin statistics from their parts, or `None` if the parts are
    /// inconsistent: a NaN moment or bound (NaN would poison the quantile
    /// sort's ordering contract), or `min > max` for a non-empty bin. Raw
    /// IEEE-754 bounds are accepted as-is so an empty bin's `+∞/-∞`
    /// sentinels round-trip exactly. Used by the cold-tier codec.
    pub fn from_parts(
        count: u64,
        sum: f64,
        sum_sq: f64,
        min: f64,
        max: f64,
        sample: Reservoir<f64>,
    ) -> Option<Self> {
        if sum.is_nan() || sum_sq.is_nan() || min.is_nan() || max.is_nan() {
            return None;
        }
        if count > 0 && min > max {
            return None;
        }
        if sample.items().iter().any(|v| v.is_nan()) {
            return None;
        }
        Some(BinStats {
            count,
            sum,
            sum_sq,
            min,
            max,
            sample,
        })
    }

    /// Number of observations in the bin.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sum of squared values (backs [`BinStats::stddev`]).
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq
    }

    /// The raw `(min, max)` bounds, including the `(+∞, -∞)` sentinels of an
    /// empty bin — the exact stored parts, unlike [`BinStats::min`] /
    /// [`BinStats::max`] which hide the sentinels behind `Option`.
    pub fn raw_bounds(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// The per-bin quantile reservoir.
    pub fn sample(&self) -> &Reservoir<f64> {
        &self.sample
    }

    /// Smallest observed value, or `None` for an empty bin.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value, or `None` for an empty bin.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean value, or `None` for an empty bin.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population standard deviation, or `None` for an empty bin.
    pub fn stddev(&self) -> Option<f64> {
        self.mean().map(|m| {
            let var = (self.sum_sq / self.count as f64 - m * m).max(0.0);
            var.sqrt()
        })
    }

    /// Estimated median (from the per-bin reservoir sample).
    pub fn median(&self) -> Option<f64> {
        self.sample.quantile(0.5)
    }

    /// Estimated `q`-quantile (from the per-bin reservoir sample).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.sample.quantile(q)
    }
}

impl Combinable for BinStats {
    fn combine(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sample.combine(&other.sample);
    }
}

/// The data summary of [`TimeBinStats`]: a run of time bins.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedSeries {
    /// The time period this summary covers.
    pub window: TimeWindow,
    width: TimeDelta,
    bins: BTreeMap<u64, BinStats>,
}

impl BinnedSeries {
    /// Rebuilds a series from `(bin index, stats)` pairs, or `None` if
    /// `width` is zero (a zero width would divide by zero in every lookup).
    /// Duplicate indices are combined. Used by the cold-tier codec.
    pub fn from_parts(
        window: TimeWindow,
        width: TimeDelta,
        bins: Vec<(u64, BinStats)>,
    ) -> Option<Self> {
        if width.is_zero() {
            return None;
        }
        let mut map: BTreeMap<u64, BinStats> = BTreeMap::new();
        for (idx, stats) in bins {
            map.entry(idx)
                .and_modify(|b| b.combine(&stats))
                .or_insert(stats);
        }
        Some(BinnedSeries {
            window,
            width,
            bins: map,
        })
    }

    /// The bin width.
    pub fn width(&self) -> TimeDelta {
        self.width
    }

    /// Iterates over `(bin index, stats)` — the exact stored parts, inverse
    /// of [`BinnedSeries::from_parts`].
    pub fn raw_bins(&self) -> impl Iterator<Item = (u64, &BinStats)> {
        self.bins.iter().map(|(idx, stats)| (*idx, stats))
    }

    /// Number of non-empty bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the summary holds no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Iterates over `(bin start, stats)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, &BinStats)> {
        let width = self.width.as_micros();
        self.bins
            .iter()
            .map(move |(idx, stats)| (Timestamp::from_micros(idx * width), stats))
    }

    /// P1 query: the statistics of the bin containing `ts`.
    pub fn bin_at(&self, ts: Timestamp) -> Option<&BinStats> {
        self.bins.get(&(ts.as_micros() / self.width.as_micros()))
    }

    /// P1 query: aggregate statistics over all bins intersecting `window`.
    pub fn aggregate(&self, window: TimeWindow) -> BinStats {
        let mut acc = BinStats::new(0);
        let width = self.width.as_micros();
        for (idx, stats) in &self.bins {
            let start = Timestamp::from_micros(idx * width);
            let bin_window = TimeWindow::starting_at(start, self.width);
            if bin_window.overlaps(window) {
                acc.combine(stats);
            }
        }
        acc
    }

    /// Re-bins into a coarser width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a non-zero multiple of the current width.
    #[must_use]
    pub fn coarsened_to(&self, width: TimeDelta) -> BinnedSeries {
        let cur = self.width.as_micros();
        let new = width.as_micros();
        assert!(
            new >= cur && new.is_multiple_of(cur),
            "target width {width} is not a multiple of current {}",
            self.width
        );
        let factor = new / cur;
        let mut bins: BTreeMap<u64, BinStats> = BTreeMap::new();
        for (idx, stats) in &self.bins {
            bins.entry(idx / factor)
                .and_modify(|b| b.combine(stats))
                .or_insert_with(|| stats.clone());
        }
        BinnedSeries {
            window: self.window,
            width,
            bins,
        }
    }
}

impl Combinable for BinnedSeries {
    /// Merges two binned series. If the widths differ, the finer series is
    /// re-binned to the coarser width first (widths are always power-of-two
    /// multiples of a common base, so this is exact).
    fn combine(&mut self, other: &Self) {
        let other_owned;
        let other = if other.width == self.width {
            other
        } else if other.width > self.width {
            *self = self.coarsened_to(other.width);
            other
        } else {
            other_owned = other.coarsened_to(self.width);
            &other_owned
        };
        for (idx, stats) in &other.bins {
            self.bins
                .entry(*idx)
                .and_modify(|b| b.combine(stats))
                .or_insert_with(|| stats.clone());
        }
        self.window = if self.window.is_empty() {
            other.window
        } else if other.window.is_empty() {
            self.window
        } else {
            self.window.hull(other.window)
        };
    }
}

/// The time-bin statistics primitive.
///
/// ```
/// use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
/// use megastream_primitives::aggregator::ComputingPrimitive;
/// use megastream_primitives::timebin::TimeBinStats;
///
/// let mut agg = TimeBinStats::new(TimeDelta::from_secs(1), 42);
/// for i in 0..10u64 {
///     agg.ingest(&(i as f64), Timestamp::from_micros(i * 500_000));
/// }
/// let window = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(5));
/// let s = agg.snapshot(window);
/// assert_eq!(s.bin_at(Timestamp::ZERO).unwrap().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TimeBinStats {
    base_width: TimeDelta,
    granularity: Granularity,
    seed: u64,
    bins: BTreeMap<u64, BinStats>,
}

impl TimeBinStats {
    /// Creates a time-bin aggregator with the given *base* (finest) bin
    /// width and RNG seed for the quantile reservoirs.
    ///
    /// # Panics
    ///
    /// Panics if `base_width` is zero.
    pub fn new(base_width: TimeDelta, seed: u64) -> Self {
        assert!(!base_width.is_zero(), "bin width must be non-zero");
        TimeBinStats {
            base_width,
            granularity: Granularity::FULL,
            seed,
            bins: BTreeMap::new(),
        }
    }

    /// The current effective bin width (base width scaled by granularity).
    pub fn effective_width(&self) -> TimeDelta {
        TimeDelta::from_micros(self.base_width.as_micros() * self.width_factor())
    }

    /// Folds an already-aggregated [`BinnedSeries`] into this aggregator —
    /// how a parent store absorbs the bins summaries its children export.
    /// The series is re-binned to this aggregator's effective width first.
    ///
    /// # Panics
    ///
    /// Panics if the widths are incompatible (neither divides the other).
    pub fn absorb(&mut self, series: &BinnedSeries) {
        let width = self.effective_width();
        let series_owned;
        let series = if series.width() == width {
            series
        } else if width.as_micros().is_multiple_of(series.width().as_micros()) {
            series_owned = series.coarsened_to(width);
            &series_owned
        } else if series.width().as_micros().is_multiple_of(width.as_micros()) {
            // The incoming series is coarser: coarsen ourselves to match.
            let factor = series.width().as_micros() / width.as_micros();
            let g = self.granularity.value() / factor as f64;
            self.set_granularity(Granularity::new(g));
            assert_eq!(
                self.effective_width(),
                series.width(),
                "width alignment failed"
            );
            series
        } else {
            panic!(
                "cannot absorb series of width {} into bins of width {width}",
                series.width()
            );
        };
        let w = self.effective_width().as_micros();
        for (ts, stats) in series.iter() {
            let idx = ts.as_micros() / w;
            self.bins
                .entry(idx)
                .and_modify(|b| b.combine(stats))
                .or_insert_with(|| stats.clone());
        }
    }

    /// Power-of-two factor the granularity dial maps to.
    fn width_factor(&self) -> u64 {
        let g = self.granularity.value();
        let exp = (1.0 / g).log2().ceil().max(0.0);
        // Cap the factor so the width stays representable.
        1u64 << (exp as u32).min(32)
    }
}

impl ComputingPrimitive for TimeBinStats {
    type Item = f64;
    type Summary = BinnedSeries;

    fn describe(&self) -> PrimitiveDescription {
        PrimitiveDescription {
            name: "timebin-stats",
            domain_aware: false,
            on_demand_granularity: true,
        }
    }

    fn ingest(&mut self, item: &f64, ts: Timestamp) {
        let width = self.effective_width().as_micros();
        let idx = ts.as_micros() / width;
        let seed = self.seed ^ idx;
        self.bins
            .entry(idx)
            .or_insert_with(|| BinStats::new(seed))
            .observe(*item);
    }

    fn snapshot(&self, window: TimeWindow) -> BinnedSeries {
        let width = self.effective_width();
        let w = width.as_micros();
        let bins = self
            .bins
            .iter()
            .filter(|(idx, _)| {
                let start = Timestamp::from_micros(*idx * w);
                TimeWindow::starting_at(start, width).overlaps(window)
            })
            .map(|(idx, stats)| (*idx, stats.clone()))
            .collect();
        BinnedSeries {
            window,
            width,
            bins,
        }
    }

    fn reset(&mut self) {
        self.bins.clear();
    }

    fn set_granularity(&mut self, granularity: Granularity) {
        if granularity == self.granularity {
            return;
        }
        let old_width = self.effective_width();
        self.granularity = granularity;
        let new_width = self.effective_width();
        if new_width > old_width {
            // Coarsen accumulated bins in place so past and future data share
            // the new width (possible because widths are nested).
            let factor = new_width.as_micros() / old_width.as_micros();
            let mut rebinned: BTreeMap<u64, BinStats> = BTreeMap::new();
            for (idx, stats) in std::mem::take(&mut self.bins) {
                rebinned
                    .entry(idx / factor)
                    .and_modify(|b| b.combine(&stats))
                    .or_insert(stats);
            }
            self.bins = rebinned;
        } else if new_width < old_width {
            // Refining cannot recover already-merged detail; keep coarse
            // history and only bin *future* data finely. To keep a single
            // width per aggregator we simply re-index coarse bins at the new
            // width boundary (their stats stay attached to the bin start).
            let factor = old_width.as_micros() / new_width.as_micros();
            let mut rebinned: BTreeMap<u64, BinStats> = BTreeMap::new();
            for (idx, stats) in std::mem::take(&mut self.bins) {
                rebinned.insert(idx * factor, stats);
            }
            self.bins = rebinned;
        }
    }

    fn granularity(&self) -> Granularity {
        self.granularity
    }

    fn footprint_bytes(&self) -> usize {
        self.bins.len() * (std::mem::size_of::<BinStats>() + QUANTILE_SAMPLE * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(secs: u64) -> TimeWindow {
        TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(secs))
    }

    #[test]
    fn bins_by_timestamp() {
        let mut agg = TimeBinStats::new(TimeDelta::from_secs(1), 1);
        for i in 0..10u64 {
            agg.ingest(&1.0, Timestamp::from_micros(i * 500_000));
        }
        let s = agg.snapshot(window(5));
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|(_, b)| b.count() == 2));
    }

    #[test]
    fn stats_are_correct() {
        let mut agg = TimeBinStats::new(TimeDelta::from_secs(10), 1);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            agg.ingest(&v, Timestamp::from_secs(1));
        }
        let s = agg.snapshot(window(10));
        let b = s.bin_at(Timestamp::ZERO).unwrap();
        assert_eq!(b.count(), 8);
        assert_eq!(b.sum(), 40.0);
        assert_eq!(b.mean(), Some(5.0));
        assert_eq!(b.stddev(), Some(2.0)); // classic example
        assert_eq!(b.min(), Some(2.0));
        assert_eq!(b.max(), Some(9.0));
        let med = b.median().unwrap();
        assert!((4.0..=5.0).contains(&med), "median {med}");
    }

    #[test]
    fn granularity_coarsens_bins_in_place() {
        let mut agg = TimeBinStats::new(TimeDelta::from_secs(1), 1);
        for i in 0..8u64 {
            agg.ingest(&(i as f64), Timestamp::from_secs(i));
        }
        assert_eq!(agg.snapshot(window(8)).len(), 8);
        agg.set_granularity(Granularity::new(0.25)); // width ×4
        assert_eq!(agg.effective_width(), TimeDelta::from_secs(4));
        let s = agg.snapshot(window(8));
        assert_eq!(s.len(), 2);
        assert_eq!(s.bin_at(Timestamp::ZERO).unwrap().count(), 4);
        // Total mass preserved across re-binning.
        assert_eq!(s.aggregate(window(8)).count(), 8);
    }

    #[test]
    fn combine_aligns_widths() {
        let mut fine = TimeBinStats::new(TimeDelta::from_secs(1), 1);
        let mut coarse = TimeBinStats::new(TimeDelta::from_secs(1), 2);
        coarse.set_granularity(Granularity::new(0.5)); // 2 s bins
        for i in 0..8u64 {
            fine.ingest(&1.0, Timestamp::from_secs(i));
            coarse.ingest(&1.0, Timestamp::from_secs(i));
        }
        let mut a = fine.snapshot(window(8));
        let b = coarse.snapshot(window(8));
        a.combine(&b);
        assert_eq!(a.width(), TimeDelta::from_secs(2));
        assert_eq!(a.aggregate(window(8)).count(), 16);
        // And in the other direction (coarse absorbs fine).
        let mut c = coarse.snapshot(window(8));
        c.combine(&fine.snapshot(window(8)));
        assert_eq!(c.width(), TimeDelta::from_secs(2));
        assert_eq!(c.aggregate(window(8)).count(), 16);
    }

    #[test]
    fn absorb_merges_child_summaries() {
        // Two "machine" aggregators at 1 s bins export to a "line"
        // aggregator at 2 s bins.
        let mut m1 = TimeBinStats::new(TimeDelta::from_secs(1), 1);
        let mut m2 = TimeBinStats::new(TimeDelta::from_secs(1), 2);
        for i in 0..8u64 {
            m1.ingest(&1.0, Timestamp::from_secs(i));
            m2.ingest(&3.0, Timestamp::from_secs(i));
        }
        let mut line = TimeBinStats::new(TimeDelta::from_secs(1), 3);
        line.set_granularity(Granularity::new(0.5)); // 2 s bins
        line.absorb(&m1.snapshot(window(8)));
        line.absorb(&m2.snapshot(window(8)));
        let s = line.snapshot(window(8));
        assert_eq!(s.len(), 4);
        let agg = s.aggregate(window(8));
        assert_eq!(agg.count(), 16);
        assert_eq!(agg.mean(), Some(2.0));
    }

    #[test]
    fn absorb_coarser_series_coarsens_self() {
        let mut fine = TimeBinStats::new(TimeDelta::from_secs(1), 1);
        for i in 0..8u64 {
            fine.ingest(&1.0, Timestamp::from_secs(i));
        }
        let mut coarse_src = TimeBinStats::new(TimeDelta::from_secs(1), 2);
        coarse_src.set_granularity(Granularity::new(0.25)); // 4 s bins
        for i in 0..8u64 {
            coarse_src.ingest(&1.0, Timestamp::from_secs(i));
        }
        fine.absorb(&coarse_src.snapshot(window(8)));
        assert_eq!(fine.effective_width(), TimeDelta::from_secs(4));
        assert_eq!(fine.snapshot(window(8)).aggregate(window(8)).count(), 16);
    }

    #[test]
    fn aggregate_windows_subsets() {
        let mut agg = TimeBinStats::new(TimeDelta::from_secs(1), 1);
        for i in 0..10u64 {
            agg.ingest(&(i as f64), Timestamp::from_secs(i));
        }
        let s = agg.snapshot(window(10));
        let firsthalf = s.aggregate(TimeWindow::starting_at(
            Timestamp::ZERO,
            TimeDelta::from_secs(5),
        ));
        assert_eq!(firsthalf.count(), 5);
        assert_eq!(firsthalf.sum(), 0.0 + 1.0 + 2.0 + 3.0 + 4.0);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn coarsened_to_rejects_non_multiple() {
        let agg = TimeBinStats::new(TimeDelta::from_secs(2), 1);
        let s = agg.snapshot(window(2));
        let _ = s.coarsened_to(TimeDelta::from_secs(3));
    }

    #[test]
    fn empty_summary_behaves() {
        let agg = TimeBinStats::new(TimeDelta::from_secs(1), 1);
        let s = agg.snapshot(window(10));
        assert!(s.is_empty());
        assert_eq!(s.aggregate(window(10)).count(), 0);
        assert_eq!(s.aggregate(window(10)).mean(), None);
        assert_eq!(s.aggregate(window(10)).stddev(), None);
    }

    #[test]
    fn reset_and_footprint() {
        let mut agg = TimeBinStats::new(TimeDelta::from_secs(1), 1);
        agg.ingest(&1.0, Timestamp::ZERO);
        assert!(agg.footprint_bytes() > 0);
        agg.reset();
        assert_eq!(agg.footprint_bytes(), 0);
    }
}
