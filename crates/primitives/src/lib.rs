//! Computing primitives: flexible, combinable, self-adaptive stream
//! aggregators.
//!
//! §V of the paper calls for *novel computing primitives* with five design
//! properties:
//!
//! * **P1 — arbitrary queries** on the data summary,
//! * **P2 — combinable summaries** across time and location,
//! * **P3 — adjustable aggregation granularity**,
//! * **P4 — self-adaptation** to incoming data and queries,
//! * **P5 — domain knowledge** shaping aggregation levels.
//!
//! The [`aggregator`] module captures this contract as traits; the remaining
//! modules provide the aggregation methods the paper lists as building
//! blocks ("simple statistics over time bins …, sampling methods, … heavy
//! hitter detection or even hierarchical heavy hitter detection"):
//!
//! * [`sampling`] — the paper's §V-B *toy example*: a randomly sampled time
//!   series,
//! * [`timebin`] — sum/mean/min/max/stddev/quantile statistics over time bins,
//! * [`reservoir`] — mergeable reservoir sampling,
//! * [`spacesaving`] — Space-Saving heavy-hitter detection,
//! * [`cms`] — Count-Min sketch frequency estimation,
//! * [`exact`] — an exact flow table (the memory-unconstrained baseline) and
//!   exact hierarchical heavy hitters,
//! * [`adaptive`] — a feedback controller that retunes granularity online
//!   (property P4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod aggregator;
pub mod cms;
pub mod exact;
pub mod reservoir;
pub mod sampling;
pub mod spacesaving;
pub mod timebin;

pub use adaptive::GranularityController;
pub use aggregator::{
    AdaptationFeedback, Combinable, ComputingPrimitive, Granularity, PrimitiveDescription,
};
pub use cms::CountMinSketch;
pub use exact::{ExactFlowTable, HhhItem};
pub use reservoir::Reservoir;
pub use sampling::{SampledSeries, SampledTimeSeries};
pub use spacesaving::SpaceSaving;
pub use timebin::{BinStats, TimeBinStats};
