//! The computing-primitive contract (paper §V).
//!
//! A *computing primitive* turns a raw data stream into a **data summary**.
//! The paper demands five properties; this module encodes them as traits:
//!
//! | Property | Where it appears |
//! |---|---|
//! | P1 arbitrary queries | each summary type exposes its own query methods |
//! | P2 combinable summaries | [`Combinable::combine`] |
//! | P3 adjustable granularity | [`ComputingPrimitive::set_granularity`] |
//! | P4 self-adaptation | [`ComputingPrimitive::adapt`] |
//! | P5 domain knowledge | [`PrimitiveDescription::domain_aware`] |

use megastream_flow::time::{TimeWindow, Timestamp};

/// An abstract aggregation-granularity dial in `(0, 1]`.
///
/// `1.0` means full detail; smaller values mean coarser aggregation. Each
/// primitive interprets the dial in its own terms — a sampling primitive
/// reads it as the sampling probability, a time-bin primitive as the inverse
/// bin-width scale, a Flowtree as the fraction of its maximum node budget.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Granularity(f64);

impl Granularity {
    /// Full detail.
    pub const FULL: Granularity = Granularity(1.0);

    /// Creates a granularity, clamping into `(0, 1]`.
    ///
    /// Non-finite inputs clamp to full detail.
    pub fn new(value: f64) -> Self {
        if !value.is_finite() {
            return Granularity::FULL;
        }
        Granularity(value.clamp(f64::MIN_POSITIVE, 1.0))
    }

    /// The dial value in `(0, 1]`.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Coarsens by `factor >= 1` (divides the dial).
    #[must_use]
    pub fn coarsened(self, factor: f64) -> Granularity {
        Granularity::new(self.0 / factor.max(1.0))
    }

    /// Refines by `factor >= 1` (multiplies the dial, saturating at full).
    #[must_use]
    pub fn refined(self, factor: f64) -> Granularity {
        Granularity::new(self.0 * factor.max(1.0))
    }
}

impl Default for Granularity {
    fn default() -> Self {
        Granularity::FULL
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// Property P2: data summaries combine across time and location.
///
/// `combine` must be commutative and associative up to the summary's stated
/// approximation guarantees, so that a hierarchy of data stores can merge
/// summaries in any order.
pub trait Combinable {
    /// Folds `other` into `self`.
    fn combine(&mut self, other: &Self);

    /// Combines two summaries into a new one.
    #[must_use]
    fn combined(mut self, other: &Self) -> Self
    where
        Self: Sized,
    {
        self.combine(other);
        self
    }
}

/// Feedback a primitive receives from its environment (property P4).
///
/// The data store reports the observed ingest rate and the footprint budget
/// the manager allotted; applications optionally report the finest
/// granularity their queries actually used, so the primitive can stop paying
/// for detail nobody asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptationFeedback {
    /// Observed ingest rate, items per simulated second.
    pub ingest_rate: f64,
    /// Storage budget for this primitive, in bytes.
    pub footprint_budget: usize,
    /// Finest granularity recent queries required, if known.
    pub query_granularity: Option<Granularity>,
}

impl AdaptationFeedback {
    /// Feedback carrying only a footprint budget.
    pub fn budget(footprint_budget: usize) -> Self {
        AdaptationFeedback {
            ingest_rate: 0.0,
            footprint_budget,
            query_granularity: None,
        }
    }
}

/// Static description of a primitive, used by the manager for placement
/// decisions and by lineage records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitiveDescription {
    /// Human-readable primitive name (e.g. `"flowtree"`).
    pub name: &'static str,
    /// Property P5: whether aggregation levels follow the data domain
    /// (true for Flowtree's subnet hierarchy, false for random sampling).
    pub domain_aware: bool,
    /// Whether summaries support queries at granularities other than the one
    /// they were built with (paper: "adjust the granularity on demand").
    pub on_demand_granularity: bool,
}

/// A computing primitive (paper §V): ingests a stream, maintains a
/// combinable summary, and adapts its own granularity.
pub trait ComputingPrimitive {
    /// Stream item consumed by this primitive.
    type Item;
    /// The data summary produced (property P1: the summary exposes query
    /// methods; property P2: it is [`Combinable`]).
    type Summary: Combinable;

    /// Describes the primitive.
    fn describe(&self) -> PrimitiveDescription;

    /// Ingests one stream item observed at `ts`.
    fn ingest(&mut self, item: &Self::Item, ts: Timestamp);

    /// Snapshots the current summary, tagged with the window it covers.
    fn snapshot(&self, window: TimeWindow) -> Self::Summary;

    /// Clears accumulated state (used when rotating epochs).
    fn reset(&mut self);

    /// Property P3: sets the aggregation granularity.
    fn set_granularity(&mut self, granularity: Granularity);

    /// The current granularity.
    fn granularity(&self) -> Granularity;

    /// Property P4: self-adapts to observed data and queries.
    ///
    /// The default implementation delegates to a proportional rule: if the
    /// current footprint exceeds the budget, coarsen proportionally; if
    /// queries want more detail and the budget has slack, refine.
    fn adapt(&mut self, feedback: &AdaptationFeedback) {
        let footprint = self.footprint_bytes().max(1);
        let budget = feedback.footprint_budget.max(1);
        let ratio = footprint as f64 / budget as f64;
        if ratio > 1.0 {
            self.set_granularity(self.granularity().coarsened(ratio));
        } else if let Some(wanted) = feedback.query_granularity {
            if wanted > self.granularity() && ratio < 0.5 {
                // Refine toward what queries ask for, bounded by the slack.
                let headroom = (0.9 / ratio.max(1e-9)).max(1.0);
                let target = self.granularity().refined(headroom);
                self.set_granularity(if wanted < target { wanted } else { target });
            }
        }
    }

    /// Approximate current storage footprint in bytes.
    fn footprint_bytes(&self) -> usize;

    /// Deterministic deep memory footprint in bytes: the logical size of
    /// every owned element as a pure function of element *counts* — never
    /// allocator capacities — so two structurally equal summaries always
    /// report the same value regardless of how they were built. This is
    /// the quantity the accounting plane's `store.memory.bytes` gauges
    /// carry. Defaults to [`ComputingPrimitive::footprint_bytes`].
    fn deep_bytes(&self) -> usize {
        self.footprint_bytes()
    }

    /// Number of discrete elements the primitive currently holds (tree
    /// nodes, monitored counters, table entries, sketch cells). Defaults
    /// to zero for primitives without a meaningful element count.
    fn node_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_clamps() {
        assert_eq!(Granularity::new(2.0).value(), 1.0);
        assert!(Granularity::new(0.0).value() > 0.0);
        assert_eq!(Granularity::new(0.25).value(), 0.25);
        assert_eq!(Granularity::new(f64::NAN), Granularity::FULL);
        assert_eq!(Granularity::new(f64::INFINITY), Granularity::FULL);
    }

    #[test]
    fn coarsen_refine_are_inverse_within_clamp() {
        let g = Granularity::new(0.5);
        assert!((g.coarsened(2.0).value() - 0.25).abs() < 1e-12);
        assert!((g.coarsened(2.0).refined(2.0).value() - 0.5).abs() < 1e-12);
        // Factors below 1 are treated as 1 (no-ops).
        assert_eq!(g.coarsened(0.5), g);
        assert_eq!(g.refined(0.5), g);
    }

    /// A minimal primitive for exercising the default `adapt` rule.
    struct Counter {
        n: usize,
        g: Granularity,
    }

    #[derive(Clone)]
    struct CountSummary(usize);

    impl Combinable for CountSummary {
        fn combine(&mut self, other: &Self) {
            self.0 += other.0;
        }
    }

    impl ComputingPrimitive for Counter {
        type Item = u64;
        type Summary = CountSummary;

        fn describe(&self) -> PrimitiveDescription {
            PrimitiveDescription {
                name: "counter",
                domain_aware: false,
                on_demand_granularity: false,
            }
        }
        fn ingest(&mut self, _item: &u64, _ts: Timestamp) {
            self.n += 1;
        }
        fn snapshot(&self, _window: TimeWindow) -> CountSummary {
            CountSummary(self.n)
        }
        fn reset(&mut self) {
            self.n = 0;
        }
        fn set_granularity(&mut self, granularity: Granularity) {
            self.g = granularity;
        }
        fn granularity(&self) -> Granularity {
            self.g
        }
        fn footprint_bytes(&self) -> usize {
            self.n * 8
        }
    }

    #[test]
    fn default_adapt_coarsens_over_budget() {
        let mut c = Counter {
            n: 1000,
            g: Granularity::FULL,
        };
        c.adapt(&AdaptationFeedback::budget(4000)); // footprint 8000 > 4000
        assert!(c.granularity().value() < 1.0);
    }

    #[test]
    fn default_adapt_refines_toward_query_demand() {
        let mut c = Counter {
            n: 10,
            g: Granularity::new(0.1),
        };
        c.adapt(&AdaptationFeedback {
            ingest_rate: 1.0,
            footprint_budget: 100_000,
            query_granularity: Some(Granularity::new(0.8)),
        });
        assert!(c.granularity().value() > 0.1);
        assert!(c.granularity().value() <= 0.8 + 1e-12);
    }

    #[test]
    fn combined_returns_merged_summary() {
        let s = CountSummary(3).combined(&CountSummary(4));
        assert_eq!(s.0, 7);
    }
}
