//! Mergeable reservoir sampling (Algorithm R with weighted merge).
//!
//! Reservoirs back the quantile estimates of [`crate::timebin`] and are a
//! sampling method in their own right (paper §V: "sampling methods").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aggregator::Combinable;

/// A fixed-capacity uniform sample of a stream.
///
/// ```
/// use megastream_primitives::reservoir::Reservoir;
/// let mut r = Reservoir::new(8, 42);
/// for v in 0..1000 {
///     r.insert(v);
/// }
/// assert_eq!(r.len(), 8);
/// assert_eq!(r.seen(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: StdRng,
}

impl<T: PartialEq> PartialEq for Reservoir<T> {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.seen == other.seen && self.items == other.items
    }
}

impl<T: Clone> Reservoir<T> {
    /// Creates an empty reservoir with the given capacity and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be non-zero");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Rebuilds a reservoir from its observable parts, or `None` if the
    /// parts violate the invariants (`capacity == 0`, more items than
    /// capacity, or more items than seen). The RNG is reseeded from `seed`:
    /// the in-flight generator state is not observable, and [`PartialEq`]
    /// deliberately ignores it, so a round-tripped reservoir compares equal
    /// to the original. Used by the cold-tier codec.
    pub fn from_parts(capacity: usize, seed: u64, seen: u64, items: Vec<T>) -> Option<Self> {
        if capacity == 0 || items.len() > capacity || (items.len() as u64) > seen {
            return None;
        }
        Some(Reservoir {
            capacity,
            seen,
            items,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Offers one stream item to the reservoir.
    pub fn insert(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// The retained sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of retained items (at most the capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no item has been retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the sample and the seen counter.
    pub fn clear(&mut self) {
        self.items.clear();
        self.seen = 0;
    }
}

impl<T: Clone> Combinable for Reservoir<T> {
    /// Merges two reservoirs into a sample approximating a uniform draw from
    /// the union of both underlying streams: each slot of the merged sample
    /// is drawn from one side with probability proportional to how many
    /// items that side has seen.
    fn combine(&mut self, other: &Self) {
        if other.seen == 0 {
            return;
        }
        if self.seen == 0 {
            self.items = other.items.clone();
            self.seen = other.seen;
            self.capacity = self.capacity.max(other.capacity);
            return;
        }
        let total = self.seen + other.seen;
        let capacity = self.capacity.max(other.capacity);
        let target = capacity.min((self.items.len() + other.items.len()).max(1));
        let mut merged = Vec::with_capacity(target);
        for _ in 0..target {
            let from_self = self.rng.gen_range(0..total) < self.seen;
            let source = if from_self && !self.items.is_empty() {
                &self.items
            } else if !other.items.is_empty() {
                &other.items
            } else {
                &self.items
            };
            let idx = self.rng.gen_range(0..source.len());
            merged.push(source[idx].clone());
        }
        self.items = merged;
        self.seen = total;
        self.capacity = capacity;
    }
}

impl<T: Clone + PartialOrd> Reservoir<T> {
    /// Estimates the `q`-quantile (`0.0..=1.0`) of the sampled stream, or
    /// `None` if the reservoir is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0` or any sampled value is
    /// unordered (e.g. NaN).
    pub fn quantile(&self, q: f64) -> Option<T> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside 0..=1");
        if self.items.is_empty() {
            return None;
        }
        let mut sorted = self.items.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("unordered value in reservoir"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fills_up_to_capacity_then_samples() {
        let mut r = Reservoir::new(4, 1);
        for v in 0..3 {
            r.insert(v);
        }
        assert_eq!(r.items(), &[0, 1, 2]);
        for v in 3..1000 {
            r.insert(v);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Mean of a uniform sample of 0..10_000 should be near 5_000.
        let mut r = Reservoir::new(200, 7);
        for v in 0..10_000u64 {
            r.insert(v);
        }
        let mean = r.items().iter().sum::<u64>() as f64 / r.len() as f64;
        assert!((mean - 5_000.0).abs() < 1_000.0, "mean {mean}");
    }

    #[test]
    fn quantile_estimates() {
        let mut r = Reservoir::new(1000, 3);
        for v in 0..1000u64 {
            r.insert(v);
        }
        // Capacity >= stream length → exact quantiles.
        assert_eq!(r.quantile(0.0), Some(0));
        assert_eq!(r.quantile(1.0), Some(999));
        let med = r.quantile(0.5).unwrap();
        assert!((med as i64 - 500).abs() <= 1, "median {med}");
        assert_eq!(Reservoir::<u64>::new(4, 0).quantile(0.5), None);
    }

    #[test]
    fn merge_respects_seen_proportions() {
        let mut a = Reservoir::new(100, 11);
        for _ in 0..9_000 {
            a.insert(1u8);
        }
        let mut b = Reservoir::new(100, 12);
        for _ in 0..1_000 {
            b.insert(2u8);
        }
        a.combine(&b);
        assert_eq!(a.seen(), 10_000);
        let ones = a.items().iter().filter(|&&v| v == 1).count();
        // Expect ~90 ones out of 100.
        assert!(ones > 70 && ones <= 100, "{ones} ones after merge");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Reservoir::new(4, 1);
        for v in 0..10 {
            a.insert(v);
        }
        let snapshot = a.items().to_vec();
        let b = Reservoir::new(4, 2);
        a.combine(&b);
        assert_eq!(a.items(), &snapshot[..]);
        let mut empty = Reservoir::new(4, 3);
        empty.combine(&a);
        assert_eq!(empty.seen(), 10);
        assert_eq!(empty.len(), a.len());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Reservoir::<u8>::new(0, 0);
    }

    proptest! {
        #[test]
        fn prop_len_never_exceeds_capacity(cap in 1usize..64, n in 0u64..500) {
            let mut r = Reservoir::new(cap, 99);
            for v in 0..n {
                r.insert(v);
            }
            prop_assert!(r.len() <= cap);
            prop_assert_eq!(r.seen(), n);
            prop_assert_eq!(r.len() as u64, n.min(cap as u64));
        }

        #[test]
        fn prop_merge_seen_additive(n1 in 0u64..200, n2 in 0u64..200) {
            let mut a = Reservoir::new(16, 1);
            for v in 0..n1 { a.insert(v); }
            let mut b = Reservoir::new(16, 2);
            for v in 0..n2 { b.insert(v); }
            a.combine(&b);
            prop_assert_eq!(a.seen(), n1 + n2);
        }
    }
}
