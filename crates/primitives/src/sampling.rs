//! The paper's §V-B *toy example*: an aggregator that uses random sampling
//! to produce a data summary in the form of a sampled time series.
//!
//! The five properties map as follows:
//!
//! * **Query** — [`SampledSeries::points_in`], [`SampledSeries::exceeding`]
//!   select data points in a time frame / above a value;
//! * **Combine** — [`Combinable::combine`] merges the point sets of two
//!   series (each point carries its inverse-probability weight, so the
//!   merged series still estimates totals correctly even when the two sides
//!   sampled at different rates — a Horvitz–Thompson estimator);
//! * **Aggregate** — the granularity dial *is* the sampling rate;
//! * **Self-adapt** — the default [`ComputingPrimitive::adapt`] rule adjusts
//!   the sampling rate from footprint budgets and query feedback;
//! * **Domain knowledge** — none; the paper calls this out as "an example of
//!   aggregation without domain knowledge".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use megastream_flow::time::{TimeWindow, Timestamp};

use crate::aggregator::{Combinable, ComputingPrimitive, Granularity, PrimitiveDescription};

/// One retained sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Observation time.
    pub ts: Timestamp,
    /// Observed value.
    pub value: f64,
    /// Inverse of the sampling probability when this point was kept.
    pub weight: f64,
}

/// A sampled time series — the data summary of [`SampledTimeSeries`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampledSeries {
    /// The time period this summary covers.
    pub window: TimeWindow,
    points: Vec<SamplePoint>,
}

impl SampledSeries {
    /// Rebuilds a series from its parts (the inverse of reading
    /// [`SampledSeries::points`]), re-sorting by time so the ordering
    /// invariant holds regardless of input order. Used by the cold-tier
    /// codec to reconstruct summaries from disk.
    pub fn from_parts(window: TimeWindow, mut points: Vec<SamplePoint>) -> Self {
        points.sort_by_key(|p| p.ts);
        SampledSeries { window, points }
    }

    /// All retained points, ordered by time.
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the summary holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// P1 query: points whose timestamp falls in `window`.
    pub fn points_in(&self, window: TimeWindow) -> impl Iterator<Item = &SamplePoint> {
        self.points.iter().filter(move |p| window.contains(p.ts))
    }

    /// P1 query (the paper's example): "all data points in a given time
    /// frame that exceed a given value".
    pub fn exceeding(
        &self,
        window: TimeWindow,
        threshold: f64,
    ) -> impl Iterator<Item = &SamplePoint> {
        self.points_in(window).filter(move |p| p.value > threshold)
    }

    /// Estimated number of stream items in `window` (weights compensate for
    /// sampling).
    pub fn estimated_count(&self, window: TimeWindow) -> f64 {
        self.points_in(window).map(|p| p.weight).sum()
    }

    /// Reduces the summary to every `factor`-th point, scaling the
    /// surviving weights by `factor` so totals remain unbiased. Used by the
    /// hierarchical storage strategy to shrink old summaries.
    pub fn thin(&mut self, factor: usize) {
        if factor <= 1 {
            return;
        }
        let mut kept = Vec::with_capacity(self.points.len() / factor + 1);
        for (i, mut p) in self.points.drain(..).enumerate() {
            if i % factor == 0 {
                p.weight *= factor as f64;
                kept.push(p);
            }
        }
        self.points = kept;
    }

    /// Estimated mean value over `window`, or `None` if no point was kept.
    pub fn estimated_mean(&self, window: TimeWindow) -> Option<f64> {
        let (mut wsum, mut vsum) = (0.0, 0.0);
        for p in self.points_in(window) {
            wsum += p.weight;
            vsum += p.weight * p.value;
        }
        (wsum > 0.0).then(|| vsum / wsum)
    }
}

impl Combinable for SampledSeries {
    fn combine(&mut self, other: &Self) {
        self.points.extend_from_slice(&other.points);
        self.points.sort_by_key(|p| p.ts);
        self.window = if self.window.is_empty() {
            other.window
        } else if other.window.is_empty() {
            self.window
        } else {
            self.window.hull(other.window)
        };
    }
}

/// The toy computing primitive: Bernoulli-samples a stream of `(ts, value)`
/// observations into a [`SampledSeries`].
///
/// ```
/// use megastream_flow::time::{TimeWindow, Timestamp, TimeDelta};
/// use megastream_primitives::aggregator::{ComputingPrimitive, Granularity};
/// use megastream_primitives::sampling::SampledTimeSeries;
///
/// let mut agg = SampledTimeSeries::new(7, Granularity::new(0.5));
/// for i in 0..1000u64 {
///     agg.ingest(&(i as f64), Timestamp::from_secs(i));
/// }
/// let window = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(1000));
/// let summary = agg.snapshot(window);
/// let est = summary.estimated_count(window);
/// assert!((est - 1000.0).abs() < 150.0, "estimate {est} far from 1000");
/// ```
#[derive(Debug, Clone)]
pub struct SampledTimeSeries {
    rng: StdRng,
    rate: Granularity,
    points: Vec<SamplePoint>,
}

impl SampledTimeSeries {
    /// Creates a sampler with a deterministic seed and initial sampling rate.
    pub fn new(seed: u64, rate: Granularity) -> Self {
        SampledTimeSeries {
            rng: StdRng::seed_from_u64(seed),
            rate,
            points: Vec::new(),
        }
    }

    /// The current sampling rate (same as the granularity dial).
    pub fn rate(&self) -> f64 {
        self.rate.value()
    }
}

impl ComputingPrimitive for SampledTimeSeries {
    type Item = f64;
    type Summary = SampledSeries;

    fn describe(&self) -> PrimitiveDescription {
        PrimitiveDescription {
            name: "sampled-time-series",
            domain_aware: false,
            on_demand_granularity: false,
        }
    }

    fn ingest(&mut self, item: &f64, ts: Timestamp) {
        let p = self.rate.value();
        if self.rng.gen::<f64>() < p {
            self.points.push(SamplePoint {
                ts,
                value: *item,
                weight: 1.0 / p,
            });
        }
    }

    fn snapshot(&self, window: TimeWindow) -> SampledSeries {
        let mut points: Vec<SamplePoint> = self
            .points
            .iter()
            .copied()
            .filter(|p| window.contains(p.ts))
            .collect();
        points.sort_by_key(|p| p.ts);
        SampledSeries { window, points }
    }

    fn reset(&mut self) {
        self.points.clear();
    }

    fn set_granularity(&mut self, granularity: Granularity) {
        // Changing the rate only affects *future* points; kept points retain
        // the weight they were sampled with.
        self.rate = granularity;
    }

    fn granularity(&self) -> Granularity {
        self.rate
    }

    fn footprint_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<SamplePoint>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::time::TimeDelta;

    fn window(secs: u64) -> TimeWindow {
        TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(secs))
    }

    fn fill(agg: &mut SampledTimeSeries, n: u64) {
        for i in 0..n {
            agg.ingest(&(i as f64), Timestamp::from_secs(i));
        }
    }

    #[test]
    fn full_rate_keeps_everything() {
        let mut agg = SampledTimeSeries::new(1, Granularity::FULL);
        fill(&mut agg, 100);
        let s = agg.snapshot(window(100));
        assert_eq!(s.len(), 100);
        assert_eq!(s.estimated_count(window(100)), 100.0);
    }

    #[test]
    fn estimated_count_is_unbiased_ish() {
        let mut agg = SampledTimeSeries::new(42, Granularity::new(0.1));
        fill(&mut agg, 10_000);
        let s = agg.snapshot(window(10_000));
        let est = s.estimated_count(window(10_000));
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.1, "estimate {est}");
        // Far fewer points stored than observed.
        assert!(s.len() < 2_000);
    }

    #[test]
    fn query_exceeding_filters_by_window_and_value() {
        let mut agg = SampledTimeSeries::new(1, Granularity::FULL);
        fill(&mut agg, 100);
        let s = agg.snapshot(window(100));
        let hits: Vec<_> = s
            .exceeding(
                TimeWindow::starting_at(Timestamp::from_secs(10), TimeDelta::from_secs(10)),
                14.0,
            )
            .collect();
        // Seconds 10..20 with value > 14 → 15..=19.
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|p| p.value > 14.0));
    }

    #[test]
    fn combine_merges_and_reweights() {
        let mut a = SampledTimeSeries::new(5, Granularity::FULL);
        fill(&mut a, 50);
        let mut b = SampledTimeSeries::new(6, Granularity::new(0.5));
        for i in 50..150u64 {
            b.ingest(&(i as f64), Timestamp::from_secs(i));
        }
        let mut sa = a.snapshot(window(50));
        let sb = b.snapshot(TimeWindow::new(
            Timestamp::from_secs(50),
            Timestamp::from_secs(150),
        ));
        sa.combine(&sb);
        assert_eq!(sa.window, window(150));
        let est = sa.estimated_count(window(150));
        assert!((est - 150.0).abs() < 40.0, "estimate {est}");
        // Points stay time-ordered after combine.
        assert!(sa.points().windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn estimated_mean_weighted() {
        let mut agg = SampledTimeSeries::new(1, Granularity::FULL);
        fill(&mut agg, 11); // values 0..=10, mean 5
        let s = agg.snapshot(window(11));
        let mean = s.estimated_mean(window(11)).unwrap();
        assert!((mean - 5.0).abs() < 1e-9);
        assert_eq!(s.estimated_mean(TimeWindow::default()), None);
    }

    #[test]
    fn reset_clears_state() {
        let mut agg = SampledTimeSeries::new(1, Granularity::FULL);
        fill(&mut agg, 10);
        agg.reset();
        assert!(agg.snapshot(window(10)).is_empty());
        assert_eq!(agg.footprint_bytes(), 0);
    }

    #[test]
    fn adapt_reduces_rate_under_budget_pressure() {
        use crate::aggregator::AdaptationFeedback;
        let mut agg = SampledTimeSeries::new(9, Granularity::FULL);
        fill(&mut agg, 1_000);
        let before = agg.rate();
        agg.adapt(&AdaptationFeedback::budget(agg.footprint_bytes() / 4));
        assert!(agg.rate() < before);
    }

    #[test]
    fn determinism_same_seed_same_points() {
        let mut a = SampledTimeSeries::new(123, Granularity::new(0.3));
        let mut b = SampledTimeSeries::new(123, Granularity::new(0.3));
        fill(&mut a, 500);
        fill(&mut b, 500);
        assert_eq!(a.snapshot(window(500)), b.snapshot(window(500)));
    }
}
