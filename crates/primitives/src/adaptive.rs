//! Online granularity control (property P4).
//!
//! The paper requires that a computing primitive "continuously re-organize
//! the data it stores and its level of aggregation granularity according to
//! the incoming data streams and queries". [`GranularityController`] is a
//! small proportional–integral controller that drives any
//! [`ComputingPrimitive`](crate::aggregator::ComputingPrimitive)'s dial so
//! its footprint tracks a budget while honouring the finest granularity
//! queries recently demanded. Experiment E5 exercises it under a 10× data
//! rate surge.

use crate::aggregator::Granularity;

/// Proportional–integral controller over the granularity dial.
///
/// Works in log-space: footprint is roughly proportional to granularity for
/// most primitives, so controlling `log(g)` with `log(footprint/budget)` as
/// the error signal behaves uniformly across scales.
///
/// ```
/// use megastream_primitives::adaptive::GranularityController;
/// use megastream_primitives::aggregator::Granularity;
///
/// let mut ctl = GranularityController::new(Granularity::FULL);
/// // Footprint is 4× over budget → the controller coarsens.
/// let g1 = ctl.update(4000, 1000, None);
/// assert!(g1.value() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityController {
    current: Granularity,
    /// Proportional gain on the log-error.
    kp: f64,
    /// Integral gain on the accumulated log-error.
    ki: f64,
    integral: f64,
    /// Dead band: relative error below this is ignored to avoid thrash.
    dead_band: f64,
}

impl GranularityController {
    /// Creates a controller with default gains, starting at `initial`.
    pub fn new(initial: Granularity) -> Self {
        GranularityController {
            current: initial,
            kp: 0.8,
            ki: 0.1,
            integral: 0.0,
            dead_band: 0.1,
        }
    }

    /// Overrides the controller gains.
    pub fn with_gains(mut self, kp: f64, ki: f64) -> Self {
        self.kp = kp;
        self.ki = ki;
        self
    }

    /// The granularity the controller currently commands.
    pub fn current(&self) -> Granularity {
        self.current
    }

    /// Feeds one observation and returns the updated granularity.
    ///
    /// * `footprint` — the primitive's current storage use in bytes,
    /// * `budget` — the manager-allotted budget in bytes,
    /// * `query_demand` — finest granularity queries recently required, if
    ///   any; the controller will not coarsen below it while within budget.
    pub fn update(
        &mut self,
        footprint: usize,
        budget: usize,
        query_demand: Option<Granularity>,
    ) -> Granularity {
        let footprint = footprint.max(1) as f64;
        let budget = budget.max(1) as f64;
        // Positive error = over budget = must coarsen.
        let error = (footprint / budget).ln();
        if error.abs() < self.dead_band && query_demand.is_none() {
            return self.current;
        }
        self.integral = (self.integral + error).clamp(-8.0, 8.0);
        let correction = self.kp * error + self.ki * self.integral;
        let mut next = Granularity::new(self.current.value() * (-correction).exp());
        if error < 0.0 {
            // Within budget: never coarsen, and respect query demand.
            if next < self.current {
                next = self.current;
            }
            if let Some(demand) = query_demand {
                if demand < next {
                    next = demand;
                }
                if next < self.current && footprint < budget * 0.9 {
                    // Still allow refining toward demand when there is slack.
                    next = self.current;
                }
            }
        }
        self.current = next;
        next
    }

    /// Resets the integral term (e.g. after an epoch rotation).
    pub fn reset(&mut self) {
        self.integral = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_under_overload() {
        // Simulate a primitive whose footprint is proportional to g · load.
        let mut ctl = GranularityController::new(Granularity::FULL);
        let load = 10_000.0f64;
        let budget = 1_000usize;
        let mut g = Granularity::FULL;
        for _ in 0..50 {
            let footprint = (load * g.value()) as usize;
            g = ctl.update(footprint, budget, None);
        }
        let final_footprint = load * g.value();
        assert!(
            (final_footprint - budget as f64).abs() / budget as f64 <= 0.35,
            "footprint {final_footprint} not near budget"
        );
    }

    #[test]
    fn refines_when_load_drops() {
        let mut ctl = GranularityController::new(Granularity::new(0.01));
        let mut g = ctl.current();
        let load = 500.0f64; // light load: full detail fits in budget
        let budget = 1_000usize;
        for _ in 0..100 {
            let footprint = (load * g.value()).max(1.0) as usize;
            g = ctl.update(footprint, budget, None);
        }
        assert!(g.value() > 0.5, "controller failed to refine: {g}");
    }

    #[test]
    fn dead_band_prevents_thrash() {
        let mut ctl = GranularityController::new(Granularity::new(0.5));
        // 5% over budget — inside the dead band.
        let g = ctl.update(1050, 1000, None);
        assert_eq!(g, Granularity::new(0.5));
    }

    #[test]
    fn never_coarsens_when_within_budget() {
        let mut ctl = GranularityController::new(Granularity::new(0.5));
        let g = ctl.update(100, 1000, None);
        assert!(g >= Granularity::new(0.5));
    }

    #[test]
    fn honours_query_demand_cap() {
        let mut ctl = GranularityController::new(Granularity::new(0.2));
        // Lots of slack, queries only need 0.4 → refine but not beyond 0.4.
        let mut g = ctl.current();
        for _ in 0..50 {
            g = ctl.update(10, 10_000, Some(Granularity::new(0.4)));
        }
        assert!(g.value() <= 0.4 + 1e-9, "overshot query demand: {g}");
        assert!(g.value() > 0.2, "did not refine toward demand: {g}");
    }

    #[test]
    fn reset_clears_integral() {
        let mut ctl = GranularityController::new(Granularity::FULL);
        for _ in 0..10 {
            ctl.update(10_000, 100, None);
        }
        ctl.reset();
        assert_eq!(ctl.integral, 0.0);
    }
}
