//! A vendored, zero-dependency stand-in for the subset of `criterion` that
//! megastream's experiment benches use.
//!
//! The build environment is offline (no crates.io), so the real
//! `criterion` cannot be fetched. The benches are primarily experiment
//! printers (each emits its paper table before timing hot operations), so
//! this shim keeps their source unchanged and provides honest but simple
//! timing: per benchmark it runs one warm-up iteration plus `sample_size`
//! timed samples (each sample capped by `measurement_time`) and prints
//! min / mean / max microseconds per iteration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A benchmark identifier: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has no separate warm-up
    /// phase beyond its single untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total time spent sampling one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples_us: Vec::new(),
            sample_size: self.sample_size,
            budget: self.measurement_time,
        };
        f(&mut b);
        b.report(&self.name, &id.name);
        self
    }

    /// Runs one benchmark closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples_us: Vec::new(),
            sample_size: self.sample_size,
            budget: self.measurement_time,
        };
        f(&mut b, input);
        b.report(&self.name, &id.name);
        self
    }

    /// Ends the group (no-op; prints nothing further).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` does the timing.
#[derive(Debug)]
pub struct Bencher {
    samples_us: Vec<f64>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then up to
    /// `sample_size` timed samples within the measurement budget.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples_us.push(t0.elapsed().as_secs_f64() * 1e6);
            if started.elapsed() > self.budget {
                break;
            }
        }
    }

    fn report(&self, group: &str, name: &str) {
        if self.samples_us.is_empty() {
            println!("{group}/{name}: no samples");
            return;
        }
        let n = self.samples_us.len() as f64;
        let mean = self.samples_us.iter().sum::<f64>() / n;
        let min = self
            .samples_us
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_us.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{group}/{name}: {:>10.1} µs/iter (min {min:.1}, max {max:.1}, {} samples)",
            mean,
            self.samples_us.len()
        );
    }
}

/// Collects benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` may pass harness flags; none need
            // special handling here, but `--help` should not hang scripts.
            if std::env::args().any(|a| a == "--help") {
                println!("megastream offline bench shim; runs all benches unconditionally");
                return;
            }
            $($group();)+
        }
    };
}
