//! Popularity scores.
//!
//! Flowtree nodes are annotated with a *popularity score*, "which can be
//! either its packet count, flow count, byte count, or combinations thereof"
//! (§VI). [`ScoreKind`] selects the measure at aggregator-construction time;
//! [`Popularity`] is the additive score value.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::record::FlowRecord;

/// Which measure a popularity score counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScoreKind {
    /// Count packets.
    #[default]
    Packets,
    /// Count bytes.
    Bytes,
    /// Count flow records.
    Flows,
    /// A weighted combination: `w_packets·packets + w_bytes·bytes + w_flows`.
    Weighted {
        /// Weight applied to the packet count.
        w_packets: u64,
        /// Weight applied to the byte count.
        w_bytes: u64,
        /// Weight added per flow record.
        w_flows: u64,
    },
}

impl ScoreKind {
    /// Scores one flow record under this measure.
    pub fn score(self, record: &FlowRecord) -> Popularity {
        let v = match self {
            ScoreKind::Packets => record.packets,
            ScoreKind::Bytes => record.bytes,
            ScoreKind::Flows => 1,
            ScoreKind::Weighted {
                w_packets,
                w_bytes,
                w_flows,
            } => w_packets
                .saturating_mul(record.packets)
                .saturating_add(w_bytes.saturating_mul(record.bytes))
                .saturating_add(w_flows),
        };
        Popularity(v)
    }
}

impl fmt::Display for ScoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreKind::Packets => f.write_str("packets"),
            ScoreKind::Bytes => f.write_str("bytes"),
            ScoreKind::Flows => f.write_str("flows"),
            ScoreKind::Weighted { .. } => f.write_str("weighted"),
        }
    }
}

/// An additive popularity score.
///
/// Arithmetic saturates: merging many summaries must never wrap around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Popularity(u64);

impl Popularity {
    /// The zero score.
    pub const ZERO: Popularity = Popularity(0);

    /// Creates a score from a raw count.
    pub const fn new(value: u64) -> Self {
        Popularity(value)
    }

    /// The raw count.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Whether the score is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction (used by the Flowtree `Diff` operator, where
    /// scores absent from one side clamp at zero).
    #[must_use]
    pub const fn saturating_sub(self, rhs: Popularity) -> Popularity {
        Popularity(self.0.saturating_sub(rhs.0))
    }

    /// Scales the score by a rational factor, rounding to nearest.
    ///
    /// Used to compensate for packet sampling (e.g. scale 1:10K-sampled
    /// counts back up) and to downscale during hierarchical re-aggregation.
    #[must_use]
    pub fn scaled(self, num: u64, den: u64) -> Popularity {
        assert!(den != 0, "scale denominator must be non-zero");
        let v = (self.0 as u128 * num as u128 + den as u128 / 2) / den as u128;
        Popularity(v.min(u64::MAX as u128) as u64)
    }
}

impl fmt::Display for Popularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Popularity {
    fn from(v: u64) -> Self {
        Popularity(v)
    }
}

impl Add for Popularity {
    type Output = Popularity;
    fn add(self, rhs: Popularity) -> Popularity {
        Popularity(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Popularity {
    fn add_assign(&mut self, rhs: Popularity) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Popularity {
    type Output = Popularity;
    /// Saturating: never wraps below zero.
    fn sub(self, rhs: Popularity) -> Popularity {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Popularity {
    fn sub_assign(&mut self, rhs: Popularity) {
        *self = self.saturating_sub(rhs);
    }
}

impl Sum for Popularity {
    fn sum<I: Iterator<Item = Popularity>>(iter: I) -> Popularity {
        iter.fold(Popularity::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> FlowRecord {
        FlowRecord::builder().packets(10).bytes(4000).build()
    }

    #[test]
    fn score_kinds() {
        assert_eq!(ScoreKind::Packets.score(&rec()).value(), 10);
        assert_eq!(ScoreKind::Bytes.score(&rec()).value(), 4000);
        assert_eq!(ScoreKind::Flows.score(&rec()).value(), 1);
        let w = ScoreKind::Weighted {
            w_packets: 2,
            w_bytes: 1,
            w_flows: 5,
        };
        assert_eq!(w.score(&rec()).value(), 2 * 10 + 4000 + 5);
    }

    #[test]
    fn arithmetic_saturates() {
        let max = Popularity::new(u64::MAX);
        assert_eq!(max + Popularity::new(1), max);
        assert_eq!(Popularity::new(3) - Popularity::new(5), Popularity::ZERO);
        let mut p = Popularity::new(1);
        p -= Popularity::new(2);
        assert!(p.is_zero());
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        assert_eq!(Popularity::new(10).scaled(1, 3).value(), 3);
        assert_eq!(Popularity::new(11).scaled(1, 3).value(), 4);
        assert_eq!(Popularity::new(5).scaled(10_000, 1).value(), 50_000);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn scaling_rejects_zero_denominator() {
        let _ = Popularity::new(1).scaled(1, 0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Popularity = (1..=4u64).map(Popularity::new).sum();
        assert_eq!(total.value(), 10);
    }
}
