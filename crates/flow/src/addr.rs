//! IPv4 addresses and CIDR prefixes.
//!
//! The crate uses its own address type (a transparent wrapper over `u32`)
//! rather than `std::net::Ipv4Addr` so that masking, ordering and arithmetic
//! on the generalization lattice are explicit and cheap.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
///
/// ```
/// use megastream_flow::addr::Ipv4Addr;
/// let a: Ipv4Addr = "10.0.0.1".parse()?;
/// assert_eq!(a.octets(), [10, 0, 0, 1]);
/// # Ok::<(), megastream_flow::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(u32);

impl Ipv4Addr {
    /// The all-zero address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);

    /// Creates an address from a host-order `u32`.
    pub const fn new(bits: u32) -> Self {
        Ipv4Addr(bits)
    }

    /// Creates an address from four octets.
    pub const fn from_octets(o: [u8; 4]) -> Self {
        Ipv4Addr(u32::from_be_bytes(o))
    }

    /// Returns the raw host-order bits.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns the four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Masks the address down to its `len` most significant bits.
    ///
    /// ```
    /// use megastream_flow::addr::Ipv4Addr;
    /// let a: Ipv4Addr = "10.1.2.3".parse().unwrap();
    /// assert_eq!(a.masked(8), "10.0.0.0".parse().unwrap());
    /// ```
    pub const fn masked(self, len: u8) -> Self {
        Ipv4Addr(mask_bits(self.0, len))
    }
}

/// Masks `bits` to its `len` most significant bits (`len` is clamped to 32).
const fn mask_bits(bits: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else if len >= 32 {
        bits
    } else {
        bits & (u32::MAX << (32 - len))
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl From<u32> for Ipv4Addr {
    fn from(bits: u32) -> Self {
        Ipv4Addr(bits)
    }
}

impl From<[u8; 4]> for Ipv4Addr {
    fn from(octets: [u8; 4]) -> Self {
        Ipv4Addr::from_octets(octets)
    }
}

/// Error produced when parsing an [`Ipv4Addr`] or [`Prefix`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    input: String,
}

impl ParseAddrError {
    fn new(input: &str) -> Self {
        ParseAddrError {
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address or prefix syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Ipv4Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| ParseAddrError::new(s))?;
            *slot = part.parse().map_err(|_| ParseAddrError::new(s))?;
        }
        if parts.next().is_some() {
            return Err(ParseAddrError::new(s));
        }
        Ok(Ipv4Addr::from_octets(octets))
    }
}

/// A CIDR prefix: an address plus a mask length in `0..=32`.
///
/// The stored address is always normalized (bits below the mask are zero),
/// so two prefixes compare equal iff they denote the same address block.
///
/// ```
/// use megastream_flow::addr::Prefix;
/// let p: Prefix = "10.1.0.0/16".parse()?;
/// assert!(p.contains_addr("10.1.200.7".parse()?));
/// assert!(!p.contains_addr("10.2.0.1".parse()?));
/// # Ok::<(), megastream_flow::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// The root prefix `0.0.0.0/0` containing every address.
    pub const ROOT: Prefix = Prefix {
        addr: Ipv4Addr::UNSPECIFIED,
        len: 0,
    };

    /// Creates a prefix, normalizing the address to the mask length.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range 0..=32");
        Prefix {
            addr: addr.masked(len),
            len,
        }
    }

    /// Creates a /32 host prefix.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix { addr, len: 32 }
    }

    /// The (normalized) network address.
    pub fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The mask length.
    #[allow(clippy::len_without_is_empty)] // prefix length in bits, not a container
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the root prefix `0.0.0.0/0`.
    pub fn is_root(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains_addr(self, addr: Ipv4Addr) -> bool {
        addr.masked(self.len) == self.addr
    }

    /// Whether `other` is equal to or more specific than `self`.
    pub fn contains(self, other: Prefix) -> bool {
        other.len >= self.len && other.addr.masked(self.len) == self.addr
    }

    /// Generalizes this prefix to `len` bits (a shorter mask).
    ///
    /// # Panics
    ///
    /// Panics if `len` is longer than the current mask (that would be a
    /// *specialization*, which loses no information only for hosts).
    pub fn generalized(self, len: u8) -> Prefix {
        assert!(
            len <= self.len,
            "cannot generalize /{} to longer /{}",
            self.len,
            len
        );
        Prefix::new(self.addr, len)
    }

    /// The longest prefix containing both `self` and `other`.
    pub fn common_ancestor(self, other: Prefix) -> Prefix {
        let max_len = self.len.min(other.len);
        let diff = self.addr.bits() ^ other.addr.bits();
        let common = (diff.leading_zeros() as u8).min(max_len);
        Prefix::new(self.addr, common)
    }
}

impl Default for Prefix {
    fn default() -> Self {
        Prefix::ROOT
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl From<Ipv4Addr> for Prefix {
    fn from(addr: Ipv4Addr) -> Self {
        Prefix::host(addr)
    }
}

impl FromStr for Prefix {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((addr, len)) => {
                let addr: Ipv4Addr = addr.parse()?;
                let len: u8 = len.parse().map_err(|_| ParseAddrError::new(s))?;
                if len > 32 {
                    return Err(ParseAddrError::new(s));
                }
                Ok(Prefix::new(addr, len))
            }
            None => Ok(Prefix::host(s.parse()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"] {
            let a: Ipv4Addr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"] {
            assert!(s.parse::<Ipv4Addr>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn prefix_parse_and_display() {
        let p: Prefix = "10.1.2.3/16".parse().unwrap();
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p.len(), 16);
        let host: Prefix = "10.1.2.3".parse().unwrap();
        assert_eq!(host.len(), 32);
    }

    #[test]
    fn prefix_parse_rejects_bad_lengths() {
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn masking_zeroes_low_bits() {
        let a: Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(a.masked(0), Ipv4Addr::UNSPECIFIED);
        assert_eq!(a.masked(32), a);
        assert_eq!(a.masked(24), "10.1.2.0".parse().unwrap());
    }

    #[test]
    fn containment_is_reflexive_and_ordered() {
        let wide: Prefix = "10.0.0.0/8".parse().unwrap();
        let narrow: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(wide.contains(wide));
        assert!(wide.contains(narrow));
        assert!(!narrow.contains(wide));
        assert!(Prefix::ROOT.contains(wide));
    }

    #[test]
    fn common_ancestor_examples() {
        let a: Prefix = "10.1.0.0/16".parse().unwrap();
        let b: Prefix = "10.2.0.0/16".parse().unwrap();
        let anc = a.common_ancestor(b);
        assert!(anc.contains(a) && anc.contains(b));
        assert_eq!(anc, "10.0.0.0/14".parse().unwrap());
        assert_eq!(a.common_ancestor(a), a);
    }

    #[test]
    #[should_panic(expected = "cannot generalize")]
    fn generalized_rejects_longer_mask() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let _ = p.generalized(16);
    }

    proptest! {
        #[test]
        fn prop_display_parse_roundtrip(bits in any::<u32>()) {
            let a = Ipv4Addr::new(bits);
            let parsed: Ipv4Addr = a.to_string().parse().unwrap();
            prop_assert_eq!(a, parsed);
        }

        #[test]
        fn prop_mask_idempotent(bits in any::<u32>(), len in 0u8..=32) {
            let a = Ipv4Addr::new(bits);
            prop_assert_eq!(a.masked(len).masked(len), a.masked(len));
        }

        #[test]
        fn prop_shorter_mask_contains(bits in any::<u32>(), l1 in 0u8..=32, l2 in 0u8..=32) {
            let (short, long) = (l1.min(l2), l1.max(l2));
            let p_long = Prefix::new(Ipv4Addr::new(bits), long);
            let p_short = Prefix::new(Ipv4Addr::new(bits), short);
            prop_assert!(p_short.contains(p_long));
        }

        #[test]
        fn prop_common_ancestor_contains_both(a in any::<u32>(), b in any::<u32>(), la in 0u8..=32, lb in 0u8..=32) {
            let pa = Prefix::new(Ipv4Addr::new(a), la);
            let pb = Prefix::new(Ipv4Addr::new(b), lb);
            let anc = pa.common_ancestor(pb);
            prop_assert!(anc.contains(pa));
            prop_assert!(anc.contains(pb));
            // Symmetry.
            prop_assert_eq!(anc, pb.common_ancestor(pa));
        }
    }
}
