//! Raw flow records — the input unit of network-monitoring aggregators.
//!
//! A [`FlowRecord`] models one exported flow measurement (e.g. a NetFlow/IPFIX
//! record): the 5-tuple plus packet and byte counts and the observation time.

use crate::addr::Ipv4Addr;
use crate::time::Timestamp;

/// One raw flow observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowRecord {
    /// Observation timestamp (start of the flow's accounting interval).
    pub ts: Timestamp,
    /// IP protocol number (6 = TCP, 17 = UDP, ...).
    pub proto: u8,
    /// Source address.
    pub src_ip: Ipv4Addr,
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Packets accounted to this record.
    pub packets: u64,
    /// Bytes accounted to this record.
    pub bytes: u64,
}

impl FlowRecord {
    /// The accounting plane's canonical per-record byte cost: what one
    /// raw record contributes to `raw_bytes` stats, ring-buffer
    /// footprints, and deep-size accounting. A single definition so
    /// every accounting site charges the same amount.
    pub const WIRE_BYTES: usize = std::mem::size_of::<FlowRecord>();

    /// Starts building a record; unset fields default to zero.
    pub fn builder() -> FlowRecordBuilder {
        FlowRecordBuilder::default()
    }

    /// Average packet size in bytes, or 0 for an empty record.
    pub fn mean_packet_size(&self) -> u64 {
        self.bytes.checked_div(self.packets).unwrap_or(0)
    }
}

/// Builder for [`FlowRecord`].
///
/// ```
/// use megastream_flow::record::FlowRecord;
/// use megastream_flow::time::Timestamp;
///
/// let rec = FlowRecord::builder()
///     .ts(Timestamp::from_secs(10))
///     .proto(6)
///     .src("10.0.0.1".parse()?, 443)
///     .dst("10.0.0.2".parse()?, 51000)
///     .packets(3)
///     .bytes(1800)
///     .build();
/// assert_eq!(rec.mean_packet_size(), 600);
/// # Ok::<(), megastream_flow::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowRecordBuilder {
    ts: Timestamp,
    proto: u8,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    packets: u64,
    bytes: u64,
}

impl FlowRecordBuilder {
    /// Sets the observation timestamp.
    pub fn ts(mut self, ts: Timestamp) -> Self {
        self.ts = ts;
        self
    }

    /// Sets the IP protocol number.
    pub fn proto(mut self, proto: u8) -> Self {
        self.proto = proto;
        self
    }

    /// Sets source address and port.
    pub fn src(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.src_ip = ip;
        self.src_port = port;
        self
    }

    /// Sets destination address and port.
    pub fn dst(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.dst_ip = ip;
        self.dst_port = port;
        self
    }

    /// Sets the packet count.
    pub fn packets(mut self, packets: u64) -> Self {
        self.packets = packets;
        self
    }

    /// Sets the byte count.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Finishes the record.
    pub fn build(self) -> FlowRecord {
        FlowRecord {
            ts: self.ts,
            proto: self.proto,
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            packets: self.packets,
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let rec = FlowRecord::builder()
            .ts(Timestamp::from_secs(3))
            .proto(17)
            .src("1.2.3.4".parse().unwrap(), 1000)
            .dst("5.6.7.8".parse().unwrap(), 53)
            .packets(2)
            .bytes(256)
            .build();
        assert_eq!(rec.ts, Timestamp::from_secs(3));
        assert_eq!(rec.proto, 17);
        assert_eq!(rec.src_port, 1000);
        assert_eq!(rec.dst_port, 53);
        assert_eq!(rec.mean_packet_size(), 128);
    }

    #[test]
    fn mean_packet_size_handles_zero_packets() {
        let rec = FlowRecord::builder().bytes(100).build();
        assert_eq!(rec.mean_packet_size(), 0);
    }
}
