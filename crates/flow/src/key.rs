//! Generalized flow keys.
//!
//! A *flow key* is a vector of five maskable features — protocol, source IP,
//! destination IP, source port, destination port. Each feature can be
//! *generalized* by shortening its mask; a key with every feature fully
//! wildcarded is the root of the flow hierarchy. "k-feature" flow types from
//! the paper (e.g. the 2-feature `src IP × dst IP` flow) are keys whose
//! remaining features are fully wildcarded — see [`FeatureSet`].

use std::fmt;

use crate::addr::{Ipv4Addr, Prefix};
use crate::record::FlowRecord;

/// One of the five flow features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Feature {
    /// IP protocol number (8 bits).
    Proto,
    /// Source IPv4 address (32 bits).
    SrcIp,
    /// Destination IPv4 address (32 bits).
    DstIp,
    /// Source transport port (16 bits).
    SrcPort,
    /// Destination transport port (16 bits).
    DstPort,
}

impl Feature {
    /// All features in canonical order.
    pub const ALL: [Feature; 5] = [
        Feature::Proto,
        Feature::SrcIp,
        Feature::DstIp,
        Feature::SrcPort,
        Feature::DstPort,
    ];

    /// Bit width of the feature's value space.
    pub const fn width(self) -> u8 {
        match self {
            Feature::Proto => 8,
            Feature::SrcIp | Feature::DstIp => 32,
            Feature::SrcPort | Feature::DstPort => 16,
        }
    }

    /// Index of the feature in [`Feature::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Feature::Proto => 0,
            Feature::SrcIp => 1,
            Feature::DstIp => 2,
            Feature::SrcPort => 3,
            Feature::DstPort => 4,
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Feature::Proto => "proto",
            Feature::SrcIp => "src_ip",
            Feature::DstIp => "dst_ip",
            Feature::SrcPort => "src_port",
            Feature::DstPort => "dst_port",
        };
        f.write_str(name)
    }
}

/// A set of flow features, e.g. the paper's "5-feature" or "2-feature" flows.
///
/// ```
/// use megastream_flow::key::{Feature, FeatureSet};
/// let pair = FeatureSet::SRC_DST_IP;
/// assert!(pair.contains(Feature::SrcIp));
/// assert!(!pair.contains(Feature::DstPort));
/// assert_eq!(pair.iter().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureSet(u8);

impl FeatureSet {
    /// The empty feature set.
    pub const EMPTY: FeatureSet = FeatureSet(0);
    /// The classical 5-tuple.
    pub const FIVE_TUPLE: FeatureSet = FeatureSet(0b11111);
    /// The 2-feature `src IP × dst IP` flow type.
    pub const SRC_DST_IP: FeatureSet = FeatureSet(0b00110);
    /// The 2-feature `dst IP × dst port` flow type.
    pub const DST_IP_PORT: FeatureSet = FeatureSet(0b10100);

    /// Builds a set from a list of features.
    pub fn of(features: &[Feature]) -> Self {
        let mut bits = 0;
        for f in features {
            bits |= 1 << f.index();
        }
        FeatureSet(bits)
    }

    /// Whether the set contains `feature`.
    pub const fn contains(self, feature: Feature) -> bool {
        self.0 & (1 << feature.index()) != 0
    }

    /// Adds a feature, returning the extended set.
    #[must_use]
    pub const fn with(self, feature: Feature) -> Self {
        FeatureSet(self.0 | (1 << feature.index()))
    }

    /// Number of features in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the contained features in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Feature> {
        Feature::ALL.into_iter().filter(move |f| self.contains(*f))
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        FeatureSet::FIVE_TUPLE
    }
}

impl FromIterator<Feature> for FeatureSet {
    fn from_iter<I: IntoIterator<Item = Feature>>(iter: I) -> Self {
        let mut set = FeatureSet::EMPTY;
        for f in iter {
            set = set.with(f);
        }
        set
    }
}

/// A masked feature value: `len` significant high bits out of `width`.
///
/// Invariant: bits below the mask are zero and `len <= width <= 32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MaskedField {
    value: u32,
    width: u8,
    len: u8,
}

impl MaskedField {
    /// Creates a field, normalizing the value to the mask.
    ///
    /// # Panics
    ///
    /// Panics if `len > width` or `width > 32`.
    pub fn new(value: u32, width: u8, len: u8) -> Self {
        assert!(width <= 32, "field width {width} out of range");
        assert!(len <= width, "mask length {len} exceeds width {width}");
        MaskedField {
            value: mask_to(value, width, len),
            width,
            len,
        }
    }

    /// A fully-specified (exact) field.
    pub fn exact(value: u32, width: u8) -> Self {
        MaskedField::new(value, width, width)
    }

    /// A fully wildcarded field.
    pub fn wildcard(width: u8) -> Self {
        MaskedField::new(0, width, 0)
    }

    /// The masked value.
    pub const fn value(self) -> u32 {
        self.value
    }

    /// The bit width of the value space.
    pub const fn width(self) -> u8 {
        self.width
    }

    /// The mask length (0 = wildcard, `width` = exact).
    #[allow(clippy::len_without_is_empty)] // mask length in bits, not a container
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether the field is fully wildcarded.
    pub const fn is_wildcard(self) -> bool {
        self.len == 0
    }

    /// Whether the field is fully specified.
    pub const fn is_exact(self) -> bool {
        self.len == self.width
    }

    /// Generalizes the field to a shorter mask.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current mask length.
    #[must_use]
    pub fn generalized(self, len: u8) -> Self {
        assert!(
            len <= self.len,
            "cannot generalize mask {} to longer {}",
            self.len,
            len
        );
        MaskedField::new(self.value, self.width, len)
    }

    /// Whether `other` is equal to or more specific than `self`.
    pub fn contains(self, other: MaskedField) -> bool {
        self.width == other.width
            && other.len >= self.len
            && mask_to(other.value, self.width, self.len) == self.value
    }
}

fn mask_to(value: u32, width: u8, len: u8) -> u32 {
    debug_assert!(len <= width && width <= 32);
    if len == 0 {
        return 0;
    }
    let keep = len as u32;
    let total = width as u32;
    // Mask of `keep` high bits within a `total`-bit value.
    let mask = if keep >= total {
        if total == 32 {
            u32::MAX
        } else {
            (1u32 << total) - 1
        }
    } else {
        (((1u32 << keep) - 1) << (total - keep))
            & if total == 32 {
                u32::MAX
            } else {
                (1u32 << total) - 1
            }
    };
    value & mask
}

/// A generalized flow: five masked features.
///
/// `FlowKey` is a point in the flow generalization lattice. The fully
/// wildcarded key ([`FlowKey::root`]) generalizes every flow.
///
/// ```
/// use megastream_flow::key::{Feature, FlowKey};
/// let key = FlowKey::five_tuple(6, "10.1.2.3".parse()?, 443, "8.8.8.8".parse()?, 53);
/// let wide = key.generalize(Feature::SrcIp, 8).generalize(Feature::SrcPort, 0);
/// assert!(wide.contains(&key));
/// assert_eq!(wide.to_string(), "proto=6 src=10.0.0.0/8:* dst=8.8.8.8/32:53");
/// # Ok::<(), megastream_flow::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    fields: [MaskedField; 5],
}

impl FlowKey {
    /// The fully wildcarded key (root of the hierarchy).
    pub fn root() -> Self {
        FlowKey {
            fields: [
                MaskedField::wildcard(Feature::Proto.width()),
                MaskedField::wildcard(Feature::SrcIp.width()),
                MaskedField::wildcard(Feature::DstIp.width()),
                MaskedField::wildcard(Feature::SrcPort.width()),
                MaskedField::wildcard(Feature::DstPort.width()),
            ],
        }
    }

    /// An exact 5-tuple key.
    pub fn five_tuple(
        proto: u8,
        src_ip: Ipv4Addr,
        src_port: u16,
        dst_ip: Ipv4Addr,
        dst_port: u16,
    ) -> Self {
        let mut key = FlowKey::root();
        key.fields[Feature::Proto.index()] = MaskedField::exact(proto as u32, 8);
        key.fields[Feature::SrcIp.index()] = MaskedField::exact(src_ip.bits(), 32);
        key.fields[Feature::DstIp.index()] = MaskedField::exact(dst_ip.bits(), 32);
        key.fields[Feature::SrcPort.index()] = MaskedField::exact(src_port as u32, 16);
        key.fields[Feature::DstPort.index()] = MaskedField::exact(dst_port as u32, 16);
        key
    }

    /// Builds the exact key of a raw flow record.
    pub fn from_record(record: &FlowRecord) -> Self {
        FlowKey::five_tuple(
            record.proto,
            record.src_ip,
            record.src_port,
            record.dst_ip,
            record.dst_port,
        )
    }

    /// Builds the key of a record *projected* onto `features`: features
    /// outside the set are fully wildcarded.
    pub fn from_record_projected(record: &FlowRecord, features: FeatureSet) -> Self {
        FlowKey::from_record(record).project(features)
    }

    /// Returns the field of `feature`.
    pub fn field(&self, feature: Feature) -> MaskedField {
        self.fields[feature.index()]
    }

    /// Replaces the field of `feature`.
    ///
    /// # Panics
    ///
    /// Panics if the field width does not match the feature width.
    #[must_use]
    pub fn with_field(mut self, feature: Feature, field: MaskedField) -> Self {
        assert_eq!(
            field.width(),
            feature.width(),
            "field width mismatch for {feature}"
        );
        self.fields[feature.index()] = field;
        self
    }

    /// Sets the source-IP feature to a prefix.
    #[must_use]
    pub fn with_src_prefix(self, prefix: Prefix) -> Self {
        self.with_field(
            Feature::SrcIp,
            MaskedField::new(prefix.addr().bits(), 32, prefix.len()),
        )
    }

    /// Sets the destination-IP feature to a prefix.
    #[must_use]
    pub fn with_dst_prefix(self, prefix: Prefix) -> Self {
        self.with_field(
            Feature::DstIp,
            MaskedField::new(prefix.addr().bits(), 32, prefix.len()),
        )
    }

    /// Returns the source-IP feature as a prefix.
    pub fn src_prefix(&self) -> Prefix {
        let f = self.field(Feature::SrcIp);
        Prefix::new(Ipv4Addr::new(f.value()), f.len())
    }

    /// Returns the destination-IP feature as a prefix.
    pub fn dst_prefix(&self) -> Prefix {
        let f = self.field(Feature::DstIp);
        Prefix::new(Ipv4Addr::new(f.value()), f.len())
    }

    /// Generalizes one feature to mask length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the feature's current mask length.
    #[must_use]
    pub fn generalize(mut self, feature: Feature, len: u8) -> Self {
        let idx = feature.index();
        self.fields[idx] = self.fields[idx].generalized(len);
        self
    }

    /// Wildcards every feature not in `features`.
    #[must_use]
    pub fn project(mut self, features: FeatureSet) -> Self {
        for f in Feature::ALL {
            if !features.contains(f) {
                self.fields[f.index()] = MaskedField::wildcard(f.width());
            }
        }
        self
    }

    /// Whether `other` is equal to or more specific than `self` on every
    /// feature (the partial order of the generalization lattice).
    pub fn contains(&self, other: &FlowKey) -> bool {
        self.fields
            .iter()
            .zip(other.fields.iter())
            .all(|(a, b)| a.contains(*b))
    }

    /// Total number of specified mask bits across all features.
    ///
    /// The root has specificity 0; an exact 5-tuple has
    /// `8 + 32 + 32 + 16 + 16 = 104`.
    pub fn specificity(&self) -> u32 {
        self.fields.iter().map(|f| f.len() as u32).sum()
    }

    /// Whether this is the fully wildcarded root key.
    pub fn is_root(&self) -> bool {
        self.specificity() == 0
    }

    /// The set of features that are not fully wildcarded.
    pub fn feature_set(&self) -> FeatureSet {
        Feature::ALL
            .into_iter()
            .filter(|f| !self.field(*f).is_wildcard())
            .collect()
    }
}

impl Default for FlowKey {
    fn default() -> Self {
        FlowKey::root()
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proto = self.field(Feature::Proto);
        if proto.is_wildcard() {
            write!(f, "proto=* ")?;
        } else if proto.is_exact() {
            write!(f, "proto={} ", proto.value())?;
        } else {
            write!(f, "proto={}/{} ", proto.value(), proto.len())?;
        }
        let port = |pf: MaskedField| -> String {
            if pf.is_wildcard() {
                "*".to_owned()
            } else if pf.is_exact() {
                pf.value().to_string()
            } else {
                format!("{}/{}", pf.value(), pf.len())
            }
        };
        write!(
            f,
            "src={}:{} dst={}:{}",
            self.src_prefix(),
            port(self.field(Feature::SrcPort)),
            self.dst_prefix(),
            port(self.field(Feature::DstPort)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key() -> FlowKey {
        FlowKey::five_tuple(
            6,
            "10.1.2.3".parse().unwrap(),
            443,
            "8.8.8.8".parse().unwrap(),
            53,
        )
    }

    #[test]
    fn root_contains_everything() {
        assert!(FlowKey::root().contains(&key()));
        assert!(FlowKey::root().is_root());
        assert_eq!(FlowKey::root().specificity(), 0);
    }

    #[test]
    fn exact_key_specificity() {
        assert_eq!(key().specificity(), 104);
        assert!(!key().is_root());
    }

    #[test]
    fn generalization_preserves_containment() {
        let k = key();
        let wide = k.generalize(Feature::SrcIp, 16);
        assert!(wide.contains(&k));
        assert!(!k.contains(&wide));
        assert_eq!(wide.src_prefix().to_string(), "10.1.0.0/16");
    }

    #[test]
    fn projection_wildcards_other_features() {
        let k = key().project(FeatureSet::SRC_DST_IP);
        assert!(k.field(Feature::Proto).is_wildcard());
        assert!(k.field(Feature::SrcPort).is_wildcard());
        assert!(k.field(Feature::SrcIp).is_exact());
        assert_eq!(k.feature_set(), FeatureSet::SRC_DST_IP);
        assert_eq!(k.specificity(), 64);
    }

    #[test]
    fn feature_set_ops() {
        let s = FeatureSet::of(&[Feature::Proto, Feature::DstPort]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Feature::Proto));
        assert!(!s.contains(Feature::SrcIp));
        let s2: FeatureSet = [Feature::Proto, Feature::DstPort].into_iter().collect();
        assert_eq!(s, s2);
        assert!(FeatureSet::EMPTY.is_empty());
        assert_eq!(FeatureSet::FIVE_TUPLE.len(), 5);
    }

    #[test]
    fn masked_field_normalizes() {
        let f = MaskedField::new(0xFFFF, 16, 8);
        assert_eq!(f.value(), 0xFF00);
        assert!(MaskedField::wildcard(16).is_wildcard());
        assert!(MaskedField::exact(80, 16).is_exact());
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn masked_field_rejects_len_over_width() {
        let _ = MaskedField::new(0, 16, 17);
    }

    #[test]
    fn display_format() {
        let k = key();
        assert_eq!(
            k.to_string(),
            "proto=6 src=10.1.2.3/32:443 dst=8.8.8.8/32:53"
        );
        assert_eq!(
            FlowKey::root().to_string(),
            "proto=* src=0.0.0.0/0:* dst=0.0.0.0/0:*"
        );
    }

    fn arb_key() -> impl Strategy<Value = FlowKey> {
        (
            any::<u8>(),
            any::<u32>(),
            any::<u16>(),
            any::<u32>(),
            any::<u16>(),
            0u8..=8,
            0u8..=32,
            0u8..=32,
            0u8..=16,
            0u8..=16,
        )
            .prop_map(|(p, si, sp, di, dp, lp, lsi, ldi, lsp, ldp)| {
                FlowKey::five_tuple(p, Ipv4Addr::new(si), sp, Ipv4Addr::new(di), dp)
                    .generalize(Feature::Proto, lp)
                    .generalize(Feature::SrcIp, lsi)
                    .generalize(Feature::DstIp, ldi)
                    .generalize(Feature::SrcPort, lsp)
                    .generalize(Feature::DstPort, ldp)
            })
    }

    proptest! {
        #[test]
        fn prop_contains_partial_order(k in arb_key()) {
            // Reflexive.
            prop_assert!(k.contains(&k));
            // Root is the top element.
            prop_assert!(FlowKey::root().contains(&k));
        }

        #[test]
        fn prop_generalize_monotone(k in arb_key(), f_idx in 0usize..5) {
            let f = Feature::ALL[f_idx];
            let cur = k.field(f).len();
            if cur > 0 {
                let wide = k.generalize(f, cur - 1);
                prop_assert!(wide.contains(&k));
                prop_assert_eq!(wide.specificity() + 1, k.specificity());
            }
        }

        #[test]
        fn prop_projection_idempotent(k in arb_key()) {
            let p = k.project(FeatureSet::SRC_DST_IP);
            prop_assert_eq!(p, p.project(FeatureSet::SRC_DST_IP));
            prop_assert!(p.contains(&k.project(FeatureSet::SRC_DST_IP)));
        }
    }
}
