//! The generalization schema: how flow keys are widened step by step.
//!
//! The paper derives the flow hierarchy by masking features ("moving from an
//! IP to a prefix"). A [`GeneralizationSchema`] makes that hierarchy precise:
//! each feature has a *ladder* of admissible mask lengths, and a
//! deterministic rule picks which feature the next generalization step
//! widens. This gives every flow key a unique parent, so the set of all
//! generalizations of observed flows forms a **tree** — the substrate of the
//! Flowtree primitive.

use crate::key::{Feature, FlowKey};

/// Which feature the next generalization step widens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOrder {
    /// Fully generalize features one after another, in list order.
    Priority(Vec<Feature>),
    /// Widen the feature with the most remaining rungs first (ties broken by
    /// list order), which alternates evenly across features.
    RoundRobin(Vec<Feature>),
    /// Apply the stages in order: a stage only starts once every feature of
    /// the previous stages is fully generalized. E.g. "drop ports and
    /// protocol first, then alternate source and destination IP".
    Stages(Vec<StepOrder>),
}

impl StepOrder {
    /// All features named anywhere in the order.
    fn features(&self) -> Vec<Feature> {
        match self {
            StepOrder::Priority(fs) | StepOrder::RoundRobin(fs) => fs.clone(),
            StepOrder::Stages(stages) => stages.iter().flat_map(StepOrder::features).collect(),
        }
    }
}

/// Per-feature mask ladders plus a step order.
///
/// ```
/// use megastream_flow::key::FlowKey;
/// use megastream_flow::mask::GeneralizationSchema;
///
/// let schema = GeneralizationSchema::default();
/// let key = FlowKey::five_tuple(6, "10.1.2.3".parse()?, 443, "8.8.8.8".parse()?, 53);
/// let parent = schema.parent(&key).unwrap();
/// assert!(parent.contains(&key));
/// assert_eq!(schema.depth(&key), schema.depth(&parent) + 1);
/// # Ok::<(), megastream_flow::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralizationSchema {
    /// Ascending admissible mask lengths per feature; each ladder starts at 0.
    ladders: [Vec<u8>; 5],
    order: StepOrder,
}

impl GeneralizationSchema {
    /// Creates a schema from per-feature ladders and a step order.
    ///
    /// Each ladder is sorted, deduplicated and forced to contain `0` (the
    /// wildcard rung). Entries beyond the feature width are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError`] if a ladder contains a mask length longer than
    /// the feature's width, or if the step order names no features.
    pub fn new(mut ladders: [Vec<u8>; 5], order: StepOrder) -> Result<Self, SchemaError> {
        for f in Feature::ALL {
            let ladder = &mut ladders[f.index()];
            if ladder.iter().any(|&l| l > f.width()) {
                return Err(SchemaError::LadderExceedsWidth(f));
            }
            ladder.push(0);
            ladder.sort_unstable();
            ladder.dedup();
        }
        if order.features().is_empty() {
            return Err(SchemaError::EmptyOrder);
        }
        Ok(GeneralizationSchema { ladders, order })
    }

    /// The default network-monitoring schema: IPs widen in /8 steps,
    /// ports and protocol are all-or-nothing. Ports are dropped first, then
    /// the protocol, then source and destination IP alternate rung by rung
    /// — so that compressed mass consolidates at `(src /p, dst /p)` prefix
    /// pairs rather than losing one side entirely.
    pub fn network_default() -> Self {
        let mut ladders: [Vec<u8>; 5] = Default::default();
        ladders[Feature::Proto.index()] = vec![0, 8];
        ladders[Feature::SrcIp.index()] = vec![0, 8, 16, 24, 32];
        ladders[Feature::DstIp.index()] = vec![0, 8, 16, 24, 32];
        ladders[Feature::SrcPort.index()] = vec![0, 16];
        ladders[Feature::DstPort.index()] = vec![0, 16];
        GeneralizationSchema::new(
            ladders,
            StepOrder::Stages(vec![
                StepOrder::Priority(vec![Feature::SrcPort, Feature::DstPort, Feature::Proto]),
                StepOrder::RoundRobin(vec![Feature::SrcIp, Feature::DstIp]),
            ]),
        )
        .expect("default schema is valid")
    }

    /// A schema that keeps the **destination** specific as long as
    /// possible (sources collapse first). The right choice when queries
    /// identify victims/services — e.g. DDoS investigation, where sources
    /// are spoofed and worthless but the victim address is the answer.
    pub fn dst_preserving() -> Self {
        let mut ladders: [Vec<u8>; 5] = Default::default();
        ladders[Feature::Proto.index()] = vec![0, 8];
        ladders[Feature::SrcIp.index()] = vec![0, 8, 16, 24, 32];
        ladders[Feature::DstIp.index()] = vec![0, 8, 16, 24, 32];
        ladders[Feature::SrcPort.index()] = vec![0, 16];
        ladders[Feature::DstPort.index()] = vec![0, 16];
        GeneralizationSchema::new(
            ladders,
            StepOrder::Priority(vec![
                Feature::SrcPort,
                Feature::DstPort,
                Feature::Proto,
                Feature::SrcIp,
                Feature::DstIp,
            ]),
        )
        .expect("dst-preserving schema is valid")
    }

    /// A schema that keeps the **source** specific as long as possible
    /// (destinations collapse first) — e.g. for per-customer accounting.
    pub fn src_preserving() -> Self {
        let mut ladders: [Vec<u8>; 5] = Default::default();
        ladders[Feature::Proto.index()] = vec![0, 8];
        ladders[Feature::SrcIp.index()] = vec![0, 8, 16, 24, 32];
        ladders[Feature::DstIp.index()] = vec![0, 8, 16, 24, 32];
        ladders[Feature::SrcPort.index()] = vec![0, 16];
        ladders[Feature::DstPort.index()] = vec![0, 16];
        GeneralizationSchema::new(
            ladders,
            StepOrder::Priority(vec![
                Feature::SrcPort,
                Feature::DstPort,
                Feature::Proto,
                Feature::DstIp,
                Feature::SrcIp,
            ]),
        )
        .expect("src-preserving schema is valid")
    }

    /// A fine-grained schema where IPs widen bit by bit and source and
    /// destination IP alternate (useful for hierarchical heavy hitters).
    pub fn bitwise_ip_pair() -> Self {
        let mut ladders: [Vec<u8>; 5] = Default::default();
        ladders[Feature::Proto.index()] = vec![0];
        ladders[Feature::SrcIp.index()] = (0..=32).collect();
        ladders[Feature::DstIp.index()] = (0..=32).collect();
        ladders[Feature::SrcPort.index()] = vec![0];
        ladders[Feature::DstPort.index()] = vec![0];
        GeneralizationSchema::new(
            ladders,
            StepOrder::RoundRobin(vec![Feature::SrcIp, Feature::DstIp]),
        )
        .expect("bitwise schema is valid")
    }

    /// The ladder of admissible mask lengths for `feature`.
    pub fn ladder(&self, feature: Feature) -> &[u8] {
        &self.ladders[feature.index()]
    }

    /// The generalization step order. Together with [`Self::ladder`] this
    /// exposes everything [`Self::new`] consumed, so a schema can be
    /// serialized and rebuilt exactly (used by the cold-tier codec).
    pub fn order(&self) -> &StepOrder {
        &self.order
    }

    /// Index of the rung at-or-below `len` on the ladder of `feature`.
    fn rung_index(&self, feature: Feature, len: u8) -> usize {
        let ladder = self.ladder(feature);
        match ladder.binary_search(&len) {
            Ok(i) => i,
            Err(i) => i - 1, // ladder always contains 0, so i >= 1 here
        }
    }

    /// Snaps every feature's mask length *down* to the nearest ladder rung.
    ///
    /// Normalization only ever generalizes, so the result contains the input.
    pub fn normalize(&self, key: &FlowKey) -> FlowKey {
        let mut out = *key;
        for f in Feature::ALL {
            let len = key.field(f).len();
            let rung = self.ladder(f)[self.rung_index(f, len)];
            if rung < len {
                out = out.generalize(f, rung);
            }
        }
        out
    }

    /// Whether `key` sits exactly on ladder rungs for every feature.
    pub fn is_normalized(&self, key: &FlowKey) -> bool {
        Feature::ALL
            .into_iter()
            .all(|f| self.ladder(f).binary_search(&key.field(f).len()).is_ok())
    }

    /// Number of generalization steps separating `key` from the root.
    pub fn depth(&self, key: &FlowKey) -> usize {
        Feature::ALL
            .into_iter()
            .map(|f| self.rung_index(f, key.field(f).len()))
            .sum()
    }

    /// The unique parent of `key` in the hierarchy, or `None` for the root.
    ///
    /// The key is normalized first, so the parent of an off-ladder key is the
    /// parent of its normalization (unless normalization itself already
    /// generalized it, in which case that normalization is returned).
    pub fn parent(&self, key: &FlowKey) -> Option<FlowKey> {
        let norm = self.normalize(key);
        if norm != *key {
            return Some(norm);
        }
        let feature = self.pick_step_feature(&norm)?;
        let idx = self.rung_index(feature, norm.field(feature).len());
        debug_assert!(idx > 0);
        let target = self.ladder(feature)[idx - 1];
        Some(norm.generalize(feature, target))
    }

    /// Picks the feature the next generalization step widens, or `None` if
    /// the key is already the root with respect to the step order.
    fn pick_step_feature(&self, key: &FlowKey) -> Option<Feature> {
        self.pick_in_order(&self.order, key)
    }

    fn pick_in_order(&self, order: &StepOrder, key: &FlowKey) -> Option<Feature> {
        match order {
            StepOrder::Priority(features) => features
                .iter()
                .copied()
                .find(|f| self.rung_index(*f, key.field(*f).len()) > 0),
            StepOrder::RoundRobin(features) => features
                .iter()
                .copied()
                .map(|f| (self.rung_index(f, key.field(f).len()), f))
                .filter(|(r, _)| *r > 0)
                // max_by_key returns the *last* max, so order descending by
                // reversing the tie-break: scan manually.
                .fold(None, |best: Option<(usize, Feature)>, cand| match best {
                    None => Some(cand),
                    Some(b) if cand.0 > b.0 => Some(cand),
                    Some(b) => Some(b),
                })
                .map(|(_, f)| f),
            StepOrder::Stages(stages) => stages
                .iter()
                .find_map(|stage| self.pick_in_order(stage, key)),
        }
    }

    /// Iterates over the proper ancestors of `key`, from its parent up to and
    /// including the root.
    pub fn ancestors<'a>(&'a self, key: &FlowKey) -> Ancestors<'a> {
        Ancestors {
            schema: self,
            cur: Some(*key),
            include_self: false,
        }
    }

    /// Iterates over `key` (normalized) followed by all its ancestors.
    pub fn self_and_ancestors<'a>(&'a self, key: &FlowKey) -> Ancestors<'a> {
        Ancestors {
            schema: self,
            cur: Some(self.normalize(key)),
            include_self: true,
        }
    }

    /// The deepest common ancestor of two keys.
    pub fn common_ancestor(&self, a: &FlowKey, b: &FlowKey) -> FlowKey {
        let mut a = self.normalize(a);
        let mut b = self.normalize(b);
        // Lift the deeper key until both are at the same depth, then lift in
        // lock-step until they coincide. `parent` returns `None` only at the
        // root, where the loop conditions are already false (the root is its
        // own common ancestor) — so a `None` ends the lift instead of
        // panicking.
        while self.depth(&a) > self.depth(&b) {
            match self.parent(&a) {
                Some(p) => a = p,
                None => break,
            }
        }
        while self.depth(&b) > self.depth(&a) {
            match self.parent(&b) {
                Some(p) => b = p,
                None => break,
            }
        }
        while a != b {
            match (self.parent(&a), self.parent(&b)) {
                (Some(pa), Some(pb)) => {
                    a = pa;
                    b = pb;
                }
                // Only the root has no parent; two distinct keys cannot both
                // be the root, so reaching here means one key already is —
                // return it as the ancestor rather than panicking.
                (None, _) => return a,
                (_, None) => return b,
            }
        }
        a
    }

    /// Maximum depth of the hierarchy (depth of an exact key).
    pub fn max_depth(&self) -> usize {
        self.ladders.iter().map(|l| l.len() - 1).sum()
    }
}

impl Default for GeneralizationSchema {
    fn default() -> Self {
        GeneralizationSchema::network_default()
    }
}

/// Iterator over successive generalizations of a key.
///
/// Produced by [`GeneralizationSchema::ancestors`] and
/// [`GeneralizationSchema::self_and_ancestors`].
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    schema: &'a GeneralizationSchema,
    cur: Option<FlowKey>,
    include_self: bool,
}

impl Iterator for Ancestors<'_> {
    type Item = FlowKey;

    fn next(&mut self) -> Option<FlowKey> {
        let cur = self.cur?;
        if self.include_self {
            self.include_self = false;
            return Some(cur);
        }
        let parent = self.schema.parent(&cur);
        self.cur = parent;
        parent
    }
}

/// Error constructing a [`GeneralizationSchema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A ladder rung exceeds the feature's bit width.
    LadderExceedsWidth(Feature),
    /// The step order lists no features.
    EmptyOrder,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::LadderExceedsWidth(feat) => {
                write!(f, "ladder for {feat} exceeds the feature width")
            }
            SchemaError::EmptyOrder => write!(f, "step order lists no features"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exact() -> FlowKey {
        FlowKey::five_tuple(
            17,
            "10.1.2.3".parse().unwrap(),
            5353,
            "192.168.9.1".parse().unwrap(),
            53,
        )
    }

    #[test]
    fn default_schema_depth() {
        let s = GeneralizationSchema::default();
        assert_eq!(s.max_depth(), 1 + 4 + 4 + 1 + 1);
        assert_eq!(s.depth(&exact()), s.max_depth());
        assert_eq!(s.depth(&FlowKey::root()), 0);
    }

    #[test]
    fn parent_chain_reaches_root() {
        let s = GeneralizationSchema::default();
        let chain: Vec<_> = s.self_and_ancestors(&exact()).collect();
        assert_eq!(chain.len(), s.max_depth() + 1);
        assert_eq!(*chain.last().unwrap(), FlowKey::root());
        // Every ancestor contains the exact key.
        for a in &chain {
            assert!(a.contains(&exact()));
        }
        // Depth decreases by exactly one at each step.
        for w in chain.windows(2) {
            assert_eq!(s.depth(&w[0]), s.depth(&w[1]) + 1);
        }
    }

    #[test]
    fn priority_order_drops_ports_first() {
        let s = GeneralizationSchema::default();
        let p1 = s.parent(&exact()).unwrap();
        assert!(p1.field(Feature::SrcPort).is_wildcard());
        assert!(p1.field(Feature::DstPort).is_exact());
        let p2 = s.parent(&p1).unwrap();
        assert!(p2.field(Feature::DstPort).is_wildcard());
        assert!(p2.field(Feature::Proto).is_exact());
    }

    #[test]
    fn round_robin_alternates() {
        let s = GeneralizationSchema::bitwise_ip_pair();
        let key = FlowKey::five_tuple(
            6,
            "10.0.0.1".parse().unwrap(),
            1,
            "10.0.0.2".parse().unwrap(),
            2,
        );
        let norm = s.normalize(&key);
        // Ports/proto are off-ladder -> wildcarded by normalization.
        assert!(norm.field(Feature::SrcPort).is_wildcard());
        let p1 = s.parent(&norm).unwrap();
        let p2 = s.parent(&p1).unwrap();
        // First step widens src (tie, earliest in list), second widens dst.
        assert_eq!(p1.field(Feature::SrcIp).len(), 31);
        assert_eq!(p1.field(Feature::DstIp).len(), 32);
        assert_eq!(p2.field(Feature::SrcIp).len(), 31);
        assert_eq!(p2.field(Feature::DstIp).len(), 31);
    }

    #[test]
    fn normalize_snaps_down() {
        let s = GeneralizationSchema::default();
        let key = exact().generalize(Feature::SrcIp, 20);
        let norm = s.normalize(&key);
        assert_eq!(norm.field(Feature::SrcIp).len(), 16);
        assert!(s.is_normalized(&norm));
        assert!(!s.is_normalized(&key));
        assert!(norm.contains(&key));
    }

    #[test]
    fn parent_of_offladder_key_is_normalization() {
        let s = GeneralizationSchema::default();
        let key = exact().generalize(Feature::SrcIp, 20);
        assert_eq!(s.parent(&key).unwrap(), s.normalize(&key));
    }

    #[test]
    fn root_has_no_parent() {
        let s = GeneralizationSchema::default();
        assert_eq!(s.parent(&FlowKey::root()), None);
        assert_eq!(s.ancestors(&FlowKey::root()).count(), 0);
    }

    #[test]
    fn common_ancestor_basics() {
        let s = GeneralizationSchema::default();
        let a = exact();
        let b = FlowKey::five_tuple(
            17,
            "10.1.2.99".parse().unwrap(),
            5353,
            "192.168.9.1".parse().unwrap(),
            53,
        );
        let anc = s.common_ancestor(&a, &b);
        assert!(anc.contains(&a) && anc.contains(&b));
        assert_eq!(s.common_ancestor(&a, &a), a);
        assert_eq!(s.common_ancestor(&a, &FlowKey::root()), FlowKey::root());
    }

    #[test]
    fn schema_rejects_bad_ladders() {
        let mut ladders: [Vec<u8>; 5] = Default::default();
        ladders[Feature::Proto.index()] = vec![0, 9]; // width is 8
        assert_eq!(
            GeneralizationSchema::new(ladders, StepOrder::Priority(vec![Feature::Proto])),
            Err(SchemaError::LadderExceedsWidth(Feature::Proto))
        );
        assert_eq!(
            GeneralizationSchema::new(Default::default(), StepOrder::Priority(vec![])),
            Err(SchemaError::EmptyOrder)
        );
    }

    fn arb_exact_key() -> impl Strategy<Value = FlowKey> {
        (
            any::<u8>(),
            any::<u32>(),
            any::<u16>(),
            any::<u32>(),
            any::<u16>(),
        )
            .prop_map(|(p, si, sp, di, dp)| {
                FlowKey::five_tuple(
                    p,
                    crate::addr::Ipv4Addr::new(si),
                    sp,
                    crate::addr::Ipv4Addr::new(di),
                    dp,
                )
            })
    }

    proptest! {
        #[test]
        fn prop_parent_chain_terminates_and_contains(key in arb_exact_key()) {
            let s = GeneralizationSchema::default();
            let mut cur = key;
            let mut steps = 0;
            while let Some(p) = s.parent(&cur) {
                prop_assert!(p.contains(&cur));
                prop_assert!(s.depth(&p) < s.depth(&cur));
                cur = p;
                steps += 1;
                prop_assert!(steps <= s.max_depth());
            }
            prop_assert_eq!(cur, FlowKey::root());
        }

        #[test]
        fn prop_common_ancestor_symmetric(a in arb_exact_key(), b in arb_exact_key()) {
            let s = GeneralizationSchema::default();
            let ab = s.common_ancestor(&a, &b);
            prop_assert_eq!(ab, s.common_ancestor(&b, &a));
            prop_assert!(ab.contains(&a));
            prop_assert!(ab.contains(&b));
        }

        #[test]
        fn prop_bitwise_schema_chain(a in arb_exact_key()) {
            let s = GeneralizationSchema::bitwise_ip_pair();
            let chain: Vec<_> = s.self_and_ancestors(&a).collect();
            prop_assert_eq!(chain.len(), s.depth(&s.normalize(&a)) + 1);
            prop_assert_eq!(*chain.last().unwrap(), FlowKey::root());
        }
    }
}
