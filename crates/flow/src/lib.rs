//! Generalized network flows for distributed mega-dataset summarization.
//!
//! This crate provides the data model behind the *Flowtree* computing
//! primitive described in "Distributed Mega-Datasets: The Need for Novel
//! Computing Primitives" (ICDCS 2019), §VI:
//!
//! * [`addr::Ipv4Addr`] and [`addr::Prefix`] — addresses and CIDR-style
//!   prefixes used to generalize IP features,
//! * [`key::FlowKey`] — a *generalized flow*: a vector of masked features
//!   (protocol, source/destination IP, source/destination port),
//! * [`mask::GeneralizationSchema`] — the per-feature mask steps that induce
//!   the flow hierarchy ("an IP a.b.c.d is part of the prefix a.b.c.d/n1 and
//!   a.b.c.d/n1 is a more specific of a.b.c.d/n2 if n1 > n2"),
//! * [`record::FlowRecord`] — a raw flow observation (e.g. one NetFlow
//!   record) feeding aggregators,
//! * [`score::Popularity`] — the popularity score annotation (packet, byte
//!   or flow counts) that Flowtree nodes carry,
//! * [`time`] — simulation-friendly timestamps shared across the workspace.
//!
//! # Example
//!
//! ```
//! use megastream_flow::key::FlowKey;
//! use megastream_flow::mask::GeneralizationSchema;
//! use megastream_flow::record::FlowRecord;
//!
//! let rec = FlowRecord::builder()
//!     .proto(6)
//!     .src("10.1.2.3".parse()?, 443)
//!     .dst("192.168.7.9".parse()?, 55211)
//!     .packets(12)
//!     .bytes(9_000)
//!     .build();
//! let key = FlowKey::from_record(&rec);
//! let schema = GeneralizationSchema::default();
//! // Walking up the generalization chain ends at the fully wildcarded root.
//! let ancestors: Vec<_> = schema.ancestors(&key).collect();
//! assert_eq!(ancestors.last().unwrap(), &FlowKey::root());
//! # Ok::<(), megastream_flow::addr::ParseAddrError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod key;
pub mod mask;
pub mod record;
pub mod score;
pub mod time;

pub use addr::{Ipv4Addr, Prefix};
pub use key::{Feature, FeatureSet, FlowKey, MaskedField};
pub use mask::GeneralizationSchema;
pub use record::FlowRecord;
pub use score::{Popularity, ScoreKind};
pub use time::{TimeDelta, TimeWindow, Timestamp};
