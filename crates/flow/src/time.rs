//! Simulation-friendly time types.
//!
//! All experiments in this workspace run on *simulated* time so that results
//! are deterministic. [`Timestamp`] is a microsecond count since the start of
//! a simulation; [`TimeDelta`] is a duration; [`TimeWindow`] is a half-open
//! interval `[start, end)` used to tag data summaries with the period they
//! cover.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The simulation origin.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference to an earlier timestamp.
    pub fn saturating_since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// The zero duration.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a delta from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        TimeDelta(micros)
    }

    /// Creates a delta from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        TimeDelta(millis * 1_000)
    }

    /// Creates a delta from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        TimeDelta(secs * 1_000_000)
    }

    /// Creates a delta from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        TimeDelta(mins * 60_000_000)
    }

    /// Creates a delta from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        TimeDelta(hours * 3_600_000_000)
    }

    /// Microseconds in this delta.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this delta (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the delta by an integer factor.
    pub const fn mul(self, factor: u64) -> TimeDelta {
        TimeDelta(self.0 * factor)
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        debug_assert!(self.0 >= rhs.0, "timestamp subtraction underflow");
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

/// A half-open interval of simulated time `[start, end)`.
///
/// Data summaries carry a `TimeWindow` stating the period they cover;
/// windows can be merged when summaries are combined across time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeWindow {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(end >= start, "time window end before start");
        TimeWindow { start, end }
    }

    /// The window `[start, start + len)`.
    pub fn starting_at(start: Timestamp, len: TimeDelta) -> Self {
        TimeWindow {
            start,
            end: start + len,
        }
    }

    /// Window length.
    pub fn len(self) -> TimeDelta {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `t` falls inside the window.
    pub fn contains(self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether the two windows share any instant.
    pub fn overlaps(self, other: TimeWindow) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the two windows are adjacent or overlapping (their union is a
    /// single interval).
    pub fn joinable(self, other: TimeWindow) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The smallest window covering both.
    #[must_use]
    pub fn hull(self, other: TimeWindow) -> TimeWindow {
        TimeWindow {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3}s, {:.3}s)",
            self.start.as_secs_f64(),
            self.end.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(1);
        let d = TimeDelta::from_millis(500);
        assert_eq!((t + d).as_micros(), 1_500_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(TimeDelta::from_mins(2), TimeDelta::from_secs(120));
        assert_eq!(TimeDelta::from_hours(1), TimeDelta::from_mins(60));
        assert_eq!(d.mul(4), TimeDelta::from_secs(2));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = Timestamp::from_secs(1);
        let late = Timestamp::from_secs(5);
        assert_eq!(late.saturating_since(early), TimeDelta::from_secs(4));
        assert_eq!(early.saturating_since(late), TimeDelta::ZERO);
    }

    #[test]
    fn window_contains_and_overlaps() {
        let w = TimeWindow::starting_at(Timestamp::from_secs(1), TimeDelta::from_secs(2));
        assert!(w.contains(Timestamp::from_secs(1)));
        assert!(w.contains(Timestamp::from_micros(2_999_999)));
        assert!(!w.contains(Timestamp::from_secs(3)));

        let w2 = TimeWindow::starting_at(Timestamp::from_secs(3), TimeDelta::from_secs(1));
        assert!(!w.overlaps(w2));
        assert!(w.joinable(w2)); // adjacent
        assert_eq!(w.hull(w2).len(), TimeDelta::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn window_rejects_reversed_bounds() {
        let _ = TimeWindow::new(Timestamp::from_secs(2), Timestamp::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_secs(2).to_string(), "t+2.000000s");
        assert_eq!(TimeDelta::from_millis(1500).to_string(), "1.500000s");
    }
}
