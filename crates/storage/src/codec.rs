//! Binary codec for everything the cold tier persists.
//!
//! Little-endian, length-delimited, self-describing via one-byte tags —
//! deliberately boring. Two properties matter more than compactness:
//!
//! 1. **Roundtrip identity.** `decode(encode(x)) == x` under each type's
//!    `PartialEq` (proved by the workspace proptest suite). Where internal
//!    state is unobservable (a reservoir's RNG), the owning type's
//!    `PartialEq` deliberately ignores it and decode reseeds from a fixed
//!    constant.
//! 2. **Total decoding.** Arbitrary input bytes — truncation, bit flips,
//!    garbage — decode to a typed [`SegmentError`], never a panic. Every
//!    length is bounds-checked against the remaining input *before*
//!    allocation, and every invariant the constructors would `assert!` is
//!    validated here first.

use megastream_datastore::summary::{Lineage, StoredSummary, Summary, TransformRecord};
use megastream_flow::addr::Ipv4Addr;
use megastream_flow::key::{Feature, FeatureSet, FlowKey, MaskedField};
use megastream_flow::mask::{GeneralizationSchema, StepOrder};
use megastream_flow::record::FlowRecord;
use megastream_flow::score::{Popularity, ScoreKind};
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::{FlatNode, Flowtree, FlowtreeConfig};
use megastream_primitives::exact::ExactFlowTable;
use megastream_primitives::reservoir::Reservoir;
use megastream_primitives::sampling::{SamplePoint, SampledSeries};
use megastream_primitives::spacesaving::{SpaceSaving, SsCounter};
use megastream_primitives::timebin::{BinStats, BinnedSeries};

use crate::SegmentError;

/// Longest string the decoder will allocate (1 MiB) — lineage and source
/// names are short; anything longer is garbage input.
const MAX_STR: usize = 1 << 20;

/// Maximum recursion depth for [`StepOrder::Stages`]; real schemas nest two
/// or three levels, so a deeper input is malformed (and unbounded recursion
/// on attacker-controlled bytes would overflow the stack).
const MAX_ORDER_DEPTH: u32 = 16;

/// Seed used when rebuilding a [`Reservoir`] from disk. The in-flight RNG
/// state is not observable through the public API and `Reservoir`'s
/// `PartialEq` deliberately ignores it, so any fixed constant preserves
/// roundtrip equality while keeping recovery deterministic.
const RESERVOIR_RESEED: u64 = 0x4d45_4741_5354_524d;

// ---------------------------------------------------------------------------
// Primitive writers. Encoding is infallible; all fallibility lives in decode.
// ---------------------------------------------------------------------------

fn w_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn w_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    w_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Writes a `u32` element count, saturating at `u32::MAX` (collections that
/// large never occur; saturation keeps encoding total).
fn w_count(out: &mut Vec<u8>, n: usize) {
    w_u32(out, u32::try_from(n).unwrap_or(u32::MAX));
}

// ---------------------------------------------------------------------------
// Bounds-checked reader.
// ---------------------------------------------------------------------------

/// A cursor over an input buffer; every read is bounds-checked and returns
/// a typed error on shortfall.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SegmentError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SegmentError::Malformed { what })?;
        let slice = self.buf.get(self.pos..end).ok_or(SegmentError::Truncated {
            what,
            needed: n as u64,
            available: self.remaining() as u64,
        })?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, SegmentError> {
        Ok(self.take(1, what)?.first().copied().unwrap_or(0))
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, SegmentError> {
        let b = self.take(2, what)?;
        let mut a = [0u8; 2];
        a.copy_from_slice(b);
        Ok(u16::from_le_bytes(a))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, SegmentError> {
        let b = self.take(4, what)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, SegmentError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, SegmentError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn str(&mut self, what: &'static str) -> Result<String, SegmentError> {
        let len = self.u32(what)? as usize;
        if len > MAX_STR {
            return Err(SegmentError::Malformed { what });
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SegmentError::Malformed { what })
    }

    /// Reads a `u32` element count and rejects it up front if `count ×
    /// elem_min` bytes cannot possibly remain — so garbage counts fail fast
    /// instead of triggering a huge allocation.
    pub(crate) fn count(
        &mut self,
        elem_min: usize,
        what: &'static str,
    ) -> Result<usize, SegmentError> {
        let n = self.u32(what)? as usize;
        let need = n
            .checked_mul(elem_min)
            .ok_or(SegmentError::Malformed { what })?;
        if need > self.remaining() {
            return Err(SegmentError::Truncated {
                what,
                needed: need as u64,
                available: self.remaining() as u64,
            });
        }
        Ok(n)
    }

    /// Fails unless the whole input was consumed — frame payloads are exact.
    pub(crate) fn finish(&self, what: &'static str) -> Result<(), SegmentError> {
        if self.remaining() != 0 {
            return Err(SegmentError::Malformed { what });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Time.
// ---------------------------------------------------------------------------

fn enc_window(out: &mut Vec<u8>, w: TimeWindow) {
    w_u64(out, w.start.as_micros());
    w_u64(out, w.end.as_micros());
}

fn dec_window(r: &mut Reader<'_>) -> Result<TimeWindow, SegmentError> {
    let start = r.u64("window.start")?;
    let end = r.u64("window.end")?;
    if end < start {
        return Err(SegmentError::Malformed {
            what: "window end before start",
        });
    }
    Ok(TimeWindow::new(
        Timestamp::from_micros(start),
        Timestamp::from_micros(end),
    ))
}

// ---------------------------------------------------------------------------
// Flow records.
// ---------------------------------------------------------------------------

pub(crate) fn enc_flow_record(out: &mut Vec<u8>, rec: &FlowRecord) {
    w_u64(out, rec.ts.as_micros());
    w_u8(out, rec.proto);
    w_u32(out, rec.src_ip.bits());
    w_u32(out, rec.dst_ip.bits());
    w_u16(out, rec.src_port);
    w_u16(out, rec.dst_port);
    w_u64(out, rec.packets);
    w_u64(out, rec.bytes);
}

pub(crate) fn dec_flow_record(r: &mut Reader<'_>) -> Result<FlowRecord, SegmentError> {
    Ok(FlowRecord {
        ts: Timestamp::from_micros(r.u64("record.ts")?),
        proto: r.u8("record.proto")?,
        src_ip: Ipv4Addr::new(r.u32("record.src_ip")?),
        dst_ip: Ipv4Addr::new(r.u32("record.dst_ip")?),
        src_port: r.u16("record.src_port")?,
        dst_port: r.u16("record.dst_port")?,
        packets: r.u64("record.packets")?,
        bytes: r.u64("record.bytes")?,
    })
}

/// Encodes one flow record to a standalone buffer (the WAL record payload
/// body uses this via [`crate::wal`]).
pub fn encode_flow_record(rec: &FlowRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    enc_flow_record(&mut out, rec);
    out
}

/// Decodes a standalone flow-record buffer produced by
/// [`encode_flow_record`].
pub fn decode_flow_record(buf: &[u8]) -> Result<FlowRecord, SegmentError> {
    let mut r = Reader::new(buf);
    let rec = dec_flow_record(&mut r)?;
    r.finish("record trailing bytes")?;
    Ok(rec)
}

// ---------------------------------------------------------------------------
// Flow keys and schemas.
// ---------------------------------------------------------------------------

fn enc_flow_key(out: &mut Vec<u8>, key: &FlowKey) {
    for f in Feature::ALL {
        let field = key.field(f);
        w_u32(out, field.value());
        w_u8(out, field.len());
    }
}

fn dec_flow_key(r: &mut Reader<'_>) -> Result<FlowKey, SegmentError> {
    let mut key = FlowKey::root();
    for f in Feature::ALL {
        let value = r.u32("key.field.value")?;
        let len = r.u8("key.field.len")?;
        let width = f.width();
        if len > width {
            return Err(SegmentError::Malformed {
                what: "key field mask longer than width",
            });
        }
        key = key.with_field(f, MaskedField::new(value, width, len));
    }
    Ok(key)
}

fn enc_feature_set(out: &mut Vec<u8>, fs: FeatureSet) {
    let mut bits = 0u8;
    for f in fs.iter() {
        bits |= 1 << f.index();
    }
    w_u8(out, bits);
}

fn dec_feature_set(r: &mut Reader<'_>) -> Result<FeatureSet, SegmentError> {
    let bits = r.u8("feature set")?;
    if bits >> Feature::ALL.len() != 0 {
        return Err(SegmentError::Malformed {
            what: "unknown feature bit",
        });
    }
    let feats: Vec<Feature> = Feature::ALL
        .into_iter()
        .filter(|f| bits & (1 << f.index()) != 0)
        .collect();
    Ok(FeatureSet::of(&feats))
}

fn enc_score_kind(out: &mut Vec<u8>, kind: ScoreKind) {
    match kind {
        ScoreKind::Packets => w_u8(out, 0),
        ScoreKind::Bytes => w_u8(out, 1),
        ScoreKind::Flows => w_u8(out, 2),
        ScoreKind::Weighted {
            w_packets,
            w_bytes,
            w_flows,
        } => {
            w_u8(out, 3);
            w_u64(out, w_packets);
            w_u64(out, w_bytes);
            w_u64(out, w_flows);
        }
    }
}

fn dec_score_kind(r: &mut Reader<'_>) -> Result<ScoreKind, SegmentError> {
    match r.u8("score kind tag")? {
        0 => Ok(ScoreKind::Packets),
        1 => Ok(ScoreKind::Bytes),
        2 => Ok(ScoreKind::Flows),
        3 => Ok(ScoreKind::Weighted {
            w_packets: r.u64("score weight")?,
            w_bytes: r.u64("score weight")?,
            w_flows: r.u64("score weight")?,
        }),
        _ => Err(SegmentError::Malformed {
            what: "unknown score kind tag",
        }),
    }
}

fn enc_features(out: &mut Vec<u8>, fs: &[Feature]) {
    w_count(out, fs.len());
    for f in fs {
        w_u8(out, f.index() as u8);
    }
}

fn dec_features(r: &mut Reader<'_>) -> Result<Vec<Feature>, SegmentError> {
    let n = r.count(1, "feature list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = r.u8("feature index")? as usize;
        let f = Feature::ALL
            .get(idx)
            .copied()
            .ok_or(SegmentError::Malformed {
                what: "unknown feature index",
            })?;
        out.push(f);
    }
    Ok(out)
}

fn enc_step_order(out: &mut Vec<u8>, order: &StepOrder) {
    match order {
        StepOrder::Priority(fs) => {
            w_u8(out, 0);
            enc_features(out, fs);
        }
        StepOrder::RoundRobin(fs) => {
            w_u8(out, 1);
            enc_features(out, fs);
        }
        StepOrder::Stages(stages) => {
            w_u8(out, 2);
            w_count(out, stages.len());
            for s in stages {
                enc_step_order(out, s);
            }
        }
    }
}

fn dec_step_order(r: &mut Reader<'_>, depth: u32) -> Result<StepOrder, SegmentError> {
    if depth > MAX_ORDER_DEPTH {
        return Err(SegmentError::Malformed {
            what: "step order nested too deeply",
        });
    }
    match r.u8("step order tag")? {
        0 => Ok(StepOrder::Priority(dec_features(r)?)),
        1 => Ok(StepOrder::RoundRobin(dec_features(r)?)),
        2 => {
            let n = r.count(1, "step order stages")?;
            let mut stages = Vec::with_capacity(n);
            for _ in 0..n {
                stages.push(dec_step_order(r, depth + 1)?);
            }
            Ok(StepOrder::Stages(stages))
        }
        _ => Err(SegmentError::Malformed {
            what: "unknown step order tag",
        }),
    }
}

fn enc_schema(out: &mut Vec<u8>, schema: &GeneralizationSchema) {
    for f in Feature::ALL {
        let ladder = schema.ladder(f);
        w_count(out, ladder.len());
        out.extend_from_slice(ladder);
    }
    enc_step_order(out, schema.order());
}

fn dec_schema(r: &mut Reader<'_>) -> Result<GeneralizationSchema, SegmentError> {
    let mut ladders: [Vec<u8>; 5] = Default::default();
    for slot in ladders.iter_mut() {
        let n = r.count(1, "schema ladder")?;
        *slot = r.take(n, "schema ladder")?.to_vec();
    }
    let order = dec_step_order(r, 0)?;
    GeneralizationSchema::new(ladders, order).map_err(|_| SegmentError::Malformed {
        what: "invalid generalization schema",
    })
}

// ---------------------------------------------------------------------------
// Summary payloads.
// ---------------------------------------------------------------------------

fn enc_flowtree(out: &mut Vec<u8>, tree: &Flowtree) {
    let config = tree.config();
    enc_schema(out, &config.schema);
    enc_feature_set(out, config.features);
    enc_score_kind(out, config.score_kind);
    w_u64(out, config.capacity as u64);
    w_f64(out, config.compact_ratio);
    w_u64(out, tree.records());
    // One frame = the arena slice as-is: canonical pre-order, each node
    // carrying its parent's position (always smaller than its own, so
    // cycles are unrepresentable on the wire).
    let nodes = tree.flat_nodes();
    w_count(out, nodes.len());
    for node in nodes {
        enc_flow_key(out, &node.key);
        w_u64(out, node.own.value());
        w_u32(out, node.parent);
    }
}

fn dec_flowtree(r: &mut Reader<'_>) -> Result<Flowtree, SegmentError> {
    let schema = dec_schema(r)?;
    let features = dec_feature_set(r)?;
    let score_kind = dec_score_kind(r)?;
    let capacity = r.u64("flowtree capacity")?;
    let capacity = usize::try_from(capacity).map_err(|_| SegmentError::Malformed {
        what: "flowtree capacity",
    })?;
    if capacity == 0 {
        return Err(SegmentError::Malformed {
            what: "flowtree capacity zero",
        });
    }
    let compact_ratio = r.f64("flowtree compact ratio")?;
    if !compact_ratio.is_finite() || compact_ratio <= 0.0 || compact_ratio > 1.0 {
        return Err(SegmentError::Malformed {
            what: "flowtree compact ratio",
        });
    }
    let records = r.u64("flowtree records")?;
    let n = r.count(21 + 8 + 4, "flowtree nodes")?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let key = dec_flow_key(r)?;
        let own = r.u64("flowtree node score")?;
        let parent = r.u32("flowtree node parent")?;
        nodes.push(FlatNode {
            key,
            own: Popularity::new(own),
            parent,
        });
    }
    // Struct literal rather than the builder: `with_compact_ratio` clamps,
    // which would break exact roundtrip for ratios the builder never
    // produced but the (all-public) struct can carry.
    let config = FlowtreeConfig {
        schema,
        features,
        score_kind,
        capacity,
        compact_ratio,
    };
    // The validating constructor rejects every structural attack (cyclic
    // or out-of-range parents, duplicate keys, budget overflow) with a
    // typed error — decode never panics and never over-allocates.
    Flowtree::try_from_flat(config, &nodes, records)
        .map_err(|e| SegmentError::Malformed { what: e.what() })
}

fn enc_series(out: &mut Vec<u8>, s: &SampledSeries) {
    enc_window(out, s.window);
    let points = s.points();
    w_count(out, points.len());
    for p in points {
        w_u64(out, p.ts.as_micros());
        w_f64(out, p.value);
        w_f64(out, p.weight);
    }
}

fn dec_series(r: &mut Reader<'_>) -> Result<SampledSeries, SegmentError> {
    let window = dec_window(r)?;
    let n = r.count(24, "series points")?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let ts = Timestamp::from_micros(r.u64("point.ts")?);
        let value = r.f64("point.value")?;
        let weight = r.f64("point.weight")?;
        if value.is_nan() || weight.is_nan() {
            return Err(SegmentError::Malformed {
                what: "NaN sample point",
            });
        }
        points.push(SamplePoint { ts, value, weight });
    }
    Ok(SampledSeries::from_parts(window, points))
}

fn enc_reservoir(out: &mut Vec<u8>, res: &Reservoir<f64>) {
    w_u64(out, res.capacity() as u64);
    w_u64(out, res.seen());
    w_count(out, res.items().len());
    for v in res.items() {
        w_f64(out, *v);
    }
}

fn dec_reservoir(r: &mut Reader<'_>) -> Result<Reservoir<f64>, SegmentError> {
    let capacity = r.u64("reservoir capacity")?;
    let capacity = usize::try_from(capacity).map_err(|_| SegmentError::Malformed {
        what: "reservoir capacity",
    })?;
    let seen = r.u64("reservoir seen")?;
    let n = r.count(8, "reservoir items")?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(r.f64("reservoir item")?);
    }
    Reservoir::from_parts(capacity, RESERVOIR_RESEED, seen, items).ok_or(SegmentError::Malformed {
        what: "inconsistent reservoir",
    })
}

fn enc_bin_stats(out: &mut Vec<u8>, b: &BinStats) {
    w_u64(out, b.count());
    w_f64(out, b.sum());
    w_f64(out, b.sum_sq());
    let (min, max) = b.raw_bounds();
    w_f64(out, min);
    w_f64(out, max);
    enc_reservoir(out, b.sample());
}

fn dec_bin_stats(r: &mut Reader<'_>) -> Result<BinStats, SegmentError> {
    let count = r.u64("bin count")?;
    let sum = r.f64("bin sum")?;
    let sum_sq = r.f64("bin sum_sq")?;
    let min = r.f64("bin min")?;
    let max = r.f64("bin max")?;
    let sample = dec_reservoir(r)?;
    BinStats::from_parts(count, sum, sum_sq, min, max, sample).ok_or(SegmentError::Malformed {
        what: "inconsistent bin stats",
    })
}

fn enc_binned(out: &mut Vec<u8>, b: &BinnedSeries) {
    enc_window(out, b.window);
    w_u64(out, b.width().as_micros());
    w_count(out, b.len());
    for (idx, stats) in b.raw_bins() {
        w_u64(out, idx);
        enc_bin_stats(out, stats);
    }
}

fn dec_binned(r: &mut Reader<'_>) -> Result<BinnedSeries, SegmentError> {
    let window = dec_window(r)?;
    let width = TimeDelta::from_micros(r.u64("bin width")?);
    let n = r.count(8 + 60, "bins")?;
    let mut bins = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = r.u64("bin index")?;
        bins.push((idx, dec_bin_stats(r)?));
    }
    BinnedSeries::from_parts(window, width, bins).ok_or(SegmentError::Malformed {
        what: "inconsistent binned series",
    })
}

fn enc_top_flows(out: &mut Vec<u8>, ss: &SpaceSaving<FlowKey>) {
    w_u64(out, ss.capacity() as u64);
    w_u64(out, ss.total());
    w_count(out, ss.len());
    for (key, counter) in ss.iter() {
        enc_flow_key(out, key);
        w_u64(out, counter.count);
        w_u64(out, counter.error);
    }
}

fn dec_top_flows(r: &mut Reader<'_>) -> Result<SpaceSaving<FlowKey>, SegmentError> {
    let capacity = r.u64("spacesaving capacity")?;
    let capacity = usize::try_from(capacity).map_err(|_| SegmentError::Malformed {
        what: "spacesaving capacity",
    })?;
    let total = r.u64("spacesaving total")?;
    let n = r.count(21 + 16, "spacesaving entries")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = dec_flow_key(r)?;
        let count = r.u64("counter count")?;
        let error = r.u64("counter error")?;
        entries.push((key, SsCounter { count, error }));
    }
    SpaceSaving::from_parts(capacity, entries, total).ok_or(SegmentError::Malformed {
        what: "inconsistent spacesaving sketch",
    })
}

fn enc_exact(out: &mut Vec<u8>, table: &ExactFlowTable) {
    enc_feature_set(out, table.features());
    enc_score_kind(out, table.score_kind());
    w_count(out, table.len());
    for (key, score) in table.iter() {
        enc_flow_key(out, key);
        w_u64(out, score.value());
    }
}

fn dec_exact(r: &mut Reader<'_>) -> Result<ExactFlowTable, SegmentError> {
    let features = dec_feature_set(r)?;
    let score_kind = dec_score_kind(r)?;
    let n = r.count(21 + 8, "exact table entries")?;
    let mut table = ExactFlowTable::new(features, score_kind);
    for _ in 0..n {
        let key = dec_flow_key(r)?;
        let score = r.u64("exact table score")?;
        table.add(key, Popularity::new(score));
    }
    Ok(table)
}

fn enc_summary(out: &mut Vec<u8>, summary: &Summary) {
    match summary {
        Summary::Flowtree(t) => {
            w_u8(out, 0);
            enc_flowtree(out, t);
        }
        Summary::Series(s) => {
            w_u8(out, 1);
            enc_series(out, s);
        }
        Summary::Bins(b) => {
            w_u8(out, 2);
            enc_binned(out, b);
        }
        Summary::TopFlows(ss) => {
            w_u8(out, 3);
            enc_top_flows(out, ss);
        }
        Summary::Exact(t) => {
            w_u8(out, 4);
            enc_exact(out, t);
        }
        Summary::Raw {
            records,
            score_kind,
        } => {
            w_u8(out, 5);
            enc_score_kind(out, *score_kind);
            w_count(out, records.len());
            for rec in records {
                enc_flow_record(out, rec);
            }
        }
    }
}

fn dec_summary(r: &mut Reader<'_>) -> Result<Summary, SegmentError> {
    match r.u8("summary tag")? {
        0 => Ok(Summary::Flowtree(dec_flowtree(r)?)),
        1 => Ok(Summary::Series(dec_series(r)?)),
        2 => Ok(Summary::Bins(dec_binned(r)?)),
        3 => Ok(Summary::TopFlows(dec_top_flows(r)?)),
        4 => Ok(Summary::Exact(dec_exact(r)?)),
        5 => {
            let score_kind = dec_score_kind(r)?;
            let n = r.count(37, "raw records")?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(dec_flow_record(r)?);
            }
            Ok(Summary::Raw {
                records,
                score_kind,
            })
        }
        _ => Err(SegmentError::Malformed {
            what: "unknown summary tag",
        }),
    }
}

fn enc_lineage(out: &mut Vec<u8>, lineage: &Lineage) {
    w_count(out, lineage.sources.len());
    for s in &lineage.sources {
        w_str(out, s);
    }
    w_count(out, lineage.transforms.len());
    for t in &lineage.transforms {
        w_str(out, &t.op);
        w_str(out, &t.location);
        w_u64(out, t.at.as_micros());
    }
}

fn dec_lineage(r: &mut Reader<'_>) -> Result<Lineage, SegmentError> {
    let n = r.count(4, "lineage sources")?;
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        sources.push(r.str("lineage source")?);
    }
    let n = r.count(16, "lineage transforms")?;
    let mut transforms = Vec::with_capacity(n);
    for _ in 0..n {
        transforms.push(TransformRecord {
            op: r.str("transform op")?,
            location: r.str("transform location")?,
            at: Timestamp::from_micros(r.u64("transform at")?),
        });
    }
    Ok(Lineage {
        sources,
        transforms,
    })
}

pub(crate) fn enc_stored_summary(out: &mut Vec<u8>, s: &StoredSummary) {
    w_str(out, &s.source);
    enc_window(out, s.window);
    w_u32(out, s.level);
    enc_lineage(out, &s.lineage);
    enc_summary(out, &s.summary);
}

pub(crate) fn dec_stored_summary(r: &mut Reader<'_>) -> Result<StoredSummary, SegmentError> {
    let source = r.str("summary source")?;
    let window = dec_window(r)?;
    let level = r.u32("summary level")?;
    let lineage = dec_lineage(r)?;
    let summary = dec_summary(r)?;
    Ok(StoredSummary {
        source,
        window,
        level,
        lineage,
        summary,
    })
}

/// Encodes a stored summary to a standalone buffer.
pub fn encode_stored_summary(s: &StoredSummary) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.wire_size());
    enc_stored_summary(&mut out, s);
    out
}

/// Decodes a buffer produced by [`encode_stored_summary`]; trailing bytes
/// are an error (frame payloads are exact).
pub fn decode_stored_summary(buf: &[u8]) -> Result<StoredSummary, SegmentError> {
    let mut r = Reader::new(buf);
    let s = dec_stored_summary(&mut r)?;
    r.finish("summary trailing bytes")?;
    Ok(s)
}
