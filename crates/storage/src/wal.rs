//! The ingest write-ahead log: durable backing for records of the current
//! (not yet rotated) epoch.
//!
//! Sealed segments cover everything up to the last rotation; the WAL covers
//! the tail. One record is appended per ingested flow *before* the record
//! touches any aggregator, so a WAL'd record is always fully applied (the
//! in-memory ingest path after the append is infallible) and an un-WAL'd
//! record was never applied — the client may simply re-send it
//! (at-least-once delivery with exactly-once effect).
//!
//! The header carries the epoch sequence the log belongs to. After a
//! rotation seals segment *N*, the WAL is reset (tmp file + atomic rename)
//! with sequence *N+1*; a crash between seal and reset therefore leaves a
//! *stale* WAL (`seq ≤` last sealed), which recovery detects and drops —
//! its records were already replayed from the sealed segment.
//!
//! ```text
//! header  "MWAL" | version u32 | epoch_seq u64 | crc u32
//! record* len u32 | crc u32 | payload (rr u64, region u32, router u32, flow record)
//! ```

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use megastream_flow::record::FlowRecord;

use crate::codec::{dec_flow_record, enc_flow_record, Reader};
use crate::crc::crc32;
use crate::segment::{io_err, sync_dir, MAX_FRAME_BYTES};
use crate::SegmentError;

/// Magic bytes opening the WAL.
pub const WAL_MAGIC: [u8; 4] = *b"MWAL";
/// Name of the WAL file inside a cold-tier directory.
pub const WAL_FILE: &str = "ingest.wal";
/// Size of the fixed WAL header.
pub const WAL_HEADER_BYTES: u64 = 20;

/// One logged ingest: enough to replay the record through the normal
/// ingest path and to restore the round-robin cursor afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// The round-robin cursor *after* this ingest (the post-state, so the
    /// last replayed record pins the cursor exactly).
    pub rr: u64,
    /// Destination region.
    pub region: u32,
    /// Destination router within the region.
    pub router: u32,
    /// The flow record itself.
    pub record: FlowRecord,
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(56);
    payload.extend_from_slice(&rec.rr.to_le_bytes());
    payload.extend_from_slice(&rec.region.to_le_bytes());
    payload.extend_from_slice(&rec.router.to_le_bytes());
    enc_flow_record(&mut payload, &rec.record);
    payload
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, SegmentError> {
    let mut r = Reader::new(payload);
    let rr = r.u64("wal.rr")?;
    let region = r.u32("wal.region")?;
    let router = r.u32("wal.router")?;
    let record = dec_flow_record(&mut r)?;
    r.finish("wal record trailing bytes")?;
    Ok(WalRecord {
        rr,
        region,
        router,
        record,
    })
}

/// Appends ingest records to `ingest.wal`.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    epoch_seq: u64,
    offset: u64,
    records: u64,
}

impl WalWriter {
    /// Creates a fresh WAL for `epoch_seq`: header written to a tmp file,
    /// fsynced, atomically renamed over `ingest.wal`, directory fsynced —
    /// so the reset itself can never leave a half-written header behind.
    pub fn create(dir: &Path, epoch_seq: u64) -> Result<Self, SegmentError> {
        let tmp = dir.join("ingest.wal.tmp");
        let path = dir.join(WAL_FILE);
        let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&crate::segment::FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&epoch_seq.to_le_bytes());
        let crc = crc32(header.get(4..16).unwrap_or_default());
        header.extend_from_slice(&crc.to_le_bytes());
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err("create wal", &tmp, e))?;
            f.write_all(&header)
                .map_err(|e| io_err("write wal header", &tmp, e))?;
            f.sync_all()
                .map_err(|e| io_err("sync wal header", &tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename wal", &path, e))?;
        sync_dir(dir)?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open wal", &path, e))?;
        Ok(WalWriter {
            file,
            path,
            epoch_seq,
            offset: WAL_HEADER_BYTES,
            records: 0,
        })
    }

    /// The epoch this WAL belongs to.
    pub fn epoch_seq(&self) -> u64 {
        self.epoch_seq
    }

    /// Records appended since creation.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes written including the header.
    pub fn bytes_written(&self) -> u64 {
        self.offset
    }

    /// Writes raw bytes with no framing (fault-injection hook for torn
    /// appends); normal callers use [`WalWriter::append`].
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<(), SegmentError> {
        self.file
            .write_all(bytes)
            .map_err(|e| io_err("write wal", &self.path, e))?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Builds the full chunk ([len][crc][payload]) for a record — split out
    /// so the fault injector can write a prefix of it.
    pub fn chunk_for(rec: &WalRecord) -> Vec<u8> {
        let payload = encode_record(rec);
        let mut chunk = Vec::with_capacity(8 + payload.len());
        chunk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        chunk.extend_from_slice(&crc32(&payload).to_le_bytes());
        chunk.extend_from_slice(&payload);
        chunk
    }

    /// Appends one record; returns bytes written.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, SegmentError> {
        let chunk = Self::chunk_for(rec);
        self.write_raw(&chunk)?;
        self.records += 1;
        Ok(chunk.len() as u64)
    }

    /// Fsyncs the log (write-through sync policy).
    pub fn sync(&self) -> Result<(), SegmentError> {
        self.file
            .sync_all()
            .map_err(|e| io_err("sync wal", &self.path, e))
    }
}

/// Result of scanning a WAL file on recovery.
#[derive(Debug)]
pub struct WalScan {
    /// Epoch sequence from the header; `0` when the header itself was
    /// unreadable (always stale, so the records — there are none — drop).
    pub epoch_seq: u64,
    /// Records that decoded cleanly, in append order.
    pub records: Vec<WalRecord>,
    /// Torn records truncated from the tail.
    pub torn_frames: u64,
    /// Bytes discarded as torn tail.
    pub truncated_bytes: u64,
}

/// Reads the WAL, tolerating a torn tail. Returns `Ok(None)` if the file
/// does not exist (fresh directory, or a crash between WAL-tmp creation and
/// rename — either way there is nothing to replay).
pub fn read_wal(path: &Path) -> Result<Option<WalScan>, SegmentError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read wal", path, e)),
    };
    let mut scan = WalScan {
        epoch_seq: 0,
        records: Vec::new(),
        torn_frames: 0,
        truncated_bytes: 0,
    };
    let header = match data.get(..WAL_HEADER_BYTES as usize) {
        Some(h) => h,
        None => {
            scan.torn_frames = 1;
            scan.truncated_bytes = data.len() as u64;
            return Ok(Some(scan));
        }
    };
    let magic_ok = header.get(..4) == Some(&WAL_MAGIC[..]);
    let stored_crc = u32_at(header, 16);
    let crc_ok = crc32(header.get(4..16).unwrap_or_default()) == stored_crc;
    if !magic_ok || !crc_ok {
        scan.torn_frames = 1;
        scan.truncated_bytes = data.len() as u64;
        return Ok(Some(scan));
    }
    scan.epoch_seq = u64_at(header, 8);

    let mut pos = WAL_HEADER_BYTES as usize;
    while pos < data.len() {
        let remaining = data.len() - pos;
        let header = match data.get(pos..pos + 8) {
            Some(h) => h,
            None => {
                scan.torn_frames += 1;
                scan.truncated_bytes += remaining as u64;
                break;
            }
        };
        let len = u32_at(header, 0) as usize;
        let crc = u32_at(header, 4);
        if len as u64 > MAX_FRAME_BYTES || pos + 8 + len > data.len() {
            scan.torn_frames += 1;
            scan.truncated_bytes += remaining as u64;
            break;
        }
        let payload = data.get(pos + 8..pos + 8 + len).unwrap_or_default();
        if crc32(payload) != crc {
            scan.torn_frames += 1;
            scan.truncated_bytes += remaining as u64;
            break;
        }
        match decode_record(payload) {
            Ok(rec) => scan.records.push(rec),
            Err(_) => {
                scan.torn_frames += 1;
                scan.truncated_bytes += remaining as u64;
                break;
            }
        }
        pos += 8 + len;
    }
    Ok(Some(scan))
}

fn u32_at(buf: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    for (dst, src) in a.iter_mut().zip(buf.iter().skip(at)) {
        *dst = *src;
    }
    u32::from_le_bytes(a)
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    for (dst, src) in a.iter_mut().zip(buf.iter().skip(at)) {
        *dst = *src;
    }
    u64::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::time::Timestamp;

    fn rec(i: u64) -> WalRecord {
        WalRecord {
            rr: i,
            region: (i % 3) as u32,
            router: (i % 2) as u32,
            record: FlowRecord {
                ts: Timestamp::from_secs(i),
                proto: 6,
                src_ip: megastream_flow::addr::Ipv4Addr::new(0x0a000001 + i as u32),
                dst_ip: megastream_flow::addr::Ipv4Addr::new(0x01010101),
                src_port: 1000,
                dst_port: 80,
                packets: i,
                bytes: i * 100,
            },
        }
    }

    #[test]
    fn roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("mwal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = WalWriter::create(&dir, 3).unwrap();
        for i in 0..5 {
            w.append(&rec(i)).unwrap();
        }
        // Torn sixth record.
        let chunk = WalWriter::chunk_for(&rec(5));
        w.write_raw(&chunk[..chunk.len() / 2]).unwrap();
        let scan = read_wal(&dir.join(WAL_FILE)).unwrap().unwrap();
        assert_eq!(scan.epoch_seq, 3);
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.records[4], rec(4));
        assert_eq!(scan.torn_frames, 1);
        assert!(scan.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_none() {
        let p = std::env::temp_dir().join("mwal-definitely-missing.wal");
        assert!(read_wal(&p).unwrap().is_none());
    }
}
