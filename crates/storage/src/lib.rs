//! The **durable cold tier**: checksummed epoch segment files, a small
//! ingest write-ahead log, and kill-and-restart crash recovery for the
//! mega-dataset pipeline.
//!
//! The paper's architecture keeps hot state in memory (stores, spill
//! buffers, the NOC hierarchy) and loses it on a crash. This crate adds the
//! missing durability plane with three pieces:
//!
//! * [`segment`] — one append-only file per rotation ("epoch bundle"),
//!   length-prefixed frames with per-frame CRC-32, a sorted-run frame index
//!   appended at seal, and atomic-rename sealing (`segment.open` →
//!   `epoch-<seq>.seg`);
//! * [`wal`] — a write-ahead log for records of the current epoch, giving
//!   the bounded per-edge spill/ingest path durable backing;
//! * [`tier`] — the [`ColdTier`](tier::ColdTier) handle gluing both to a
//!   directory, with explicit fsync discipline ([`SyncPolicy`]), recovery
//!   ([`tier::ColdTier::open`]), and deterministic fault injection for the
//!   kill-and-restart proof;
//! * [`fsck`] — the offline verifier behind the `mega-fsck` binary.
//!
//! Recovery is *total*: torn tails are truncated and counted, checksum
//! mismatches in sealed data are quarantined and counted, and every failure
//! mode surfaces as a typed [`SegmentError`] — never a panic (the megalint
//! panic-surface pass covers this crate).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

use megastream_flow::time::Timestamp;

pub mod codec;
pub mod crc;
pub mod fsck;
pub mod segment;
pub mod tier;
pub mod wal;

pub use codec::{decode_stored_summary, encode_stored_summary};
pub use tier::{ColdTier, EpochBundle, FaultMode, FaultSpec, RecoveryReport};
pub use wal::WalRecord;

use megastream_datastore::summary::StoredSummary;

/// When the cold tier calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync explicitly (the OS flushes eventually). Cheapest; a
    /// power loss may lose recent epochs, a process kill does not.
    Off,
    /// Fsync after every frame and WAL append. Strongest; every
    /// acknowledged record survives power loss.
    WriteThrough,
    /// Fsync once per segment seal and WAL reset (the default): sealed
    /// epochs survive power loss, the current epoch's tail rides on the
    /// page cache.
    #[default]
    OnSeal,
}

/// Everything that can go wrong in the cold tier — the *only* failure
/// channel: no storage path panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// An operating-system I/O failure.
    Io {
        /// What the tier was doing.
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The file involved.
        path: PathBuf,
        /// What was found instead.
        found: [u8; 4],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// The file involved.
        path: PathBuf,
        /// The version found.
        found: u32,
    },
    /// Fewer bytes than a field needs (decode-level truncation).
    Truncated {
        /// Which field ran short.
        what: &'static str,
        /// Bytes required.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// A stored checksum disagrees with the recomputation.
    Checksum {
        /// Byte offset of the checksummed region.
        offset: u64,
        /// CRC stored on disk.
        stored: u32,
        /// CRC recomputed from the bytes.
        computed: u32,
    },
    /// Structurally invalid data (bad tag, violated invariant, trailing
    /// bytes).
    Malformed {
        /// What was malformed.
        what: &'static str,
    },
    /// A frame exceeds the size limit.
    FrameTooLarge {
        /// Claimed length.
        len: u64,
        /// The limit.
        max: u64,
    },
    /// The sealed-epoch sequence has a gap — a segment file is missing, so
    /// replay cannot reconstruct a consistent state.
    MissingEpoch {
        /// The sequence number expected next.
        expected: u64,
        /// The sequence number found.
        found: u64,
    },
    /// The deterministic fault injector fired (tests only).
    InjectedFault {
        /// The durable-op ordinal that tripped.
        op: u64,
    },
    /// The tier is dead after a previous failure; the caller should finish
    /// in memory and recover from disk on restart.
    TierDead,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io { op, path, kind } => {
                write!(f, "i/o failure during {op} on {}: {kind}", path.display())
            }
            SegmentError::BadMagic { path, found } => {
                write!(f, "bad magic {found:02x?} in {}", path.display())
            }
            SegmentError::UnsupportedVersion { path, found } => {
                write!(
                    f,
                    "unsupported format version {found} in {}",
                    path.display()
                )
            }
            SegmentError::Truncated {
                what,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated {what}: needed {needed} bytes, have {available}"
                )
            }
            SegmentError::Checksum {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch at offset {offset}: stored {stored:08x}, computed {computed:08x}"
            ),
            SegmentError::Malformed { what } => write!(f, "malformed {what}"),
            SegmentError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds limit {max}")
            }
            SegmentError::MissingEpoch { expected, found } => {
                write!(
                    f,
                    "missing sealed epoch: expected seq {expected}, found {found}"
                )
            }
            SegmentError::InjectedFault { op } => write!(f, "injected fault at durable op {op}"),
            SegmentError::TierDead => write!(f, "cold tier is dead after a prior failure"),
        }
    }
}

impl std::error::Error for SegmentError {}

/// Per-region cumulative ingest statistics persisted in the epoch
/// [`EpochMeta`] so recovery can restore them absolutely (the sealed
/// segments carry summaries, not the raw records that produced them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionStatsSnapshot {
    /// Flow records ingested.
    pub flows: u64,
    /// Scalar samples ingested.
    pub scalars: u64,
    /// Raw bytes accounted.
    pub raw_bytes: u64,
}

/// The closing frame of every epoch segment: absolute snapshots of the
/// stream-level state that frames alone cannot rebuild.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EpochMeta {
    /// The stream clock at rotation time.
    pub now: Timestamp,
    /// Round-robin ingest cursor.
    pub rr: u64,
    /// Cumulative export retries observed.
    pub export_retries: u64,
    /// Cumulative summaries parked in spill buffers.
    pub spilled: u64,
    /// Cumulative summaries flushed back out of spill buffers.
    pub flushed: u64,
    /// Cumulative summaries dropped on spill overflow.
    pub dropped: u64,
    /// Cumulative bytes dropped on spill overflow.
    pub dropped_bytes: u64,
    /// Cumulative raw-transfer deferrals.
    pub raw_deferrals: u64,
    /// Pending raw bytes per `[region][router]`.
    pub raw_pending: Vec<Vec<u64>>,
    /// Cumulative per-region ingest statistics.
    pub region_stats: Vec<RegionStatsSnapshot>,
}

/// One durable event in an epoch segment, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A spill-buffer entry was flushed and delivered to the NOC.
    Flushed {
        /// Source region.
        region: u32,
        /// The delivered summary.
        summary: StoredSummary,
    },
    /// A rotation summary was exported (stored regionally *and* delivered
    /// to the NOC — `rotate_epoch` does both with the same object).
    Exported {
        /// Source region.
        region: u32,
        /// The exported summary.
        summary: StoredSummary,
    },
    /// A rotation summary failed its transfer and was parked in the spill
    /// buffer (still stored regionally).
    Parked {
        /// Source region.
        region: u32,
        /// The parked summary.
        summary: StoredSummary,
    },
    /// The closing metadata snapshot.
    Meta(EpochMeta),
}
