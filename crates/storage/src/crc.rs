//! CRC-32 (IEEE 802.3 polynomial, reflected) — the per-frame checksum of
//! the segment format.
//!
//! The cold tier needs *bit-flip detection*, not cryptographic integrity:
//! a frame whose stored CRC disagrees with a recomputation is quarantined
//! rather than replayed (§DESIGN.md "Durability & crash recovery"). CRC-32
//! is the standard choice for this job (Ethernet, zip, PNG); the table is
//! built at first use so the crate stays zero-dependency.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry lookup table, computed once.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// standard "crc32" every external tool computes, so segment files can be
/// checked with stock utilities).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        // The index is masked to 8 bits, so it is always in range.
        let entry = table.get(idx).copied().unwrap_or(0);
        crc = (crc >> 8) ^ entry;
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "missed flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
