//! Offline verification of a cold-tier directory — the library behind the
//! `mega-fsck` binary.
//!
//! A check walks every sealed segment (header, per-frame checksums, frame
//! decode, trailer index), the in-progress `segment.open` (torn tails are a
//! *finding*, not corruption — they are expected after a kill), and the
//! ingest WAL, then reports every problem as a human-readable line. Repair
//! mode additionally quarantines corrupt frames and rewrites the damaged
//! segments, exactly as [`crate::tier::ColdTier::open`] would.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::segment::{self, parse_sealed_name, read_segment, rewrite_sealed, OPEN_SEGMENT};
use crate::wal::{read_wal, WAL_FILE};
use crate::SegmentError;

/// One verified segment file.
#[derive(Debug)]
pub struct SegmentReport {
    /// The file checked.
    pub path: PathBuf,
    /// Epoch sequence from the filename/header.
    pub epoch_seq: u64,
    /// Clean frames found.
    pub frames: u64,
    /// Corrupt frames found (checksum or decode failures).
    pub corrupt_frames: u64,
    /// Whether the trailer index was present and matched the frames.
    pub index_ok: bool,
}

/// The full result of checking a cold-tier directory.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Per-segment results, in epoch order.
    pub segments: Vec<SegmentReport>,
    /// Total clean frames across sealed segments.
    pub clean_frames: u64,
    /// Total corrupt frames across sealed segments.
    pub corrupt_frames: u64,
    /// Torn frames in the open segment and WAL tails.
    pub torn_frames: u64,
    /// Whether `segment.open` exists (uncommitted epoch; recovery discards
    /// it — expected after a crash, noted but not a corruption).
    pub open_segment: bool,
    /// Clean WAL records found.
    pub wal_records: u64,
    /// Segments rewritten by repair mode.
    pub repaired_segments: u64,
    /// Human-readable problem lines; empty means the store is clean.
    pub problems: Vec<String>,
}

impl FsckReport {
    /// Whether the store verified clean: no corruption, no missing epochs,
    /// no unreadable files. Torn tails in the *open* segment or WAL do not
    /// count — they are the normal residue of a kill and recovery handles
    /// them — but any problem line does.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Checks a cold-tier directory. With `repair`, corrupt frames are
/// quarantined and the damaged segments rewritten so a subsequent check
/// comes back clean. Hard errors (unreadable directory) surface as `Err`;
/// per-file damage is reported in the [`FsckReport`].
pub fn fsck(dir: &Path, repair: bool) -> Result<FsckReport, SegmentError> {
    let mut report = FsckReport::default();

    let mut sealed: BTreeMap<u64, PathBuf> = BTreeMap::new();
    let entries = fs::read_dir(dir).map_err(|e| segment::io_err("read tier dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| segment::io_err("read tier dir", dir, e))?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_sealed_name) {
            sealed.insert(seq, entry.path());
        }
    }

    let mut expected = 1u64;
    for (&seq, path) in &sealed {
        if seq != expected {
            report.problems.push(format!(
                "missing sealed epoch: expected seq {expected}, found {seq}"
            ));
        }
        expected = seq + 1;
        match read_segment(path, true) {
            Ok(scan) => {
                if scan.epoch_seq != seq {
                    // Not repairable by a rewrite: the rebuilt header would
                    // carry the same (wrong) sequence.
                    report.problems.push(format!(
                        "{}: header seq {} disagrees with filename",
                        path.display(),
                        scan.epoch_seq
                    ));
                }
                // Problems a rewrite resolves — held aside so a successful
                // repair can drop them (the exit code reflects the state
                // *after* repair).
                let mut seg_problems = Vec::new();
                if !scan.index_ok {
                    seg_problems.push(format!(
                        "{}: trailer index missing or inconsistent",
                        path.display()
                    ));
                }
                if scan.torn_frames > 0 {
                    seg_problems.push(format!(
                        "{}: {} torn frame(s) inside a sealed segment",
                        path.display(),
                        scan.torn_frames
                    ));
                    report.torn_frames += scan.torn_frames;
                }
                for c in &scan.corrupt {
                    seg_problems.push(format!(
                        "{}: corrupt frame at offset {} (stored crc {:08x}, computed {:08x})",
                        path.display(),
                        c.offset,
                        c.stored_crc,
                        c.computed_crc
                    ));
                }
                report.clean_frames += scan.frames.len() as u64;
                report.corrupt_frames += scan.corrupt.len() as u64;
                let corrupt_here = scan.corrupt.len() as u64;
                if repair && corrupt_here > 0 {
                    // The rewrite quarantines corrupt frames and rebuilds
                    // the file from clean frames with a fresh index; every
                    // held-aside problem is resolved by it.
                    rewrite_sealed(dir, path, &scan)?;
                    report.repaired_segments += 1;
                    seg_problems.clear();
                }
                report.problems.append(&mut seg_problems);
                report.segments.push(SegmentReport {
                    path: path.clone(),
                    epoch_seq: seq,
                    frames: scan.frames.len() as u64,
                    corrupt_frames: corrupt_here,
                    index_ok: scan.index_ok,
                });
            }
            Err(e) => {
                report.problems.push(format!("{}: {e}", path.display()));
            }
        }
    }

    let open_path = dir.join(OPEN_SEGMENT);
    if fs::metadata(&open_path).is_ok() {
        report.open_segment = true;
        // Torn tails here are expected (the crash point) — count them but
        // do not flag a problem; an unreadable header is worth a note.
        match read_segment(&open_path, false) {
            Ok(scan) => report.torn_frames += scan.torn_frames,
            Err(_) => report.torn_frames += 1,
        }
    }

    match read_wal(&dir.join(WAL_FILE)) {
        Ok(Some(scan)) => {
            report.wal_records = scan.records.len() as u64;
            report.torn_frames += scan.torn_frames;
        }
        Ok(None) => {}
        Err(e) => report
            .problems
            .push(format!("{}: {e}", dir.join(WAL_FILE).display())),
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::ColdTier;
    use crate::{Frame, SyncPolicy};
    use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
    use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
    use megastream_primitives::sampling::SampledSeries;
    use megastream_telemetry::Telemetry;

    fn summary() -> StoredSummary {
        StoredSummary::new(
            "region-0",
            TimeWindow::starting_at(Timestamp::from_secs(0), TimeDelta::from_secs(60)),
            Summary::Series(SampledSeries::default()),
            Lineage::from_source("router-0-0"),
        )
    }

    #[test]
    fn clean_store_verifies_clean() {
        let d = std::env::temp_dir().join(format!("mfsck-clean-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        let mut tier = ColdTier::create(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        tier.begin_epoch(Timestamp::from_secs(60)).unwrap();
        tier.append_frame(&Frame::Exported {
            region: 0,
            summary: summary(),
        })
        .unwrap();
        tier.seal_epoch().unwrap();
        tier.wal_reset().unwrap();
        drop(tier);
        let report = fsck(&d, false).unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
        assert_eq!(report.clean_frames, 1);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn corrupt_store_flags_then_repairs() {
        use crate::tier::{FaultMode, FaultSpec};
        let d = std::env::temp_dir().join(format!("mfsck-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        let mut tier = ColdTier::create(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        tier.begin_epoch(Timestamp::from_secs(60)).unwrap();
        tier.set_fault(Some(FaultSpec {
            at_op: tier.ops() + 1,
            mode: FaultMode::BitFlip,
        }));
        tier.append_frame(&Frame::Exported {
            region: 0,
            summary: summary(),
        })
        .unwrap();
        tier.append_frame(&Frame::Exported {
            region: 1,
            summary: summary(),
        })
        .unwrap();
        tier.seal_epoch().unwrap();
        tier.wal_reset().unwrap();
        drop(tier);

        let report = fsck(&d, false).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.corrupt_frames, 1);

        let repaired = fsck(&d, true).unwrap();
        assert_eq!(repaired.repaired_segments, 1);

        let clean = fsck(&d, false).unwrap();
        assert!(clean.is_clean(), "problems: {:?}", clean.problems);
        assert_eq!(clean.clean_frames, 1);
        fs::remove_dir_all(&d).unwrap();
    }
}
