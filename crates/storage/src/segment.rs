//! Epoch segment files: append-only, checksummed, sealed by atomic rename.
//!
//! One segment per rotation. The in-progress file is always
//! `segment.open`; sealing appends the frame index, optionally fsyncs, and
//! renames to `epoch-<seq>.seg` (zero-padded so lexical order is epoch
//! order), then fsyncs the directory. A crash therefore leaves either a
//! sealed segment (fully trustworthy modulo later bit rot, which the
//! per-frame CRCs catch) or a `segment.open` whose epoch never committed
//! and is discarded wholesale on recovery.
//!
//! ## File layout
//!
//! ```text
//! header   "MSEG" | version u32 | epoch_seq u64 | at u64 | crc u32
//! frame*   len u32 | crc u32 | payload (kind u8 + body)
//! index    count u32 | (offset u64, len u32, crc u32, kind u8)*   (seal only)
//! trailer  index crc u32 | index_off u64 | "MIDX"
//! ```
//!
//! The index is a sorted run over the frames (offsets ascend by
//! construction), so a verifier can jump straight to any frame; readers
//! fall back to a linear scan when the trailer is missing or damaged, so a
//! valid index is an optimization, never a correctness requirement.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use megastream_flow::time::Timestamp;

use crate::codec::{dec_stored_summary, enc_stored_summary, Reader};
use crate::crc::crc32;
use crate::{EpochMeta, Frame, RegionStatsSnapshot, SegmentError};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"MSEG";
/// Magic bytes closing every sealed segment.
pub const INDEX_MAGIC: [u8; 4] = *b"MIDX";
/// On-disk format version.
pub const FORMAT_VERSION: u32 = 1;
/// Largest frame the reader will accept (64 MiB): no real summary comes
/// close, so a larger length prefix is garbage and scanning stops.
pub const MAX_FRAME_BYTES: u64 = 1 << 26;

/// Size of the fixed header.
pub const HEADER_BYTES: u64 = 28;
/// Name of the in-progress segment file.
pub const OPEN_SEGMENT: &str = "segment.open";

/// The filename of the sealed segment for `epoch_seq`.
pub fn sealed_name(epoch_seq: u64) -> String {
    format!("epoch-{epoch_seq:020}.seg")
}

/// Parses `epoch-<seq>.seg` back to the sequence number.
pub fn parse_sealed_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("epoch-")?.strip_suffix(".seg")?;
    rest.parse().ok()
}

pub(crate) fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> SegmentError {
    SegmentError::Io {
        op,
        path: path.to_path_buf(),
        kind: e.kind(),
    }
}

/// Fsyncs a directory so a just-renamed file inside it is durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), SegmentError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("sync dir", dir, e))
}

// ---------------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------------

const KIND_FLUSHED: u8 = 0;
const KIND_EXPORTED: u8 = 1;
const KIND_PARKED: u8 = 2;
const KIND_META: u8 = 3;

/// Encodes a frame to its payload bytes (kind tag + body).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match frame {
        Frame::Flushed { region, summary } => {
            out.push(KIND_FLUSHED);
            out.extend_from_slice(&region.to_le_bytes());
            enc_stored_summary(&mut out, summary);
        }
        Frame::Exported { region, summary } => {
            out.push(KIND_EXPORTED);
            out.extend_from_slice(&region.to_le_bytes());
            enc_stored_summary(&mut out, summary);
        }
        Frame::Parked { region, summary } => {
            out.push(KIND_PARKED);
            out.extend_from_slice(&region.to_le_bytes());
            enc_stored_summary(&mut out, summary);
        }
        Frame::Meta(meta) => {
            out.push(KIND_META);
            enc_meta(&mut out, meta);
        }
    }
    out
}

/// Decodes a frame payload produced by [`encode_frame`].
pub fn decode_frame(payload: &[u8]) -> Result<Frame, SegmentError> {
    let mut r = Reader::new(payload);
    let kind = r.u8("frame kind")?;
    let frame = match kind {
        KIND_FLUSHED | KIND_EXPORTED | KIND_PARKED => {
            let region = r.u32("frame region")?;
            let summary = dec_stored_summary(&mut r)?;
            match kind {
                KIND_FLUSHED => Frame::Flushed { region, summary },
                KIND_EXPORTED => Frame::Exported { region, summary },
                _ => Frame::Parked { region, summary },
            }
        }
        KIND_META => Frame::Meta(dec_meta(&mut r)?),
        _ => {
            return Err(SegmentError::Malformed {
                what: "unknown frame kind",
            })
        }
    };
    r.finish("frame trailing bytes")?;
    Ok(frame)
}

/// The frame's kind tag (for index entries).
pub fn frame_kind(frame: &Frame) -> u8 {
    match frame {
        Frame::Flushed { .. } => KIND_FLUSHED,
        Frame::Exported { .. } => KIND_EXPORTED,
        Frame::Parked { .. } => KIND_PARKED,
        Frame::Meta(_) => KIND_META,
    }
}

fn enc_meta(out: &mut Vec<u8>, meta: &EpochMeta) {
    out.extend_from_slice(&meta.now.as_micros().to_le_bytes());
    out.extend_from_slice(&meta.rr.to_le_bytes());
    for v in [
        meta.export_retries,
        meta.spilled,
        meta.flushed,
        meta.dropped,
        meta.dropped_bytes,
        meta.raw_deferrals,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(meta.raw_pending.len() as u32).to_le_bytes());
    for row in &meta.raw_pending {
        out.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in row {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out.extend_from_slice(&(meta.region_stats.len() as u32).to_le_bytes());
    for s in &meta.region_stats {
        out.extend_from_slice(&s.flows.to_le_bytes());
        out.extend_from_slice(&s.scalars.to_le_bytes());
        out.extend_from_slice(&s.raw_bytes.to_le_bytes());
    }
}

fn dec_meta(r: &mut Reader<'_>) -> Result<EpochMeta, SegmentError> {
    let now = Timestamp::from_micros(r.u64("meta.now")?);
    let rr = r.u64("meta.rr")?;
    let export_retries = r.u64("meta.counter")?;
    let spilled = r.u64("meta.counter")?;
    let flushed = r.u64("meta.counter")?;
    let dropped = r.u64("meta.counter")?;
    let dropped_bytes = r.u64("meta.counter")?;
    let raw_deferrals = r.u64("meta.counter")?;
    let regions = r.count(4, "meta.raw_pending")?;
    let mut raw_pending = Vec::with_capacity(regions);
    for _ in 0..regions {
        let routers = r.count(8, "meta.raw_pending row")?;
        let mut row = Vec::with_capacity(routers);
        for _ in 0..routers {
            row.push(r.u64("meta.raw_pending value")?);
        }
        raw_pending.push(row);
    }
    let n = r.count(24, "meta.region_stats")?;
    let mut region_stats = Vec::with_capacity(n);
    for _ in 0..n {
        region_stats.push(RegionStatsSnapshot {
            flows: r.u64("meta.stats.flows")?,
            scalars: r.u64("meta.stats.scalars")?,
            raw_bytes: r.u64("meta.stats.raw_bytes")?,
        });
    }
    Ok(EpochMeta {
        now,
        rr,
        export_retries,
        spilled,
        flushed,
        dropped,
        dropped_bytes,
        raw_deferrals,
        raw_pending,
        region_stats,
    })
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// One index entry: where a frame lives and what its checksum should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Byte offset of the frame's length prefix.
    pub offset: u64,
    /// Payload length.
    pub len: u32,
    /// Payload CRC-32 as stored in the frame header.
    pub crc: u32,
    /// Frame kind tag.
    pub kind: u8,
}

const INDEX_ENTRY_BYTES: usize = 17;

/// Appends frames to `segment.open` and seals it into `epoch-<seq>.seg`.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    dir: PathBuf,
    path: PathBuf,
    epoch_seq: u64,
    offset: u64,
    entries: Vec<FrameInfo>,
}

impl SegmentWriter {
    /// Creates (truncating) `segment.open` under `dir` and writes the
    /// header for `epoch_seq`.
    pub fn create(dir: &Path, epoch_seq: u64, at: Timestamp) -> Result<Self, SegmentError> {
        Self::create_named(dir, OPEN_SEGMENT, epoch_seq, at)
    }

    /// Like [`SegmentWriter::create`] but with an explicit working filename
    /// — the repair path rebuilds a sealed segment via a `.tmp` file so it
    /// never clobbers an in-progress `segment.open`.
    pub fn create_named(
        dir: &Path,
        name: &str,
        epoch_seq: u64,
        at: Timestamp,
    ) -> Result<Self, SegmentError> {
        let path = dir.join(name);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create segment", &path, e))?;
        let mut header = Vec::with_capacity(HEADER_BYTES as usize);
        header.extend_from_slice(&SEGMENT_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&epoch_seq.to_le_bytes());
        header.extend_from_slice(&at.as_micros().to_le_bytes());
        let crc = crc32(header.get(4..24).unwrap_or_default());
        header.extend_from_slice(&crc.to_le_bytes());
        let mut w = SegmentWriter {
            file,
            dir: dir.to_path_buf(),
            path,
            epoch_seq,
            offset: 0,
            entries: Vec::new(),
        };
        w.write_raw(&header)?;
        Ok(w)
    }

    /// The epoch this segment records.
    pub fn epoch_seq(&self) -> u64 {
        self.epoch_seq
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.offset
    }

    /// Frames appended so far.
    pub fn frame_count(&self) -> usize {
        self.entries.len()
    }

    /// Writes raw bytes with no framing or index entry. Exposed so the
    /// fault injector can produce genuinely torn tails; normal callers use
    /// [`SegmentWriter::append_frame`].
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<(), SegmentError> {
        self.file
            .write_all(bytes)
            .map_err(|e| io_err("write segment", &self.path, e))?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Appends one frame chunk with the caller-supplied payload bytes and
    /// *stored* CRC. In normal operation `crc == crc32(payload)`; the
    /// bit-flip fault injector passes the clean CRC with corrupted bytes so
    /// the mismatch is persisted exactly as real bit rot would look.
    pub fn append_frame_parts(
        &mut self,
        kind: u8,
        payload: &[u8],
        crc: u32,
    ) -> Result<u64, SegmentError> {
        let offset = self.offset;
        let len = u32::try_from(payload.len()).map_err(|_| SegmentError::FrameTooLarge {
            len: payload.len() as u64,
            max: MAX_FRAME_BYTES,
        })?;
        if u64::from(len) > MAX_FRAME_BYTES {
            return Err(SegmentError::FrameTooLarge {
                len: u64::from(len),
                max: MAX_FRAME_BYTES,
            });
        }
        let mut chunk = Vec::with_capacity(8 + payload.len());
        chunk.extend_from_slice(&len.to_le_bytes());
        chunk.extend_from_slice(&crc.to_le_bytes());
        chunk.extend_from_slice(payload);
        self.write_raw(&chunk)?;
        self.entries.push(FrameInfo {
            offset,
            len,
            crc,
            kind,
        });
        Ok(chunk.len() as u64)
    }

    /// Encodes and appends one frame; returns bytes written.
    pub fn append_frame(&mut self, frame: &Frame) -> Result<u64, SegmentError> {
        let payload = encode_frame(frame);
        let crc = crc32(&payload);
        self.append_frame_parts(frame_kind(frame), &payload, crc)
    }

    /// Fsyncs the data written so far (write-through sync policy).
    pub fn sync(&self) -> Result<(), SegmentError> {
        self.file
            .sync_all()
            .map_err(|e| io_err("sync segment", &self.path, e))
    }

    /// Seals the segment: appends the frame index and trailer, optionally
    /// fsyncs the file, atomically renames it to its sealed name, and
    /// fsyncs the directory. Returns the sealed path.
    pub fn seal(mut self, fsync: bool) -> Result<PathBuf, SegmentError> {
        let index_off = self.offset;
        let mut block = Vec::with_capacity(4 + self.entries.len() * INDEX_ENTRY_BYTES);
        block.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            block.extend_from_slice(&e.offset.to_le_bytes());
            block.extend_from_slice(&e.len.to_le_bytes());
            block.extend_from_slice(&e.crc.to_le_bytes());
            block.push(e.kind);
        }
        let crc = crc32(&block);
        let mut tail = block;
        tail.extend_from_slice(&crc.to_le_bytes());
        tail.extend_from_slice(&index_off.to_le_bytes());
        tail.extend_from_slice(&INDEX_MAGIC);
        self.write_raw(&tail)?;
        if fsync {
            self.sync()?;
        }
        let sealed = self.dir.join(sealed_name(self.epoch_seq));
        fs::rename(&self.path, &sealed).map_err(|e| io_err("seal rename", &sealed, e))?;
        sync_dir(&self.dir)?;
        Ok(sealed)
    }
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// A frame whose stored and computed checksums disagree (or whose payload
/// no longer decodes): quarantined, never replayed.
#[derive(Debug, Clone)]
pub struct CorruptFrame {
    /// Byte offset of the frame's length prefix.
    pub offset: u64,
    /// Stored CRC.
    pub stored_crc: u32,
    /// CRC recomputed over the payload bytes on disk.
    pub computed_crc: u32,
    /// The raw payload bytes (saved to the quarantine sidecar).
    pub bytes: Vec<u8>,
}

/// Everything a scan of one segment file learned.
#[derive(Debug)]
pub struct SegmentScan {
    /// Epoch sequence from the header.
    pub epoch_seq: u64,
    /// Rotation timestamp from the header.
    pub at: Timestamp,
    /// Frames that decoded cleanly, in file order.
    pub frames: Vec<Frame>,
    /// Index info for each clean frame, in file order.
    pub frame_infos: Vec<FrameInfo>,
    /// Frames failing their checksum or decode (sealed segments only).
    pub corrupt: Vec<CorruptFrame>,
    /// Torn (partially written) frames truncated from an unsealed tail.
    pub torn_frames: u64,
    /// Bytes discarded as torn tail.
    pub truncated_bytes: u64,
    /// Whether a valid trailer index was present and matched the scan.
    pub index_ok: bool,
}

/// Reads and verifies one segment file. `sealed` selects the trust model:
/// a sealed segment treats checksum failures as *corruption* (bit rot in
/// committed data — quarantine), an unsealed one treats the first failure
/// as a *torn tail* (the crash point — truncate and stop).
pub fn read_segment(path: &Path, sealed: bool) -> Result<SegmentScan, SegmentError> {
    let data = fs::read(path).map_err(|e| io_err("read segment", path, e))?;
    scan_segment_bytes(path, &data, sealed)
}

fn scan_segment_bytes(path: &Path, data: &[u8], sealed: bool) -> Result<SegmentScan, SegmentError> {
    // Header.
    let header = data
        .get(..HEADER_BYTES as usize)
        .ok_or(SegmentError::Truncated {
            what: "segment header",
            needed: HEADER_BYTES,
            available: data.len() as u64,
        })?;
    let magic = header.get(..4).unwrap_or_default();
    if magic != SEGMENT_MAGIC {
        let mut found = [0u8; 4];
        for (dst, src) in found.iter_mut().zip(magic.iter()) {
            *dst = *src;
        }
        return Err(SegmentError::BadMagic {
            path: path.to_path_buf(),
            found,
        });
    }
    let stored_crc = read_u32(header, 24);
    let computed = crc32(header.get(4..24).unwrap_or_default());
    if stored_crc != computed {
        return Err(SegmentError::Checksum {
            offset: 24,
            stored: stored_crc,
            computed,
        });
    }
    let version = read_u32(header, 4);
    if version != FORMAT_VERSION {
        return Err(SegmentError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let epoch_seq = read_u64(header, 8);
    let at = Timestamp::from_micros(read_u64(header, 16));

    // Locate the end of the frame region: the trailer index for sealed
    // segments, end-of-file otherwise. A bad index downgrades to a linear
    // scan to end-of-data.
    let mut index_ok = false;
    let mut frames_end = data.len();
    if sealed {
        if let Some((index_off, entries)) = parse_index(data) {
            index_ok = true;
            frames_end = index_off;
            let _ = entries; // verified below against the scan
        }
    }

    let mut scan = SegmentScan {
        epoch_seq,
        at,
        frames: Vec::new(),
        frame_infos: Vec::new(),
        corrupt: Vec::new(),
        torn_frames: 0,
        truncated_bytes: 0,
        index_ok,
    };

    let mut pos = HEADER_BYTES as usize;
    while pos < frames_end {
        let remaining = frames_end - pos;
        // A frame needs at least its 8-byte chunk header.
        let (len, crc) = match data.get(pos..pos + 8) {
            Some(h) if remaining >= 8 => (read_u32(h, 0) as usize, read_u32(h, 4)),
            _ => {
                scan.torn_frames += 1;
                scan.truncated_bytes += remaining as u64;
                break;
            }
        };
        if len as u64 > MAX_FRAME_BYTES || pos + 8 + len > frames_end {
            // Length prefix is garbage or runs past the data: no resync
            // possible — everything from here is torn/corrupt.
            scan.torn_frames += 1;
            scan.truncated_bytes += remaining as u64;
            break;
        }
        let payload = data.get(pos + 8..pos + 8 + len).unwrap_or_default();
        let computed = crc32(payload);
        if computed != crc {
            if sealed {
                scan.corrupt.push(CorruptFrame {
                    offset: pos as u64,
                    stored_crc: crc,
                    computed_crc: computed,
                    bytes: payload.to_vec(),
                });
                pos += 8 + len;
                continue;
            }
            scan.torn_frames += 1;
            scan.truncated_bytes += remaining as u64;
            break;
        }
        match decode_frame(payload) {
            Ok(frame) => {
                scan.frame_infos.push(FrameInfo {
                    offset: pos as u64,
                    len: len as u32,
                    crc,
                    kind: frame_kind(&frame),
                });
                scan.frames.push(frame);
            }
            Err(_) if sealed => {
                scan.corrupt.push(CorruptFrame {
                    offset: pos as u64,
                    stored_crc: crc,
                    computed_crc: computed,
                    bytes: payload.to_vec(),
                });
            }
            Err(_) => {
                scan.torn_frames += 1;
                scan.truncated_bytes += remaining as u64;
                break;
            }
        }
        pos += 8 + len;
    }

    // Cross-check the index against the scan. When frames were quarantined
    // the index still describes the file faithfully (it lists the damaged
    // frame too); only a mismatch on a clean file demotes it.
    if index_ok && scan.corrupt.is_empty() {
        if let Some((_, entries)) = parse_index(data) {
            scan.index_ok = entries == scan.frame_infos;
        }
    }
    Ok(scan)
}

/// Parses the trailer index of a sealed segment, returning the index
/// offset and entries, or `None` if missing/damaged.
fn parse_index(data: &[u8]) -> Option<(usize, Vec<FrameInfo>)> {
    if data.len() < 16 + HEADER_BYTES as usize {
        return None;
    }
    let tail_start = data.len() - 12;
    if data.get(data.len() - 4..) != Some(&INDEX_MAGIC[..]) {
        return None;
    }
    let index_off = read_u64(data.get(tail_start..tail_start + 8)?, 0) as usize;
    if index_off < HEADER_BYTES as usize || index_off + 16 > data.len() {
        return None;
    }
    let block = data.get(index_off..data.len() - 16)?;
    let stored_crc = read_u32(data.get(data.len() - 16..data.len() - 12)?, 0);
    if crc32(block) != stored_crc {
        return None;
    }
    let count = read_u32(block.get(..4)?, 0) as usize;
    if count.checked_mul(INDEX_ENTRY_BYTES)? != block.len().checked_sub(4)? {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    let mut pos = 4;
    for _ in 0..count {
        let e = block.get(pos..pos + INDEX_ENTRY_BYTES)?;
        entries.push(FrameInfo {
            offset: read_u64(e, 0),
            len: read_u32(e, 8),
            crc: read_u32(e, 12),
            kind: e.get(16).copied().unwrap_or(0),
        });
        pos += INDEX_ENTRY_BYTES;
    }
    Some((index_off, entries))
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    for (dst, src) in a.iter_mut().zip(buf.iter().skip(at)) {
        *dst = *src;
    }
    u32::from_le_bytes(a)
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    for (dst, src) in a.iter_mut().zip(buf.iter().skip(at)) {
        *dst = *src;
    }
    u64::from_le_bytes(a)
}

/// Rewrites a sealed segment without its corrupt frames (tmp file + atomic
/// rename, index recomputed), quarantining the bad payload bytes under
/// `quarantine/`. Returns the number of frames dropped.
pub fn rewrite_sealed(dir: &Path, path: &Path, scan: &SegmentScan) -> Result<u64, SegmentError> {
    if scan.corrupt.is_empty() {
        return Ok(0);
    }
    let qdir = dir.join("quarantine");
    fs::create_dir_all(&qdir).map_err(|e| io_err("create quarantine", &qdir, e))?;
    for (i, c) in scan.corrupt.iter().enumerate() {
        let qpath = qdir.join(format!(
            "epoch-{:020}-frame-{:06}-off-{}.bad",
            scan.epoch_seq, i, c.offset
        ));
        fs::write(&qpath, &c.bytes).map_err(|e| io_err("write quarantine", &qpath, e))?;
    }
    // Rebuild into a tmp file and atomically rename over the damaged
    // segment; the writer's own seal path does exactly that.
    let tmp_name = format!("epoch-{:020}.seg.tmp", scan.epoch_seq);
    let mut w = SegmentWriter::create_named(dir, &tmp_name, scan.epoch_seq, scan.at)?;
    for frame in &scan.frames {
        w.append_frame(frame)?;
    }
    let sealed = w.seal(true)?;
    debug_assert_eq!(&sealed, path);
    Ok(scan.corrupt.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> Frame {
        Frame::Meta(EpochMeta {
            now: Timestamp::from_secs(60),
            rr: 7,
            export_retries: 1,
            spilled: 2,
            flushed: 3,
            dropped: 4,
            dropped_bytes: 5,
            raw_deferrals: 6,
            raw_pending: vec![vec![1, 2], vec![3, 4]],
            region_stats: vec![RegionStatsSnapshot {
                flows: 9,
                scalars: 0,
                raw_bytes: 80,
            }],
        })
    }

    #[test]
    fn meta_frame_roundtrip() {
        let frame = meta();
        let payload = encode_frame(&frame);
        let back = decode_frame(&payload).unwrap();
        match (frame, back) {
            (Frame::Meta(a), Frame::Meta(b)) => {
                assert_eq!(a.now, b.now);
                assert_eq!(a.rr, b.rr);
                assert_eq!(a.raw_pending, b.raw_pending);
                assert_eq!(a.region_stats.len(), b.region_stats.len());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn seal_and_rescan() {
        let dir = std::env::temp_dir().join(format!("mseg-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::create(&dir, 1, Timestamp::from_secs(60)).unwrap();
        w.append_frame(&meta()).unwrap();
        let sealed = w.seal(false).unwrap();
        let scan = read_segment(&sealed, true).unwrap();
        assert_eq!(scan.epoch_seq, 1);
        assert_eq!(scan.frames.len(), 1);
        assert!(scan.index_ok);
        assert!(scan.corrupt.is_empty());
        assert_eq!(scan.torn_frames, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates() {
        let dir = std::env::temp_dir().join(format!("mseg-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::create(&dir, 2, Timestamp::from_secs(60)).unwrap();
        w.append_frame(&meta()).unwrap();
        let payload = encode_frame(&meta());
        let mut chunk = Vec::new();
        chunk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        chunk.extend_from_slice(&crc32(&payload).to_le_bytes());
        chunk.extend_from_slice(&payload);
        w.write_raw(&chunk[..chunk.len() / 2]).unwrap();
        let scan = read_segment(&dir.join(OPEN_SEGMENT), false).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.torn_frames, 1);
        assert!(scan.truncated_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
