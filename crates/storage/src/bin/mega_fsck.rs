//! `mega-fsck` — offline verifier for a cold-tier directory.
//!
//! ```text
//! mega-fsck [--repair] <dir>
//! ```
//!
//! Exit codes: `0` the store is clean, `1` problems were found, `2` usage
//! or I/O error. With `--repair`, corrupt frames are quarantined and the
//! damaged segments rewritten; the exit code then reflects the state
//! *after* repair.

use std::path::PathBuf;
use std::process::ExitCode;

use megastream_storage::fsck::fsck;

fn main() -> ExitCode {
    let mut repair = false;
    let mut dir: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--repair" => repair = true,
            "--help" | "-h" => {
                println!("usage: mega-fsck [--repair] <dir>");
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("mega-fsck: unexpected argument `{other}`");
                eprintln!("usage: mega-fsck [--repair] <dir>");
                return ExitCode::from(2);
            }
        }
    }
    let dir = match dir {
        Some(d) => d,
        None => {
            eprintln!("usage: mega-fsck [--repair] <dir>");
            return ExitCode::from(2);
        }
    };

    let report = match fsck(&dir, repair) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mega-fsck: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };

    for seg in &report.segments {
        println!(
            "segment epoch {:>4}: {} clean frame(s), {} corrupt, index {}",
            seg.epoch_seq,
            seg.frames,
            seg.corrupt_frames,
            if seg.index_ok { "ok" } else { "BAD" }
        );
    }
    if report.open_segment {
        println!("open segment present (uncommitted epoch; recovery will discard it)");
    }
    println!(
        "wal: {} record(s); torn frames in tails: {}",
        report.wal_records, report.torn_frames
    );
    if report.repaired_segments > 0 {
        println!(
            "repaired {} segment(s), corrupt frames quarantined",
            report.repaired_segments
        );
    }

    if report.problems.is_empty() {
        println!(
            "clean: {} sealed segment(s), {} frame(s)",
            report.segments.len(),
            report.clean_frames
        );
        ExitCode::SUCCESS
    } else {
        for p in &report.problems {
            eprintln!("problem: {p}");
        }
        eprintln!("{} problem(s) found", report.problems.len());
        ExitCode::FAILURE
    }
}
