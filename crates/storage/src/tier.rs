//! The [`ColdTier`]: one directory holding sealed epoch segments, the
//! in-progress `segment.open`, and the ingest WAL — plus recovery and a
//! deterministic fault injector.
//!
//! ## Write path (one rotation)
//!
//! ```text
//! begin_epoch(at)        create segment.open, header for seq N
//! append_frame(..)*      streamed DURING the rotation, not after it —
//!                        so a kill mid-rotation leaves a torn tail
//! seal_epoch()           index + [fsync] + rename epoch-N.seg + dir fsync
//! wal_reset()            fresh ingest.wal with seq N+1 (tmp + rename)
//! ```
//!
//! ## Failure discipline
//!
//! Every durable op increments an op counter; the fault injector trips at a
//! chosen ordinal. A failed op marks the tier **dead**: all later ops
//! return [`SegmentError::TierDead`] without touching the disk, the live
//! pipeline finishes the rotation in memory, and the harness (or operator)
//! restarts from disk via [`ColdTier::open`]. Nothing in this module
//! panics.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use megastream_flow::time::Timestamp;
use megastream_telemetry::Telemetry;

use crate::crc::crc32;
use crate::segment::{
    self, encode_frame, frame_kind, parse_sealed_name, read_segment, rewrite_sealed, SegmentWriter,
    OPEN_SEGMENT,
};
use crate::wal::{self, read_wal, WalRecord, WalWriter, WAL_FILE};
use crate::{Frame, SegmentError, SyncPolicy};

/// Which flavour of failure the injector produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The op fails before writing anything; the tier dies cleanly.
    CleanStop,
    /// The op writes a partial chunk (a genuinely torn tail) and the tier
    /// dies.
    TornWrite,
    /// A frame append writes its full chunk with one payload bit flipped
    /// but the *clean* checksum — persisted bit rot. The tier stays alive
    /// (the corruption is only discovered by recovery or `mega-fsck`).
    BitFlip,
}

/// A deterministic, seeded crash point: trip at the `at_op`-th durable op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// 1-based ordinal of the durable op to fail.
    pub at_op: u64,
    /// How to fail it.
    pub mode: FaultMode,
}

/// One sealed epoch as read back during recovery.
#[derive(Debug)]
pub struct EpochBundle {
    /// Epoch sequence number.
    pub epoch_seq: u64,
    /// Rotation timestamp from the segment header.
    pub at: Timestamp,
    /// Clean frames in execution order.
    pub frames: Vec<Frame>,
}

/// Everything [`ColdTier::open`] learned while recovering a directory.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Sealed epochs in sequence order, corrupt frames already removed.
    pub bundles: Vec<EpochBundle>,
    /// WAL records of the current epoch, in append order.
    pub wal_records: Vec<WalRecord>,
    /// Torn frames truncated (unsealed tails, WAL tails).
    pub torn_frames: u64,
    /// Checksum-failed frames quarantined out of sealed segments.
    pub corrupt_frames: u64,
    /// Bytes discarded as torn tails.
    pub truncated_bytes: u64,
    /// Clean frames recovered from sealed segments.
    pub recovered_frames: u64,
    /// Whether an uncommitted `segment.open` was discarded.
    pub discarded_open_segment: bool,
    /// Whether a stale WAL (crash between seal and reset) was dropped.
    pub stale_wal_dropped: bool,
    /// Sealed segments rewritten to excise corrupt frames.
    pub repaired_segments: u64,
}

/// Handle to one cold-tier directory.
#[derive(Debug)]
pub struct ColdTier {
    dir: PathBuf,
    sync: SyncPolicy,
    tel: Telemetry,
    /// Sequence the *next* `begin_epoch` will use.
    next_seq: u64,
    writer: Option<SegmentWriter>,
    wal: Option<WalWriter>,
    /// Durable-op ordinal (monotonic across the tier's lifetime).
    op: u64,
    fault: Option<FaultSpec>,
    dead: bool,
    first_error: Option<SegmentError>,
    disk_bytes: u64,
}

impl ColdTier {
    /// Creates a fresh cold tier at `dir` (directory created if missing;
    /// pre-existing tier files are an error — use [`ColdTier::open`]).
    pub fn create(dir: &Path, sync: SyncPolicy, tel: Telemetry) -> Result<Self, SegmentError> {
        fs::create_dir_all(dir).map_err(|e| segment::io_err("create tier dir", dir, e))?;
        if fs::metadata(dir.join(WAL_FILE)).is_ok() {
            return Err(SegmentError::Malformed {
                what: "tier directory already initialized",
            });
        }
        let wal = WalWriter::create(dir, 1)?;
        let tier = ColdTier {
            dir: dir.to_path_buf(),
            sync,
            tel,
            next_seq: 1,
            writer: None,
            wal: Some(wal),
            op: 0,
            fault: None,
            dead: false,
            first_error: None,
            disk_bytes: wal::WAL_HEADER_BYTES,
        };
        tier.refresh_gauges();
        Ok(tier)
    }

    /// Opens an existing tier directory, running full recovery: sealed
    /// segments are verified (corrupt frames quarantined and the segment
    /// rewritten), an uncommitted `segment.open` is discarded, the WAL is
    /// scanned with its torn tail truncated, and a stale WAL is dropped.
    /// Returns the tier (with a fresh WAL) and everything replay needs.
    pub fn open(
        dir: &Path,
        sync: SyncPolicy,
        tel: Telemetry,
    ) -> Result<(Self, RecoveryReport), SegmentError> {
        let mut report = RecoveryReport::default();

        // Sealed segments, in sequence order.
        let mut sealed: BTreeMap<u64, PathBuf> = BTreeMap::new();
        let entries = fs::read_dir(dir).map_err(|e| segment::io_err("read tier dir", dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| segment::io_err("read tier dir", dir, e))?;
            let name = entry.file_name();
            if let Some(seq) = name.to_str().and_then(parse_sealed_name) {
                sealed.insert(seq, entry.path());
            }
        }
        for (expected, (&seq, path)) in (1u64..).zip(sealed.iter()) {
            if seq != expected {
                return Err(SegmentError::MissingEpoch {
                    expected,
                    found: seq,
                });
            }
            let scan = read_segment(path, true)?;
            if scan.epoch_seq != seq {
                return Err(SegmentError::Malformed {
                    what: "segment name/header seq mismatch",
                });
            }
            report.corrupt_frames += scan.corrupt.len() as u64;
            report.torn_frames += scan.torn_frames;
            report.truncated_bytes += scan.truncated_bytes;
            report.recovered_frames += scan.frames.len() as u64;
            if !scan.corrupt.is_empty() {
                rewrite_sealed(dir, path, &scan)?;
                report.repaired_segments += 1;
            }
            report.bundles.push(EpochBundle {
                epoch_seq: seq,
                at: scan.at,
                frames: scan.frames,
            });
        }
        let max_sealed = report.bundles.last().map(|b| b.epoch_seq).unwrap_or(0);

        // An uncommitted open segment: its epoch never sealed, so its
        // content is covered by the WAL — discard, but account the damage.
        let open_path = dir.join(OPEN_SEGMENT);
        if fs::metadata(&open_path).is_ok() {
            report.discarded_open_segment = true;
            match read_segment(&open_path, false) {
                Ok(scan) => {
                    report.torn_frames += scan.torn_frames;
                    report.truncated_bytes += scan.truncated_bytes;
                }
                Err(_) => {
                    // Even the header was unreadable: the whole file is a
                    // torn tail.
                    report.torn_frames += 1;
                    report.truncated_bytes +=
                        fs::metadata(&open_path).map(|m| m.len()).unwrap_or(0);
                }
            }
            fs::remove_file(&open_path)
                .map_err(|e| segment::io_err("discard open segment", &open_path, e))?;
        }

        // The WAL: stale (crash between seal and reset) drops; current
        // replays.
        if let Some(scan) = read_wal(&dir.join(WAL_FILE))? {
            report.torn_frames += scan.torn_frames;
            report.truncated_bytes += scan.truncated_bytes;
            if scan.epoch_seq <= max_sealed {
                report.stale_wal_dropped = true;
            } else {
                report.wal_records = scan.records;
            }
        }

        // Fresh WAL for the resumed epoch.
        let next_seq = max_sealed + 1;
        let wal = WalWriter::create(dir, next_seq)?;

        let mut tier = ColdTier {
            dir: dir.to_path_buf(),
            sync,
            tel,
            next_seq,
            writer: None,
            wal: Some(wal),
            op: 0,
            fault: None,
            dead: false,
            first_error: None,
            disk_bytes: 0,
        };
        tier.disk_bytes = tier.measure_disk();
        tier.account_recovery(&report);
        tier.refresh_gauges();
        Ok((tier, report))
    }

    fn account_recovery(&self, report: &RecoveryReport) {
        self.tel
            .counter("storage.recovery.torn_frames")
            .add(report.torn_frames);
        self.tel
            .counter("storage.recovery.corrupt_frames")
            .add(report.corrupt_frames);
        self.tel
            .counter("storage.recovery.recovered_frames")
            .add(report.recovered_frames);
        self.tel
            .counter("storage.recovery.truncated_bytes")
            .add(report.truncated_bytes);
    }

    fn measure_disk(&self) -> u64 {
        let mut total = 0u64;
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Ok(meta) = entry.metadata() {
                    if meta.is_file() {
                        total += meta.len();
                    }
                }
            }
        }
        total
    }

    fn refresh_gauges(&self) {
        self.tel
            .gauge("storage.segments.active_bytes")
            .set(self.disk_bytes as i64);
    }

    /// The tier's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durable ops performed so far (fault specs address this counter).
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// The sequence the next `begin_epoch` will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Arms (or disarms) the deterministic fault injector.
    pub fn set_fault(&mut self, fault: Option<FaultSpec>) {
        self.fault = fault;
    }

    /// Whether a previous durable op failed; once dead, every op returns
    /// [`SegmentError::TierDead`] and the disk is untouched.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The first error that killed the tier, if any.
    pub fn first_error(&self) -> Option<&SegmentError> {
        self.first_error.as_ref()
    }

    /// Marks the tier dead after an external caller observed `err` from one
    /// of its ops — real I/O errors propagate without killing the tier
    /// internally (the caller may want to retry), so the live pipeline
    /// declares the death and degrades to in-memory operation. Idempotent.
    pub fn mark_dead(&mut self, err: SegmentError) {
        self.dead = true;
        if self.first_error.is_none() {
            self.first_error = Some(err);
        }
    }

    fn die(&mut self, err: SegmentError) -> SegmentError {
        self.dead = true;
        if self.first_error.is_none() {
            self.first_error = Some(err.clone());
        }
        err
    }

    /// Advances the op counter and reports the armed fault mode if this op
    /// is the chosen one.
    fn tick(&mut self) -> Result<Option<FaultMode>, SegmentError> {
        if self.dead {
            return Err(SegmentError::TierDead);
        }
        self.op += 1;
        match self.fault {
            Some(f) if f.at_op == self.op => Ok(Some(f.mode)),
            _ => Ok(None),
        }
    }

    /// Starts the segment for the next epoch; frames stream in during the
    /// rotation that follows.
    pub fn begin_epoch(&mut self, at: Timestamp) -> Result<(), SegmentError> {
        let fault = self.tick()?;
        match fault {
            Some(FaultMode::CleanStop) => {
                return Err(self.die(SegmentError::InjectedFault { op: self.op }))
            }
            Some(FaultMode::TornWrite) => {
                // Header lands, then a ragged partial chunk — the torn tail
                // a kill mid-write leaves behind.
                let mut w = SegmentWriter::create(&self.dir, self.next_seq, at)?;
                w.write_raw(&[0x5a, 0x5a, 0x5a])?;
                return Err(self.die(SegmentError::InjectedFault { op: self.op }));
            }
            _ => {}
        }
        let w = SegmentWriter::create(&self.dir, self.next_seq, at)?;
        self.disk_bytes += segment::HEADER_BYTES;
        self.writer = Some(w);
        self.refresh_gauges();
        Ok(())
    }

    /// Appends one frame to the open segment.
    pub fn append_frame(&mut self, frame: &Frame) -> Result<(), SegmentError> {
        let fault = self.tick()?;
        let sync = self.sync;
        let writer = match self.writer.as_mut() {
            Some(w) => w,
            None => {
                return Err(SegmentError::Malformed {
                    what: "append without open segment",
                })
            }
        };
        let payload = encode_frame(frame);
        let crc = crc32(&payload);
        let written = match fault {
            Some(FaultMode::CleanStop) => {
                return Err(self.die(SegmentError::InjectedFault { op: self.op }))
            }
            Some(FaultMode::TornWrite) => {
                let mut chunk = Vec::with_capacity(8 + payload.len());
                chunk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                chunk.extend_from_slice(&crc.to_le_bytes());
                chunk.extend_from_slice(&payload);
                let cut = chunk.len() / 2;
                let partial = chunk.get(..cut).unwrap_or_default();
                writer.write_raw(partial)?;
                return Err(self.die(SegmentError::InjectedFault { op: self.op }));
            }
            Some(FaultMode::BitFlip) => {
                // Full write, clean CRC, one bit of payload flipped: what a
                // disk that lies looks like. The tier stays alive.
                let mut corrupted = payload.clone();
                let mid = corrupted.len() / 2;
                if let Some(b) = corrupted.get_mut(mid) {
                    *b ^= 0x01;
                }
                writer.append_frame_parts(frame_kind(frame), &corrupted, crc)?
            }
            None => writer.append_frame_parts(frame_kind(frame), &payload, crc)?,
        };
        if sync == SyncPolicy::WriteThrough {
            writer.sync()?;
            self.tel.counter("storage.segments.fsync_total").inc();
        }
        self.disk_bytes += written;
        self.tel.counter("storage.segments.frames_total").inc();
        self.tel
            .counter("storage.segments.bytes_total")
            .add(written);
        self.refresh_gauges();
        Ok(())
    }

    /// Seals the open segment: index, fsync (per policy), atomic rename,
    /// directory fsync. Advances the epoch sequence.
    pub fn seal_epoch(&mut self) -> Result<(), SegmentError> {
        let fault = self.tick()?;
        let writer = match self.writer.take() {
            Some(w) => w,
            None => {
                return Err(SegmentError::Malformed {
                    what: "seal without open segment",
                })
            }
        };
        match fault {
            Some(FaultMode::CleanStop) => {
                return Err(self.die(SegmentError::InjectedFault { op: self.op }))
            }
            Some(FaultMode::TornWrite) => {
                // A partial index write: the segment never renames, and the
                // junk tail reads as torn on recovery.
                let mut w = writer;
                w.write_raw(&[0xa5, 0xa5, 0xa5, 0xa5, 0xa5])?;
                return Err(self.die(SegmentError::InjectedFault { op: self.op }));
            }
            _ => {}
        }
        let fsync = self.sync != SyncPolicy::Off;
        let frames = writer.frame_count() as u64;
        let before = writer.bytes_written();
        writer.seal(fsync)?;
        if fsync {
            self.tel.counter("storage.segments.fsync_total").inc();
        }
        // Index + trailer bytes: measured as the growth over the data size.
        let sealed_path = self.dir.join(segment::sealed_name(self.next_seq));
        let after = fs::metadata(&sealed_path)
            .map(|m| m.len())
            .unwrap_or(before);
        self.disk_bytes += after.saturating_sub(before);
        self.tel.counter("storage.segments.sealed_total").inc();
        let _ = frames;
        self.next_seq += 1;
        self.refresh_gauges();
        Ok(())
    }

    /// Appends one ingest record to the WAL.
    pub fn wal_append(&mut self, rec: &WalRecord) -> Result<(), SegmentError> {
        let fault = self.tick()?;
        let sync = self.sync;
        let wal = match self.wal.as_mut() {
            Some(w) => w,
            None => {
                return Err(SegmentError::Malformed {
                    what: "wal append without wal",
                })
            }
        };
        match fault {
            Some(FaultMode::CleanStop) => {
                return Err(self.die(SegmentError::InjectedFault { op: self.op }))
            }
            Some(FaultMode::TornWrite) => {
                let chunk = WalWriter::chunk_for(rec);
                let cut = chunk.len() / 2;
                let partial = chunk.get(..cut).unwrap_or_default();
                wal.write_raw(partial)?;
                return Err(self.die(SegmentError::InjectedFault { op: self.op }));
            }
            _ => {}
        }
        let written = wal.append(rec)?;
        if sync == SyncPolicy::WriteThrough {
            wal.sync()?;
            self.tel.counter("storage.segments.fsync_total").inc();
        }
        self.disk_bytes += written;
        self.tel.counter("storage.wal.records_total").inc();
        self.tel.counter("storage.wal.bytes_total").add(written);
        self.refresh_gauges();
        Ok(())
    }

    /// Resets the WAL for the epoch that begins after the last seal.
    /// Called immediately after [`ColdTier::seal_epoch`]; the atomic
    /// tmp-and-rename means a crash here leaves either the old (now stale)
    /// WAL or the new empty one, both of which recovery handles.
    pub fn wal_reset(&mut self) -> Result<(), SegmentError> {
        let fault = self.tick()?;
        match fault {
            Some(FaultMode::CleanStop) | Some(FaultMode::TornWrite) => {
                // Either way the reset never happens: the stale WAL stays,
                // which is exactly the crash window this op closes.
                return Err(self.die(SegmentError::InjectedFault { op: self.op }));
            }
            _ => {}
        }
        let old_bytes = self.wal.as_ref().map(|w| w.bytes_written()).unwrap_or(0);
        let wal = WalWriter::create(&self.dir, self.next_seq)?;
        self.disk_bytes = self
            .disk_bytes
            .saturating_sub(old_bytes)
            .saturating_add(wal::WAL_HEADER_BYTES);
        self.wal = Some(wal);
        if self.sync != SyncPolicy::Off {
            self.tel.counter("storage.segments.fsync_total").inc();
        }
        self.refresh_gauges();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
    use megastream_flow::record::FlowRecord;
    use megastream_flow::time::TimeWindow;
    use megastream_primitives::sampling::SampledSeries;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mtier-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn summary(i: u64) -> StoredSummary {
        StoredSummary::new(
            format!("region-{i}"),
            TimeWindow::starting_at(
                Timestamp::from_secs(i),
                megastream_flow::time::TimeDelta::from_secs(60),
            ),
            Summary::Series(SampledSeries::default()),
            Lineage::from_source("router-0-0"),
        )
    }

    fn wal_rec(i: u64) -> WalRecord {
        WalRecord {
            rr: i,
            region: 0,
            router: 0,
            record: FlowRecord {
                ts: Timestamp::from_secs(i),
                proto: 17,
                src_ip: megastream_flow::addr::Ipv4Addr::new(1),
                dst_ip: megastream_flow::addr::Ipv4Addr::new(2),
                src_port: 1,
                dst_port: 2,
                packets: 1,
                bytes: 64,
            },
        }
    }

    #[test]
    fn write_seal_recover_cycle() {
        let d = dir("cycle");
        let mut tier = ColdTier::create(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        tier.wal_append(&wal_rec(0)).unwrap();
        tier.begin_epoch(Timestamp::from_secs(60)).unwrap();
        tier.append_frame(&Frame::Exported {
            region: 0,
            summary: summary(1),
        })
        .unwrap();
        tier.seal_epoch().unwrap();
        tier.wal_reset().unwrap();
        tier.wal_append(&wal_rec(1)).unwrap();
        drop(tier);

        let (tier, report) = ColdTier::open(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        assert_eq!(report.bundles.len(), 1);
        assert_eq!(report.bundles[0].frames.len(), 1);
        assert_eq!(report.wal_records, vec![wal_rec(1)]);
        assert_eq!(report.torn_frames, 0);
        assert_eq!(report.corrupt_frames, 0);
        assert!(!report.stale_wal_dropped);
        assert_eq!(tier.next_seq(), 2);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn torn_write_mid_rotation_truncates() {
        let d = dir("torn");
        let mut tier = ColdTier::create(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        tier.begin_epoch(Timestamp::from_secs(60)).unwrap();
        tier.append_frame(&Frame::Exported {
            region: 0,
            summary: summary(1),
        })
        .unwrap();
        tier.set_fault(Some(FaultSpec {
            at_op: tier.ops() + 1,
            mode: FaultMode::TornWrite,
        }));
        let err = tier
            .append_frame(&Frame::Exported {
                region: 1,
                summary: summary(2),
            })
            .unwrap_err();
        assert!(matches!(err, SegmentError::InjectedFault { .. }));
        assert!(tier.is_dead());
        assert!(matches!(
            tier.append_frame(&Frame::Exported {
                region: 1,
                summary: summary(2)
            }),
            Err(SegmentError::TierDead)
        ));
        drop(tier);

        let (_, report) = ColdTier::open(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        // The open segment never sealed: discarded, torn tail counted.
        assert!(report.bundles.is_empty());
        assert!(report.discarded_open_segment);
        assert_eq!(report.torn_frames, 1);
        assert!(report.truncated_bytes > 0);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn bit_flip_is_quarantined_on_recovery() {
        let d = dir("flip");
        let mut tier = ColdTier::create(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        tier.begin_epoch(Timestamp::from_secs(60)).unwrap();
        tier.set_fault(Some(FaultSpec {
            at_op: tier.ops() + 1,
            mode: FaultMode::BitFlip,
        }));
        tier.append_frame(&Frame::Exported {
            region: 0,
            summary: summary(1),
        })
        .unwrap();
        assert!(!tier.is_dead());
        tier.append_frame(&Frame::Exported {
            region: 1,
            summary: summary(2),
        })
        .unwrap();
        tier.seal_epoch().unwrap();
        tier.wal_reset().unwrap();
        drop(tier);

        let (_, report) = ColdTier::open(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        assert_eq!(report.corrupt_frames, 1);
        assert_eq!(report.repaired_segments, 1);
        assert_eq!(report.bundles[0].frames.len(), 1);
        assert!(d.join("quarantine").read_dir().unwrap().next().is_some());

        // Second open: the rewrite removed the bad frame, so now clean.
        let (_, report2) = ColdTier::open(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        assert_eq!(report2.corrupt_frames, 0);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn stale_wal_dropped_after_seal() {
        let d = dir("stale");
        let mut tier = ColdTier::create(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        tier.wal_append(&wal_rec(0)).unwrap();
        tier.begin_epoch(Timestamp::from_secs(60)).unwrap();
        tier.append_frame(&Frame::Exported {
            region: 0,
            summary: summary(1),
        })
        .unwrap();
        tier.seal_epoch().unwrap();
        // Crash before wal_reset: the WAL still carries seq 1 ≤ sealed 1.
        tier.set_fault(Some(FaultSpec {
            at_op: tier.ops() + 1,
            mode: FaultMode::CleanStop,
        }));
        assert!(tier.wal_reset().is_err());
        drop(tier);

        let (_, report) = ColdTier::open(&d, SyncPolicy::Off, Telemetry::disabled()).unwrap();
        assert!(report.stale_wal_dropped);
        assert!(report.wal_records.is_empty());
        assert_eq!(report.bundles.len(), 1);
        fs::remove_dir_all(&d).unwrap();
    }
}
