//! Corruption fuzz: arbitrary damage to any cold-tier file — truncation,
//! bit flips, garbage appended — must never panic recovery or the
//! verifier. Every failure surfaces as a typed [`SegmentError`]; every
//! successful open leaves a store that a repair pass can verify clean.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
use megastream_flow::addr::Ipv4Addr;
use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_primitives::sampling::SampledSeries;
use megastream_storage::fsck::fsck;
use megastream_storage::{
    decode_stored_summary, encode_stored_summary, ColdTier, Frame, SyncPolicy, WalRecord,
};
use megastream_telemetry::Telemetry;
use proptest::prelude::*;
use proptest::sample;

fn summary(i: u64) -> StoredSummary {
    StoredSummary::new(
        format!("region-{i}"),
        TimeWindow::starting_at(Timestamp::from_secs(i * 60), TimeDelta::from_secs(60)),
        Summary::Series(SampledSeries::default()),
        Lineage::from_source("router-0-0"),
    )
}

fn wal_rec(i: u64) -> WalRecord {
    WalRecord {
        rr: i,
        region: (i % 3) as u32,
        router: (i % 2) as u32,
        record: FlowRecord {
            ts: Timestamp::from_secs(i),
            proto: 6,
            src_ip: Ipv4Addr::new(0x0a00_0000 | i as u32),
            dst_ip: Ipv4Addr::new(0x0101_0101),
            src_port: 5000,
            dst_port: 443,
            packets: i + 1,
            bytes: 64 * (i + 1),
        },
    }
}

/// A pristine store — two sealed epochs plus live WAL records — captured
/// once as `(relative file name, bytes)` pairs and restamped per case.
fn pristine() -> &'static Vec<(String, Vec<u8>)> {
    static FILES: OnceLock<Vec<(String, Vec<u8>)>> = OnceLock::new();
    FILES.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("megastream-fuzz-seed-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut tier = ColdTier::create(&dir, SyncPolicy::Off, Telemetry::disabled())
            .expect("seed store creates");
        for epoch in 0..2u64 {
            for i in 0..3 {
                tier.wal_append(&wal_rec(epoch * 4 + i)).expect("wal");
            }
            tier.begin_epoch(Timestamp::from_secs((epoch + 1) * 60))
                .expect("begin");
            tier.append_frame(&Frame::Exported {
                region: 0,
                summary: summary(epoch),
            })
            .expect("frame");
            tier.append_frame(&Frame::Parked {
                region: 1,
                summary: summary(epoch + 10),
            })
            .expect("frame");
            tier.append_frame(&Frame::Flushed {
                region: 1,
                summary: summary(epoch + 20),
            })
            .expect("frame");
            tier.seal_epoch().expect("seal");
            tier.wal_reset().expect("reset");
            tier.wal_append(&wal_rec(epoch * 4 + 3)).expect("wal");
        }
        drop(tier);
        let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
            .expect("seed dir lists")
            .filter_map(|e| {
                let e = e.ok()?;
                if !e.file_type().ok()?.is_file() {
                    return None;
                }
                let name = e.file_name().into_string().ok()?;
                Some((name.clone(), fs::read(dir.join(&name)).ok()?))
            })
            .collect();
        files.sort();
        let _ = fs::remove_dir_all(&dir);
        assert!(files.len() >= 3, "expected 2 segments + WAL, got {files:?}");
        files
    })
}

fn case_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("megastream-fuzz-case-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("case dir creates");
    dir
}

#[derive(Debug, Clone, Copy)]
enum Damage {
    Truncate,
    BitFlip,
    Append,
}

/// Materializes the pristine store, damages one file, and returns the dir.
fn damaged_store(target: usize, damage: Damage, offset: u64, garbage: &[u8]) -> PathBuf {
    let files = pristine();
    let dir = case_dir();
    for (name, bytes) in files {
        fs::write(dir.join(name), bytes).expect("case file writes");
    }
    let (name, bytes) = &files[target % files.len()];
    let path = dir.join(name);
    let mut bytes = bytes.clone();
    match damage {
        Damage::Truncate => bytes.truncate((offset % (bytes.len() as u64 + 1)) as usize),
        Damage::BitFlip => {
            if !bytes.is_empty() {
                let at = (offset % bytes.len() as u64) as usize;
                bytes[at] ^= 1 << (offset % 8);
            }
        }
        Damage::Append => bytes.extend_from_slice(garbage),
    }
    fs::write(&path, &bytes).expect("damaged file writes");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Recovery and both fsck modes must return — Ok or a typed error —
    /// for any single-file damage; a successful repair then verifies clean.
    #[test]
    fn damaged_stores_never_panic(
        target in any::<usize>(),
        kind in sample::select(vec![Damage::Truncate, Damage::BitFlip, Damage::Append]),
        offset in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let dir = damaged_store(target, kind, offset, &garbage);

        // Plain verify, then repair: any outcome but a panic is in
        // contract. After a successful repair no CRC-corrupt frame may
        // remain — repair quarantines them all. (Torn tails inside sealed
        // segments stay *reported*: fsck never invents data.)
        let _ = fsck(&dir, false);
        if fsck(&dir, true).is_ok() {
            let after = fsck(&dir, false);
            prop_assert!(after.is_ok(), "verify after successful repair: {after:?}");
            prop_assert!(
                after.is_ok_and(|r| r.corrupt_frames == 0),
                "repair must quarantine every corrupt frame"
            );
        }

        // Recovery over the (repaired) store must also hold the contract,
        // and a store it accepts must be fully usable.
        match ColdTier::open(&dir, SyncPolicy::Off, Telemetry::disabled()) {
            Ok((mut tier, _report)) => {
                tier.wal_append(&wal_rec(99)).expect("recovered tier accepts WAL");
                tier.begin_epoch(Timestamp::from_secs(600)).expect("begin after recovery");
                tier.append_frame(&Frame::Exported { region: 0, summary: summary(99) })
                    .expect("append after recovery");
                tier.seal_epoch().expect("seal after recovery");
                drop(tier);
                let verify = fsck(&dir, false);
                prop_assert!(
                    verify.as_ref().is_ok_and(|r| r.corrupt_frames == 0),
                    "recovery must quarantine every corrupt frame: {verify:?}"
                );
            }
            Err(_typed) => {} // a typed refusal is an acceptable outcome
        }

        fs::remove_dir_all(&dir).expect("case dir removes");
    }

    /// Damage to *both* a sealed segment and the WAL at once.
    #[test]
    fn doubly_damaged_stores_never_panic(
        t1 in any::<usize>(),
        t2 in any::<usize>(),
        o1 in any::<u64>(),
        o2 in any::<u64>(),
    ) {
        let files = pristine();
        let dir = case_dir();
        for (name, bytes) in files {
            fs::write(dir.join(name), bytes).expect("case file writes");
        }
        for (t, o) in [(t1, o1), (t2, o2)] {
            let (name, bytes) = &files[t % files.len()];
            let mut bytes = bytes.clone();
            if !bytes.is_empty() {
                let at = (o % bytes.len() as u64) as usize;
                bytes[at] ^= 0x40;
                bytes.truncate(bytes.len() - (o % 4) as usize);
            }
            fs::write(dir.join(name), &bytes).expect("damaged file writes");
        }
        let _ = fsck(&dir, false);
        let _ = fsck(&dir, true);
        let _ = ColdTier::open(&dir, SyncPolicy::Off, Telemetry::disabled());
        fs::remove_dir_all(&dir).expect("case dir removes");
    }
}

// ------------------------------------------------- arena-frame attacks
//
// A flowtree summary serializes as the arena slice itself: canonical
// pre-order, each node carrying `(25-byte key, u64 own, u32 parent)` with
// the parent's *position* in the same sequence. The decoder must treat
// that as hostile input: parent links that are self-referential, forward,
// or out of range; a root without the no-parent sentinel; duplicated keys;
// and node counts beyond the configured budget all come back as typed
// errors — never a panic, never an unbounded allocation. (Free-list
// overlap, the classic arena-corruption vector, is *unrepresentable* on
// the wire: the dense pre-order slice has no free list at all.)

/// Bytes per serialized flowtree node: 5 × (u32 value + u8 len) key fields,
/// u64 own score, u32 parent position.
const NODE_WIRE: usize = 25 + 8 + 4;

/// A stored summary wrapping a flowtree with a known node count, plus that
/// count (the node section is the last `n × NODE_WIRE` bytes of the
/// encoding, which is what the attack helpers patch).
fn flowtree_summary() -> (StoredSummary, usize) {
    let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(256));
    for i in 0..40u64 {
        tree.observe(&wal_rec(i).record);
    }
    let n = tree.len();
    let stored = StoredSummary::new(
        "region-ft",
        TimeWindow::starting_at(Timestamp::from_secs(0), TimeDelta::from_secs(60)),
        Summary::Flowtree(tree),
        Lineage::from_source("router-0-0"),
    );
    (stored, n)
}

/// Applies `patch` to a clean encoding and asserts the decoder refuses the
/// result with an error rather than panicking (or accepting it).
fn assert_rejected(what: &str, patch: impl FnOnce(&mut Vec<u8>, usize, usize)) {
    let (stored, n) = flowtree_summary();
    let mut buf = encode_stored_summary(&stored);
    assert_eq!(
        decode_stored_summary(&buf).as_ref().map(|s| &s.source),
        Ok(&stored.source),
        "clean frame must round-trip"
    );
    let node_section = buf.len() - n * NODE_WIRE;
    patch(&mut buf, node_section, n);
    assert!(
        decode_stored_summary(&buf).is_err(),
        "{what}: decoder accepted a corrupt arena frame"
    );
}

/// Byte offset of node `i`'s parent field within the encoding.
fn parent_at(node_section: usize, i: usize) -> usize {
    node_section + i * NODE_WIRE + 25 + 8
}

#[test]
fn arena_frame_self_parent_cycle_is_rejected() {
    assert_rejected("self-cycle", |buf, nodes, n| {
        assert!(n > 2);
        let at = parent_at(nodes, 2);
        buf[at..at + 4].copy_from_slice(&2u32.to_le_bytes());
    });
}

#[test]
fn arena_frame_forward_parent_is_rejected() {
    assert_rejected("forward parent", |buf, nodes, n| {
        let at = parent_at(nodes, 1);
        buf[at..at + 4].copy_from_slice(&((n as u32) - 1).to_le_bytes());
    });
}

#[test]
fn arena_frame_out_of_range_parent_is_rejected() {
    assert_rejected("out-of-range parent", |buf, nodes, _| {
        let at = parent_at(nodes, 1);
        buf[at..at + 4].copy_from_slice(&0xFFFF_FFF0u32.to_le_bytes());
    });
}

#[test]
fn arena_frame_root_without_sentinel_is_rejected() {
    assert_rejected("root parent", |buf, nodes, _| {
        let at = parent_at(nodes, 0);
        buf[at..at + 4].copy_from_slice(&0u32.to_le_bytes());
    });
}

#[test]
fn arena_frame_duplicate_key_is_rejected() {
    assert_rejected("duplicate key", |buf, nodes, n| {
        assert!(n > 3);
        let (src, dst) = (nodes + 2 * NODE_WIRE, nodes + 3 * NODE_WIRE);
        let key: Vec<u8> = buf[src..src + 25].to_vec();
        buf[dst..dst + 25].copy_from_slice(&key);
    });
}

#[test]
fn arena_frame_count_beyond_budget_is_rejected() {
    assert_rejected("budget", |buf, nodes, _| {
        // The config header precedes the node section:
        // … [capacity u64][compact_ratio f64][records u64][count u32][nodes].
        // A capacity of 1 makes the claimed node count exceed the node
        // budget, which the decoder must bound *before* building anything.
        let at = nodes - 4 - 8 - 8 - 8;
        buf[at..at + 8].copy_from_slice(&1u64.to_le_bytes());
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single-bit flip anywhere in a flowtree frame decodes to Ok or a
    /// typed error — never a panic, never an allocation proportional to a
    /// corrupted length field.
    #[test]
    fn arena_frame_bit_flips_never_panic(at in any::<usize>(), bit in 0u8..8) {
        let (stored, _) = flowtree_summary();
        let mut buf = encode_stored_summary(&stored);
        let len = buf.len();
        buf[at % len] ^= 1 << bit;
        let _ = decode_stored_summary(&buf);
    }
}
