//! Exit-code contract of the `mega-fsck` binary: `0` clean, `1` problems
//! found, `2` usage or I/O error — and `--repair` flips a bit-flipped
//! store from dirty back to clean.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_primitives::sampling::SampledSeries;
use megastream_storage::{ColdTier, FaultMode, FaultSpec, Frame, SyncPolicy};
use megastream_telemetry::Telemetry;

const FSCK: &str = env!("CARGO_BIN_EXE_mega-fsck");

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(FSCK)
        .args(args)
        .output()
        .expect("mega-fsck runs");
    (
        out.status.code().expect("mega-fsck exits"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("megastream-fsck-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn summary(i: u64) -> StoredSummary {
    StoredSummary::new(
        format!("region-{i}"),
        TimeWindow::starting_at(Timestamp::from_secs(i * 60), TimeDelta::from_secs(60)),
        Summary::Series(SampledSeries::default()),
        Lineage::from_source("router-0-0"),
    )
}

/// Writes one sealed epoch; with `flip`, the second append lands a frame
/// whose payload was bit-flipped after its CRC was computed — the silent
/// disk corruption a verifier must flag.
fn build_store(d: &Path, flip: bool) {
    let mut tier =
        ColdTier::create(d, SyncPolicy::Off, Telemetry::disabled()).expect("store creates");
    tier.begin_epoch(Timestamp::from_secs(60)).expect("begin");
    tier.append_frame(&Frame::Exported {
        region: 0,
        summary: summary(0),
    })
    .expect("frame");
    if flip {
        tier.set_fault(Some(FaultSpec {
            at_op: tier.ops() + 1,
            mode: FaultMode::BitFlip,
        }));
    }
    tier.append_frame(&Frame::Exported {
        region: 1,
        summary: summary(1),
    })
    .expect("frame");
    tier.set_fault(None);
    tier.seal_epoch().expect("seal");
    tier.wal_reset().expect("reset");
}

#[test]
fn clean_store_exits_zero() {
    let d = dir("clean");
    build_store(&d, false);
    let (code, stdout, stderr) = run(&[d.to_str().expect("utf8 path")]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("clean"), "stdout: {stdout}");
    fs::remove_dir_all(&d).expect("cleanup");
}

#[test]
fn corrupt_store_exits_nonzero_then_repair_makes_it_clean() {
    let d = dir("corrupt");
    build_store(&d, true);
    let path = d.to_str().expect("utf8 path");

    let (code, stdout, stderr) = run(&[path]);
    assert_eq!(
        code, 1,
        "a bit-flipped frame must be flagged\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stderr.contains("corrupt frame"), "stderr: {stderr}");

    let (code, stdout, _) = run(&["--repair", path]);
    assert_eq!(
        code, 0,
        "repair quarantines the frame and exits clean\nstdout: {stdout}"
    );
    assert!(stdout.contains("repaired 1 segment"), "stdout: {stdout}");
    assert!(
        d.join("quarantine")
            .read_dir()
            .expect("quarantine dir")
            .next()
            .is_some(),
        "the corrupt frame is preserved for forensics"
    );

    let (code, _, _) = run(&[path]);
    assert_eq!(code, 0, "the repaired store verifies clean");
    fs::remove_dir_all(&d).expect("cleanup");
}

#[test]
fn usage_and_io_errors_exit_two() {
    let (code, _, stderr) = run(&[]);
    assert_eq!(code, 2, "missing dir is a usage error: {stderr}");

    let (code, _, stderr) = run(&["--bogus-flag", "x"]);
    assert_eq!(code, 2, "unknown flag is a usage error: {stderr}");

    let missing = std::env::temp_dir().join("megastream-fsck-cli-definitely-missing");
    let _ = fs::remove_dir_all(&missing);
    let (code, _, stderr) = run(&[missing.to_str().expect("utf8 path")]);
    assert_eq!(code, 2, "unreadable dir is an I/O error: {stderr}");
}
