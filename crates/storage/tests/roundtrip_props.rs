//! Property suite for the cold-tier codec: an arbitrary [`StoredSummary`]
//! encodes and decodes back to the identical value — structural equality,
//! `deep_bytes()`/`wire_size()` equality, and byte-stable re-encoding —
//! across every summary kind the data plane produces.

use megastream_datastore::summary::{Lineage, StoredSummary, Summary};
use megastream_flow::addr::Ipv4Addr;
use megastream_flow::key::{FeatureSet, FlowKey};
use megastream_flow::record::FlowRecord;
use megastream_flow::score::ScoreKind;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_primitives::aggregator::ComputingPrimitive;
use megastream_primitives::exact::ExactFlowTable;
use megastream_primitives::sampling::{SamplePoint, SampledSeries};
use megastream_primitives::spacesaving::SpaceSaving;
use megastream_primitives::timebin::TimeBinStats;
use megastream_storage::{decode_stored_summary, encode_stored_summary};
use proptest::collection::vec;
use proptest::prelude::*;

fn record(src: u32, dst: u32, packets: u64) -> FlowRecord {
    FlowRecord::builder()
        .proto(6)
        .src(Ipv4Addr::from(src), 5000)
        .dst(Ipv4Addr::from(dst), 443)
        .packets(packets % 10_000 + 1)
        .build()
}

/// Encode → decode must be the identity, sizes must agree, and a second
/// roundtrip must be lossless too (recovered summaries re-journal without
/// drift; exact byte stability is not promised — Flowtree arena order is
/// normalized by decode).
fn assert_roundtrip(summary: Summary, start: u64) {
    let stored = StoredSummary::new(
        format!("region-{}", start % 7),
        TimeWindow::starting_at(
            Timestamp::from_secs(start % 100_000),
            TimeDelta::from_secs(60),
        ),
        summary,
        Lineage::from_source(format!("router-{}", start % 5)),
    );
    let bytes = encode_stored_summary(&stored);
    let decoded = decode_stored_summary(&bytes).expect("a valid encoding decodes");
    prop_assert_eq!(&decoded, &stored);
    prop_assert_eq!(decoded.summary.deep_bytes(), stored.summary.deep_bytes());
    prop_assert_eq!(decoded.wire_size(), stored.wire_size());
    let reencoded = encode_stored_summary(&decoded);
    let twice = decode_stored_summary(&reencoded).expect("a re-encoding decodes");
    prop_assert_eq!(&twice, &decoded);
    prop_assert_eq!(twice.summary.deep_bytes(), decoded.summary.deep_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flowtree_summaries_roundtrip(
        stream in vec((any::<u32>(), any::<u32>(), any::<u64>()), 0..48),
        capacity in 8usize..96,
        start in any::<u64>(),
    ) {
        let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(capacity));
        for (s, d, p) in &stream {
            tree.observe(&record(*s, *d, *p));
        }
        assert_roundtrip(Summary::Flowtree(tree), start);
    }

    #[test]
    fn exact_table_summaries_roundtrip(
        stream in vec((any::<u32>(), any::<u64>()), 0..48),
        start in any::<u64>(),
    ) {
        let mut table = ExactFlowTable::new(FeatureSet::FIVE_TUPLE, ScoreKind::Packets);
        for (s, p) in &stream {
            table.observe(&record(*s, 0x0808_0808, *p));
        }
        assert_roundtrip(Summary::Exact(table), start);
    }

    #[test]
    fn top_flows_summaries_roundtrip(
        stream in vec((any::<u32>(), any::<u64>()), 0..48),
        capacity in 4usize..32,
        start in any::<u64>(),
    ) {
        let mut sketch = SpaceSaving::new(capacity);
        for (s, w) in &stream {
            sketch.offer(FlowKey::from_record(&record(*s, 1, 1)), w % 1_000 + 1);
        }
        assert_roundtrip(Summary::TopFlows(sketch), start);
    }

    #[test]
    fn sampled_series_summaries_roundtrip(
        // Integer-derived values: exact f64s, so equality is exact.
        points in vec((0u64..600_000_000, any::<i32>(), 1u32..64), 0..48),
        start in any::<u64>(),
    ) {
        let window = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(600));
        let points = points
            .into_iter()
            .map(|(ts, value, weight)| SamplePoint {
                ts: Timestamp::from_micros(ts),
                value: f64::from(value),
                weight: f64::from(weight),
            })
            .collect();
        assert_roundtrip(Summary::Series(SampledSeries::from_parts(window, points)), start);
    }

    #[test]
    fn binned_series_summaries_roundtrip(
        samples in vec((0u64..600_000_000, any::<i16>()), 0..64),
        width_secs in 1u64..30,
        start in any::<u64>(),
    ) {
        let mut bins = TimeBinStats::new(TimeDelta::from_secs(width_secs), 7);
        for (ts, value) in &samples {
            bins.ingest(&f64::from(*value), Timestamp::from_micros(*ts));
        }
        let window = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(600));
        assert_roundtrip(Summary::Bins(bins.snapshot(window)), start);
    }

    #[test]
    fn raw_summaries_roundtrip(
        stream in vec((any::<u32>(), any::<u32>(), any::<u64>()), 0..48),
        by_bytes in any::<bool>(),
        start in any::<u64>(),
    ) {
        let records = stream
            .iter()
            .map(|(s, d, p)| record(*s, *d, *p))
            .collect();
        let score_kind = if by_bytes { ScoreKind::Bytes } else { ScoreKind::Packets };
        assert_roundtrip(Summary::Raw { records, score_kind }, start);
    }
}
