//! The deployment-facing **ops plane**: one object bundling a
//! [`MetricSampler`] and a [`HealthMonitor`] over a deployment's
//! telemetry registry, plus terminal-dashboard, JSON, and Prometheus
//! rendering.
//!
//! [`OpsPlane::standard`] installs the default rule set over the
//! aggregate signals the data plane exposes — spill-buffer occupancy,
//! export-retry and failover rates, query errors and completeness,
//! watermark freshness — so an example or test gets a meaningful health
//! model in one call. `tick` runs on *simulated* time: call it once per
//! simulated second (or whatever cadence the sampler is configured for)
//! and the sampler/health pipeline stays deterministic.

use megastream_flow::time::Timestamp;
use megastream_telemetry::{
    BurnSource, HealthMonitor, HealthRule, HealthStatus, MetricSampler, SamplerConfig, Signal,
    Telemetry,
};
use std::sync::Arc;

const SEC: u64 = 1_000_000;

/// The sparkline ramp, dimmest to brightest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series of values as a one-line unicode sparkline, scaled to
/// the series' own maximum. Empty input renders as an empty string.
pub fn sparkline<I: IntoIterator<Item = u64>>(values: I) -> String {
    let values: Vec<u64> = values.into_iter().collect();
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARKS[0]
            } else {
                let idx = (v as u128 * (SPARKS.len() as u128 - 1) / max as u128) as usize;
                SPARKS[idx]
            }
        })
        .collect()
}

/// A deployment's ops plane: sampler + health model over one telemetry
/// registry.
#[derive(Debug)]
pub struct OpsPlane {
    sampler: MetricSampler,
    monitor: HealthMonitor,
}

impl OpsPlane {
    /// An ops plane over `tel`'s registry with no rules installed.
    /// `None` when telemetry is disabled (nothing to observe).
    pub fn new(tel: &Telemetry, config: SamplerConfig) -> Option<Self> {
        let registry = tel.registry()?;
        Some(OpsPlane {
            sampler: MetricSampler::new(Arc::clone(registry), config),
            monitor: HealthMonitor::new(),
        })
    }

    /// An ops plane with the default 1 s cadence and the standard rule
    /// set over the aggregate data-plane signals. `None` when telemetry
    /// is disabled.
    pub fn standard(tel: &Telemetry) -> Option<Self> {
        let mut plane = Self::new(tel, SamplerConfig::default())?;
        for rule in standard_rules() {
            plane.monitor.add_rule(rule);
        }
        Some(plane)
    }

    /// Installs an additional health rule.
    pub fn add_rule(&mut self, rule: HealthRule) {
        self.monitor.add_rule(rule);
    }

    /// One ops-plane step at simulated time `now`: records a frame if the
    /// sampler's cadence has elapsed and, on a new frame, re-evaluates
    /// every health rule. Returns whether a frame was recorded.
    pub fn tick(&mut self, now: Timestamp) -> bool {
        let now_micros = now.as_micros();
        if !self.sampler.sample(now_micros) {
            return false;
        }
        self.monitor.evaluate(&self.sampler, now_micros);
        true
    }

    /// [`OpsPlane::tick`] ignoring the cadence gate — records a frame
    /// unconditionally (monotonic stamps still required).
    pub fn force_tick(&mut self, now: Timestamp) {
        let now_micros = now.as_micros();
        self.sampler.force_sample(now_micros);
        self.monitor.evaluate(&self.sampler, now_micros);
    }

    /// The time-series sampler (windowed rates and percentiles).
    pub fn sampler(&self) -> &MetricSampler {
        &self.sampler
    }

    /// The health monitor (rule states and the alert log).
    pub fn health(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// The worst state across every rule.
    pub fn overall(&self) -> HealthStatus {
        self.monitor.overall()
    }

    /// Human-readable health report: states per component/rule plus the
    /// alert log.
    pub fn health_report(&self) -> String {
        self.monitor.render_text()
    }

    /// The health state as JSON (see
    /// [`HealthMonitor::render_json`]).
    pub fn health_json(&self) -> String {
        self.monitor.render_json()
    }

    /// Renders a terminal dashboard: overall health, per-component
    /// states, key windowed rates with sparklines, query latency
    /// percentiles, and the most recent alerts.
    pub fn render_dashboard(&self) -> String {
        let window = 60 * SEC;
        let mut out = String::new();
        out.push_str(&format!(
            "── ops ─ overall: {} ─ frames: {} ─ series: {}\n",
            self.overall(),
            self.sampler.frames(),
            self.sampler.series(),
        ));
        for component in self.monitor.components() {
            out.push_str(&format!(
                "   {:<12} {}\n",
                component,
                self.monitor.component_status(&component)
            ));
        }
        out.push_str("── rates (60 s window, per tick)\n");
        for name in [
            "flowstream.query.total",
            "flowstream.export.retries_total",
            "flowstream.spill.spilled_total",
            "flowstream.spill.flushed_total",
            "hierarchy.export.retries_total",
            "replication.failovers_total",
        ] {
            let series = self.sampler.counter_increments(name, window);
            if series.is_empty() {
                continue;
            }
            let rate = self.sampler.counter_rate(name, window).unwrap_or(0.0);
            out.push_str(&format!(
                "   {name:<40} {:>8.2}/s {}\n",
                rate,
                sparkline(series)
            ));
        }
        out.push_str("── gauges\n");
        for name in [
            "flowstream.spill.buffered_bytes",
            "hierarchy.spill.buffered_bytes",
            "flowdb.exec.completeness_pct",
            "flowdb.index_bytes",
        ] {
            let series = self.sampler.gauge_series(name, window);
            if series.is_empty() {
                continue;
            }
            let last = self.sampler.gauge_last(name).unwrap_or(0);
            out.push_str(&format!(
                "   {name:<40} {last:>10} {}\n",
                sparkline(series.iter().map(|&v| v.max(0) as u64))
            ));
        }
        out.push_str("── latency (60 s window)\n");
        for name in ["flowstream.query.micros", "flowstream.rotate.micros"] {
            let Some(w) = self.sampler.histogram_window(name, window) else {
                continue;
            };
            if w.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "   {name:<40} n={:<6} p50≤{}µs p95≤{}µs p99≤{}µs\n",
                w.count,
                w.quantile(0.5),
                w.quantile(0.95),
                w.quantile(0.99),
            ));
        }
        let mut slo_lines = String::new();
        for rule in ["latency-burn", "completeness-burn"] {
            if let Some(v) = self.monitor.rule_value(rule) {
                slo_lines.push_str(&format!(
                    "   {rule:<40} {v:>8.2}x {}\n",
                    self.monitor.rule_status(rule)
                ));
            }
        }
        if !slo_lines.is_empty() {
            out.push_str("── slo burn rates (long ∧ short window)\n");
            out.push_str(&slo_lines);
        }
        // Per-store accounted memory, newest value per gauge.
        let mut memory_lines = String::new();
        for name in self.sampler.gauge_names() {
            if !name.starts_with("store.memory.bytes") {
                continue;
            }
            if let Some(last) = self.sampler.gauge_last(&name) {
                memory_lines.push_str(&format!("   {name:<40} {last:>10} B\n"));
            }
        }
        if !memory_lines.is_empty() {
            out.push_str("── store memory (accounted deep bytes)\n");
            out.push_str(&memory_lines);
        }
        let notes = self.monitor.notes();
        if !notes.is_empty() {
            out.push_str("── notes\n");
            for n in notes {
                out.push_str(&format!("   {n}\n"));
            }
        }
        let alerts = self.monitor.alerts();
        if !alerts.is_empty() {
            out.push_str("── alerts (newest last)\n");
            for a in alerts.iter().rev().take(5).rev() {
                out.push_str(&format!("   {a}\n"));
            }
        }
        out
    }
}

/// The default rule set [`OpsPlane::standard`] installs, over the
/// aggregate metric names the data-plane crates record. Rules evaluate
/// as `Healthy` until their metric first appears, so the set is safe to
/// install on any deployment — but a rule whose metric *never* registers
/// surfaces a one-time "signal missing" note in the health report (see
/// [`HealthMonitor::notes`]) rather than staying silently green.
///
/// The set includes two multi-window SLO burn-rate rules
/// ([`Signal::BurnRate`]): `latency-burn` over the end-to-end FlowQL
/// latency histogram and `completeness-burn` over the partial-answer
/// ratio.
pub fn standard_rules() -> Vec<HealthRule> {
    vec![
        // Any spilled bytes mean an uplink is down and data is buffering;
        // half the default 4 MiB spill capacity is critical.
        HealthRule::new(
            "spill-occupancy",
            "flowstream",
            Signal::GaugeLevel {
                name: "flowstream.spill.buffered_bytes".into(),
            },
            0.0,
            (2 << 20) as f64,
        ),
        HealthRule::new(
            "spill-occupancy",
            "hierarchy",
            Signal::GaugeLevel {
                name: "hierarchy.spill.buffered_bytes".into(),
            },
            0.0,
            (2 << 20) as f64,
        ),
        // Sustained export retries: transient faults are being absorbed.
        HealthRule::new(
            "export-retries",
            "flowstream",
            Signal::CounterRate {
                name: "flowstream.export.retries_total".into(),
                window_micros: 30 * SEC,
            },
            0.2,
            5.0,
        ),
        HealthRule::new(
            "export-retries",
            "hierarchy",
            Signal::CounterRate {
                name: "hierarchy.export.retries_total".into(),
                window_micros: 30 * SEC,
            },
            0.2,
            5.0,
        ),
        // Failing queries and partial answers degrade the query plane.
        HealthRule::new(
            "query-errors",
            "flowdb",
            Signal::CounterRate {
                name: "flowstream.query.errors_total".into(),
                window_micros: 30 * SEC,
            },
            0.2,
            5.0,
        ),
        HealthRule::new(
            "completeness",
            "flowdb",
            Signal::GaugeLevel {
                name: "flowdb.exec.completeness_pct".into(),
            },
            99.0,
            50.0,
        )
        .below(),
        // Owner-down reads served by replicas: availability is holding,
        // but the deployment is running on its spare copies.
        HealthRule::new(
            "failovers",
            "replication",
            Signal::CounterRate {
                name: "replication.failovers_total".into(),
                window_micros: 30 * SEC,
            },
            0.2,
            5.0,
        ),
        // SLO burn rates (multi-window: both the long and the short window
        // must burn, so single blips cannot trip the rule).
        //
        // Latency SLO: 99% of FlowQL round-trips complete within 100 ms.
        // Burn > 2 means the budget drains twice as fast as allowed.
        HealthRule::new(
            "latency-burn",
            "flowdb",
            Signal::BurnRate {
                source: BurnSource::HistogramAbove {
                    name: "flowstream.query.micros".into(),
                    threshold_micros: 100_000,
                },
                objective_pct: 99.0,
                long_window_micros: 60 * SEC,
                short_window_micros: 15 * SEC,
            },
            2.0,
            10.0,
        ),
        // Completeness SLO: 99% of answers complete. An outage turning
        // the standing queries partial burns the budget ~100x and flips
        // the rule Degraded/Critical after the 2-tick hysteresis; the
        // short window clears quickly on recovery.
        HealthRule::new(
            "completeness-burn",
            "flowdb",
            Signal::BurnRate {
                source: BurnSource::CounterRatio {
                    bad: "flowstream.query.partial_total".into(),
                    total: "flowstream.query.total".into(),
                },
                objective_pct: 99.0,
                long_window_micros: 60 * SEC,
                short_window_micros: 15 * SEC,
            },
            2.0,
            10.0,
        ),
        // Disk health of the durable cold tier: recovery quarantining
        // corrupt frames means the disk (or a write path) is flipping
        // bits — any sustained rate is critical. Deployments without a
        // cold tier never register the metric and see only the one-time
        // "signal missing" note.
        HealthRule::new(
            "disk-corruption",
            "storage",
            Signal::CounterRate {
                name: "storage.recovery.corrupt_frames".into(),
                window_micros: 30 * SEC,
            },
            0.0,
            0.1,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowstream::{Flowstream, FlowstreamConfig};
    use megastream_flow::record::FlowRecord;
    use megastream_flow::time::TimeDelta;
    use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline([0, 7]), "▁█");
        assert_eq!(sparkline([0, 0, 0]), "▁▁▁");
        assert_eq!(sparkline([]), "");
        assert_eq!(sparkline([1]), "█");
    }

    #[test]
    fn disabled_telemetry_has_no_ops_plane() {
        assert!(OpsPlane::standard(&Telemetry::disabled()).is_none());
    }

    #[test]
    fn standard_plane_stays_healthy_on_clean_run() {
        let tel = Telemetry::new();
        let mut fs = Flowstream::new(2, 2, FlowstreamConfig::default()).with_telemetry(&tel);
        let mut ops = OpsPlane::standard(&tel).expect("telemetry is enabled");
        let trace: Vec<FlowRecord> = FlowTraceGenerator::new(FlowTraceConfig {
            flows_per_sec: 50.0,
            duration: TimeDelta::from_secs(120),
            ..Default::default()
        })
        .collect();
        for rec in &trace {
            fs.ingest_round_robin(rec);
            ops.tick(rec.ts);
        }
        fs.finish();
        let _ = fs.query("SELECT QUERY FROM ALL WHERE location = \"region-0\"");
        ops.force_tick(Timestamp::from_secs(121));
        assert_eq!(ops.overall(), HealthStatus::Healthy);
        assert!(ops.health().alerts().is_empty());
        assert!(ops.sampler().frames() > 60);
        let dash = ops.render_dashboard();
        assert!(dash.contains("overall: healthy"));
        assert!(dash.contains("flowstream.query.total"));
        let json = ops.health_json();
        assert!(json.contains("\"overall\":\"healthy\""));
    }

    #[test]
    fn tick_is_cadence_gated() {
        let tel = Telemetry::new();
        tel.counter("c").inc();
        let mut ops = OpsPlane::standard(&tel).expect("enabled");
        assert!(ops.tick(Timestamp::ZERO));
        assert!(!ops.tick(Timestamp::from_micros(10)));
        assert!(ops.tick(Timestamp::from_secs(1)));
        assert_eq!(ops.sampler().frames(), 2);
        assert_eq!(ops.health().evaluations(), 2);
    }
}
