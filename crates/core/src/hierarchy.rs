//! A hierarchy of data stores over a simulated network (paper Fig. 2b).
//!
//! "In the case of distributed mega-datasets, each mega-dataset is stored
//! in its own data store. Further data stores exist to merge and aggregate
//! data from multiple mega-datasets." The [`StoreHierarchy`] binds data
//! stores to nodes of a [`Network`], rotates their epochs, and pushes each
//! epoch's summaries to the parent store — accounting every byte that
//! crosses a link, which is what experiment E3 measures.

use megastream_datastore::aggregator::AggregatorInstance;
use megastream_datastore::store::{DataStore, StreamId};
use megastream_datastore::summary::{StoredSummary, Summary};
use megastream_datastore::trigger::TriggerEvent;
use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowdb::par::fan_out;
use megastream_flowdb::Parallelism;
use megastream_netsim::topology::{Network, NodeId, TransferError};
use megastream_primitives::aggregator::Combinable;
use megastream_storage::{ColdTier, Frame, SegmentError};
use megastream_telemetry::{
    labeled, Profiler, Telemetry, TraceSpan, Tracer, LATENCY_MICROS_BOUNDS,
};

use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a store within a hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HierarchyId(usize);

#[derive(Debug)]
struct Entry {
    store: DataStore,
    net: NodeId,
    parent: Option<usize>,
    depth: usize,
    /// Store-and-forward buffer for summaries whose export failed: they are
    /// re-merged (P2) while waiting and re-exported once the edge recovers.
    spill: Vec<StoredSummary>,
    spill_bytes: u64,
}

/// Retry/spill policy for [`StoreHierarchy::pump`] exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PumpPolicy {
    /// Re-attempts after a transient transfer failure (0 = no retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub initial_backoff: TimeDelta,
    /// Per-edge spill buffer bound; the oldest spilled summaries are
    /// dropped (with accounting) when an insert would exceed it.
    pub spill_capacity_bytes: u64,
    /// Seed of the deterministic retry jitter: each backoff step is
    /// stretched by up to half its length, decorrelating the retry storms
    /// of many edges hitting the same outage. Same seed → bit-identical
    /// schedule, so determinism tests hold.
    pub jitter_seed: u64,
}

impl Default for PumpPolicy {
    fn default() -> Self {
        PumpPolicy {
            max_retries: 3,
            initial_backoff: TimeDelta::from_millis(200),
            spill_capacity_bytes: 4 << 20,
            jitter_seed: 0,
        }
    }
}

/// Deterministic backoff jitter (SplitMix64 over `seed ^ salt`): a delta in
/// `[0, backoff/2)`, so retries from different edges decorrelate while any
/// fixed seed reproduces the exact schedule.
pub(crate) fn jitter_micros(seed: u64, salt: u64, backoff: TimeDelta) -> TimeDelta {
    let mut z = (seed ^ salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let span = backoff.as_micros() / 2;
    if span == 0 {
        return TimeDelta::ZERO;
    }
    TimeDelta::from_micros(z % span)
}

/// Fatal error from [`StoreHierarchy::pump`]: the topology itself is broken
/// (transient faults are retried/spilled, never surfaced here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PumpError {
    /// A transfer between two stores failed with a non-transient error.
    Transfer {
        /// The exporting store's network node.
        from: NodeId,
        /// The parent store's network node.
        to: NodeId,
        /// The underlying error ([`TransferError::NoRoute`] or
        /// [`TransferError::UnknownNode`]).
        source: TransferError,
    },
}

impl std::fmt::Display for PumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PumpError::Transfer { from, to, source } => {
                write!(f, "export {from} -> {to} failed fatally: {source}")
            }
        }
    }
}

impl std::error::Error for PumpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PumpError::Transfer { source, .. } => Some(source),
        }
    }
}

/// Statistics of one [`StoreHierarchy::pump`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// Epoch rotations performed.
    pub rotations: u64,
    /// Summaries exported to parent stores.
    pub exported_summaries: u64,
    /// Bytes those exports put on the network.
    pub exported_bytes: u64,
    /// Summaries absorbed into a parent's live aggregator (vs stored).
    pub absorbed: u64,
    /// Transfer re-attempts after transient failures.
    pub retries: u64,
    /// Summaries parked in a spill buffer after retries were exhausted.
    pub spilled: u64,
    /// Previously spilled summaries delivered after the edge recovered.
    pub flushed: u64,
    /// Spilled summaries dropped because a spill buffer overflowed.
    pub dropped: u64,
    /// Bytes those drops discarded.
    pub dropped_bytes: u64,
}

impl std::ops::AddAssign for ExportStats {
    fn add_assign(&mut self, rhs: ExportStats) {
        self.rotations += rhs.rotations;
        self.exported_summaries += rhs.exported_summaries;
        self.exported_bytes += rhs.exported_bytes;
        self.absorbed += rhs.absorbed;
        self.retries += rhs.retries;
        self.spilled += rhs.spilled;
        self.flushed += rhs.flushed;
        self.dropped += rhs.dropped;
        self.dropped_bytes += rhs.dropped_bytes;
    }
}

/// A tree of data stores bound to network nodes.
#[derive(Debug)]
pub struct StoreHierarchy {
    entries: Vec<Entry>,
    network: Network,
    tel: Telemetry,
    tracer: Tracer,
    profiler: Profiler,
    policy: PumpPolicy,
    par: Parallelism,
    /// Optional durable audit trail: every delivered summary of a pump is
    /// journaled as one epoch segment (write-through, sealed per pump).
    cold: Option<ColdTier>,
    /// Frames accumulated during the current pump, flushed at its end.
    pump_audit: Vec<Frame>,
}

impl StoreHierarchy {
    /// Creates a hierarchy over `network`.
    pub fn new(network: Network) -> Self {
        StoreHierarchy {
            entries: Vec::new(),
            network,
            tel: Telemetry::disabled(),
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
            policy: PumpPolicy::default(),
            par: Parallelism::default(),
            cold: None,
            pump_audit: Vec::new(),
        }
    }

    /// Attaches a durable cold tier as a write-through audit trail: each
    /// [`StoreHierarchy::pump`] that delivers summaries seals one epoch
    /// segment recording them (exports as `Exported` frames, recovered
    /// spills as `Flushed`), verifiable offline with `mega-fsck`. A failed
    /// tier is marked dead and the pump continues in memory.
    pub fn attach_cold_tier(&mut self, tier: ColdTier) {
        self.cold = Some(tier);
    }

    /// The attached audit tier, if any.
    pub fn cold_tier(&self) -> Option<&ColdTier> {
        self.cold.as_ref()
    }

    /// Detaches and returns the audit tier.
    pub fn detach_cold_tier(&mut self) -> Option<ColdTier> {
        self.cold.take()
    }

    /// Seals the frames collected during one pump into an epoch segment on
    /// the audit tier. Any failure kills the tier (first error retained via
    /// [`ColdTier::first_error`]); the data plane is never disturbed.
    fn write_pump_audit(&mut self, now: Timestamp) {
        let frames = std::mem::take(&mut self.pump_audit);
        let Some(tier) = self.cold.as_mut() else {
            return;
        };
        if frames.is_empty() || tier.is_dead() {
            return;
        }
        let result = (|| -> Result<(), SegmentError> {
            tier.begin_epoch(now)?;
            for frame in &frames {
                tier.append_frame(frame)?;
            }
            tier.seal_epoch()?;
            tier.wal_reset()
        })();
        if let Err(e) = result {
            if !matches!(e, SegmentError::TierDead) {
                tier.mark_dead(e);
            }
        }
    }

    /// Sets the retry/spill policy [`pump`](Self::pump) uses.
    pub fn set_pump_policy(&mut self, policy: PumpPolicy) {
        self.policy = policy;
    }

    /// The retry/spill policy in effect.
    pub fn pump_policy(&self) -> PumpPolicy {
        self.policy
    }

    /// Sets how many worker threads [`pump`](Self::pump) uses to rotate
    /// sibling subtrees of one level concurrently. Every setting produces
    /// the same observable outcome ([`Parallelism::Sequential`] is the
    /// oracle the equivalence tests compare against); only wall-clock time
    /// differs.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// The pump parallelism in effect.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Summaries currently parked in `id`'s spill buffer (awaiting a
    /// recovered edge to the parent).
    pub fn spilled(&self, id: HierarchyId) -> usize {
        self.entries[id.0].spill.len()
    }

    /// Bytes currently parked in `id`'s spill buffer.
    pub fn spilled_bytes(&self, id: HierarchyId) -> u64 {
        self.entries[id.0].spill_bytes
    }

    /// Connects the hierarchy (and every store in it, present or future) to
    /// a telemetry registry. [`StoreHierarchy::pump`] records per-level
    /// export volume and latency under `hierarchy.*{level=<depth>}` names.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        for entry in &mut self.entries {
            entry.store.set_telemetry(tel);
        }
    }

    /// Connects the hierarchy to a causal tracer: every
    /// [`StoreHierarchy::pump`] records a `hierarchy.pump` root span with
    /// one `export` child per rotated store and, stamped with the export's
    /// context, an `absorb` span covering the parent-side re-aggregation —
    /// so a summary's lineage across levels is one connected tree. Passing
    /// [`Tracer::disabled`] detaches again.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The tracer pump passes record into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Connects the hierarchy to a scoped-activity profiler: every
    /// [`StoreHierarchy::pump`] records a `hierarchy.pump` activity with
    /// `flush_spill`, `rotate_level`, and `export_level` phases. Passing
    /// [`Profiler::disabled`] detaches again at one-branch cost per site.
    pub fn set_profiler(&mut self, profiler: &Profiler) {
        self.profiler = profiler.clone();
    }

    /// The profiler pump passes record into.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Total accounted deep memory of every store in the hierarchy:
    /// the sum of each store's incrementally maintained
    /// [`accounted_bytes`](DataStore::accounted_bytes) (live aggregator
    /// state plus stored summaries).
    pub fn memory_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.store.accounted_bytes()).sum()
    }

    /// Adds a root store (no parent — typically the cloud/datacenter).
    pub fn add_root(&mut self, mut store: DataStore, net: NodeId) -> HierarchyId {
        store.set_telemetry(&self.tel);
        self.entries.push(Entry {
            store,
            net,
            parent: None,
            depth: 0,
            spill: Vec::new(),
            spill_bytes: 0,
        });
        HierarchyId(self.entries.len() - 1)
    }

    /// Adds a store below `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown.
    pub fn add_child(
        &mut self,
        mut store: DataStore,
        net: NodeId,
        parent: HierarchyId,
    ) -> HierarchyId {
        store.set_telemetry(&self.tel);
        let depth = self.entries[parent.0].depth + 1;
        self.entries.push(Entry {
            store,
            net,
            parent: Some(parent.0),
            depth,
            spill: Vec::new(),
            spill_bytes: 0,
        });
        HierarchyId(self.entries.len() - 1)
    }

    /// Number of stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Read access to a store.
    pub fn store(&self, id: HierarchyId) -> &DataStore {
        &self.entries[id.0].store
    }

    /// Mutable access to a store.
    pub fn store_mut(&mut self, id: HierarchyId) -> &mut DataStore {
        &mut self.entries[id.0].store
    }

    /// The network node a store is bound to.
    pub fn net_node(&self, id: HierarchyId) -> NodeId {
        self.entries[id.0].net
    }

    /// The parent of a store, if any.
    pub fn parent(&self, id: HierarchyId) -> Option<HierarchyId> {
        self.entries[id.0].parent.map(HierarchyId)
    }

    /// The underlying network (with its byte accounting).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// All store ids, top-down.
    pub fn ids(&self) -> Vec<HierarchyId> {
        (0..self.entries.len()).map(HierarchyId).collect()
    }

    /// Ingests a flow record at a store (trigger firings returned).
    pub fn ingest_flow(
        &mut self,
        id: HierarchyId,
        stream: &StreamId,
        rec: &FlowRecord,
        now: Timestamp,
    ) -> Vec<TriggerEvent> {
        self.entries[id.0].store.ingest_flow(stream, rec, now)
    }

    /// Ingests a scalar reading at a store (trigger firings returned).
    pub fn ingest_scalar(
        &mut self,
        id: HierarchyId,
        stream: &StreamId,
        value: f64,
        now: Timestamp,
    ) -> Vec<TriggerEvent> {
        self.entries[id.0].store.ingest_scalar(stream, value, now)
    }

    /// Rotates every store whose epoch is due (deepest stores first) and
    /// exports the produced summaries to the parent over the network. A
    /// summary a parent can merge into one of its live aggregators is
    /// *absorbed* (so the parent's own epoch summarizes its children);
    /// anything else is imported into the parent's summary store.
    ///
    /// Transient transfer failures (link/node down, loss — see
    /// [`TransferError::is_transient`]) are retried with exponential
    /// backoff per the installed [`PumpPolicy`]; summaries that still
    /// cannot be delivered are parked in a bounded per-edge spill buffer
    /// (re-merged while waiting, exercising P2 combinability) and
    /// re-exported by a later pump once the edge recovers. Overflowing
    /// the buffer drops the oldest spilled summaries with accounting.
    ///
    /// # Errors
    ///
    /// Returns [`PumpError::Transfer`] only for non-transient failures
    /// ([`TransferError::NoRoute`] / [`TransferError::UnknownNode`]) —
    /// those mean the hierarchy is miswired, not that the network is
    /// having a bad day.
    pub fn pump(&mut self, now: Timestamp) -> Result<ExportStats, PumpError> {
        let pump_span = self.tel.span("hierarchy.pump");
        let _activity = self.profiler.activity("hierarchy.pump");
        let trace_root = self.tracer.root("hierarchy.pump");
        if self.tel.is_enabled() {
            // Simulated-time progress of the pump loop — the ops plane's
            // freshness rules compare this against "now".
            self.tel
                .gauge("hierarchy.watermark_micros")
                .set(now.as_micros() as i64);
        }
        let mut stats = ExportStats::default();
        // Deepest level first, so child exports are absorbed before parents
        // rotate (when epochs align). Each level runs in three phases:
        // spills flush first, in index order, so a parent rotating in this
        // same pump sees the late data; then every due store of the level
        // rotates — sibling subtrees concurrently, per the parallelism
        // knob, since rotation touches only the store itself; finally the
        // produced summaries export to the parents in index order. The
        // retry/backoff/spill path is untouched and the export order is
        // fixed, so the observable outcome is identical for every worker
        // count.
        let mut levels: BTreeMap<std::cmp::Reverse<usize>, Vec<usize>> = BTreeMap::new();
        for (i, entry) in self.entries.iter().enumerate() {
            levels
                .entry(std::cmp::Reverse(entry.depth))
                .or_default()
                .push(i);
        }
        for level in levels.into_values() {
            let flush_activity = self.profiler.activity("flush_spill");
            for &i in &level {
                if !self.entries[i].spill.is_empty() {
                    self.flush_spill(i, now, &trace_root, &mut stats)?;
                }
            }
            drop(flush_activity);
            let due: Vec<usize> = level
                .into_iter()
                .filter(|&i| self.entries[i].store.epoch_due(now))
                .collect();
            if due.is_empty() {
                continue;
            }
            let rotate_activity = self.profiler.activity("rotate_level");
            let rotated = self.rotate_due(&due, now);
            drop(rotate_activity);
            stats.rotations += due.len() as u64;
            let export_activity = self.profiler.activity("export_level");
            for (i, exported) in due.into_iter().zip(rotated) {
                self.export_rotated(i, exported, now, &trace_root, &mut stats)?;
            }
            drop(export_activity);
        }
        self.write_pump_audit(now);
        pump_span.finish();
        Ok(stats)
    }

    /// Phase 2 of [`StoreHierarchy::pump`]: rotates the due stores of one
    /// level — sibling subtrees — on up to [`Parallelism::worker_count`]
    /// scoped threads, returning each store's exported summaries in the
    /// order `due` lists them. Records the worker count and per-worker busy
    /// time under `hierarchy.pump.workers` / `hierarchy.pump.worker.micros`.
    fn rotate_due(&mut self, due: &[usize], now: Timestamp) -> Vec<Vec<StoredSummary>> {
        let workers = self.par.worker_count(due.len());
        if self.tel.is_enabled() {
            self.tel.gauge("hierarchy.pump.workers").set(workers as i64);
        }
        let worker_micros = self
            .tel
            .histogram("hierarchy.pump.worker.micros", LATENCY_MICROS_BOUNDS);
        let due_set: BTreeSet<usize> = due.iter().copied().collect();
        let stores: Vec<&mut DataStore> = self
            .entries
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| due_set.contains(i))
            .map(|(_, entry)| &mut entry.store)
            .collect();
        fan_out(
            stores,
            workers,
            |store| store.rotate_epoch(now),
            |micros| worker_micros.record(micros),
        )
    }

    /// Phase 3 of [`StoreHierarchy::pump`]: exports one rotated store's
    /// summaries to its parent with the retry/backoff/spill semantics.
    fn export_rotated(
        &mut self,
        i: usize,
        exported: Vec<StoredSummary>,
        now: Timestamp,
        trace_root: &TraceSpan,
        stats: &mut ExportStats,
    ) -> Result<(), PumpError> {
        let depth = self.entries[i].depth;
        let level_span = if self.tel.is_enabled() {
            Some(
                self.tel
                    .span(&labeled("hierarchy.export", "level", &depth.to_string())),
            )
        } else {
            None
        };
        let mut export_span = trace_root.child("export");
        if export_span.is_recording() {
            export_span.annotate("store", self.entries[i].store.name());
            export_span.annotate("level", &depth.to_string());
        }
        let Some(parent) = self.entries[i].parent else {
            return Ok(());
        };
        // The export's context stamps the parent-side re-aggregation,
        // linking the two levels into one lineage tree.
        let mut absorb_span = match export_span.context() {
            Some(ctx) => {
                let mut s = self.tracer.span_in(ctx, "absorb");
                s.annotate("store", self.entries[parent].store.name());
                s
            }
            None => TraceSpan::disabled(),
        };
        let (from, to) = (self.entries[i].net, self.entries[parent].net);
        let mut level_bytes = 0u64;
        let (mut absorbed, mut imported, mut spilled) = (0u64, 0u64, 0u64);
        for summary in exported {
            let bytes = summary.wire_size() as u64;
            match self.transfer_with_retry(from, to, bytes, now, stats) {
                Ok(()) => {
                    stats.exported_summaries += 1;
                    stats.exported_bytes += bytes;
                    level_bytes += bytes;
                    export_span.add_bytes(bytes);
                    export_span.add_records(1);
                    if self.cold.is_some() {
                        self.pump_audit.push(Frame::Exported {
                            region: i as u32,
                            summary: summary.clone(),
                        });
                    }
                    if absorb(&mut self.entries[parent].store, &summary) {
                        stats.absorbed += 1;
                        absorbed += 1;
                    } else {
                        self.entries[parent].store.import_summary(summary, now);
                        imported += 1;
                    }
                    absorb_span.add_bytes(bytes);
                    absorb_span.add_records(1);
                }
                Err(err) if err.is_transient() => {
                    if export_span.is_recording() {
                        export_span.annotate("fault", &err.to_string());
                    }
                    self.park(i, summary, now, stats);
                    spilled += 1;
                }
                Err(source) => {
                    return Err(PumpError::Transfer { from, to, source });
                }
            }
        }
        if export_span.is_recording() && spilled > 0 {
            export_span.annotate("spilled", &spilled.to_string());
        }
        if absorb_span.is_recording() {
            absorb_span.annotate("absorbed", &absorbed.to_string());
            absorb_span.annotate("imported", &imported.to_string());
        }
        if let Some(span) = level_span {
            self.tel
                .counter(&labeled(
                    "hierarchy.export.bytes_total",
                    "level",
                    &depth.to_string(),
                ))
                .add(level_bytes);
            span.finish();
        }
        Ok(())
    }

    /// One transfer with bounded retry + exponential backoff. Each retry
    /// happens at a later simulated timestamp (`now + backoff * 2^k`), so
    /// a short outage window can end mid-sequence.
    fn transfer_with_retry(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        now: Timestamp,
        stats: &mut ExportStats,
    ) -> Result<(), TransferError> {
        let mut attempt_at = now;
        let mut backoff = self.policy.initial_backoff;
        for attempt in 0..=self.policy.max_retries {
            match self.network.transfer(from, to, bytes, attempt_at) {
                Ok(_) => return Ok(()),
                Err(err) if err.is_transient() && attempt < self.policy.max_retries => {
                    stats.retries += 1;
                    self.tel.counter("hierarchy.export.retries_total").inc();
                    let salt = now
                        .as_micros()
                        .wrapping_mul(31)
                        .wrapping_add((from.index() as u64) << 40)
                        .wrapping_add((to.index() as u64) << 20)
                        .wrapping_add(bytes)
                        .wrapping_add(attempt as u64);
                    attempt_at += backoff + jitter_micros(self.policy.jitter_seed, salt, backoff);
                    backoff = TimeDelta::from_micros(backoff.as_micros().saturating_mul(2));
                }
                Err(err) => return Err(err),
            }
        }
        unreachable!("loop always returns")
    }

    /// Parks a summary in `i`'s spill buffer: merged into a compatible
    /// already-spilled summary where possible (P2), bounded by the policy's
    /// capacity with oldest-first drops.
    fn park(&mut self, i: usize, summary: StoredSummary, now: Timestamp, stats: &mut ExportStats) {
        let location = self.entries[i].store.name().to_string();
        let cap = self.policy.spill_capacity_bytes;
        let entry = &mut self.entries[i];
        if let Some(existing) = entry
            .spill
            .iter_mut()
            .find(|s| spill_mergeable(s, &summary))
        {
            let before = existing.wire_size() as u64;
            existing.merge(&summary, &location, now);
            entry.spill_bytes = entry.spill_bytes - before + existing.wire_size() as u64;
        } else {
            entry.spill_bytes += summary.wire_size() as u64;
            entry.spill.push(summary);
        }
        stats.spilled += 1;
        self.tel.counter("hierarchy.spill.spilled_total").inc();
        while entry.spill_bytes > cap && !entry.spill.is_empty() {
            let victim = entry.spill.remove(0);
            let bytes = victim.wire_size() as u64;
            entry.spill_bytes -= bytes;
            stats.dropped += 1;
            stats.dropped_bytes += bytes;
            self.tel.counter("hierarchy.spill.dropped_total").inc();
            self.tel
                .counter("hierarchy.spill.dropped_bytes_total")
                .add(bytes);
            // Per-edge attribution, so a durability audit can pin a drop to
            // the specific store whose uplink overflowed its buffer.
            self.tel
                .counter(&labeled("hierarchy.spill.dropped_bytes", "edge", &location))
                .add(bytes);
        }
        self.update_spill_gauges(i);
    }

    /// Refreshes the spill-occupancy gauges after store `i`'s buffer
    /// changed: the per-store labeled gauge plus the hierarchy-wide
    /// aggregate the ops plane's health rules watch.
    fn update_spill_gauges(&self, i: usize) {
        if !self.tel.is_enabled() {
            return;
        }
        self.tel
            .gauge(&labeled(
                "hierarchy.spill.buffered_bytes",
                "store",
                self.entries[i].store.name(),
            ))
            .set(self.entries[i].spill_bytes as i64);
        let total: u64 = self.entries.iter().map(|e| e.spill_bytes).sum();
        self.tel
            .gauge("hierarchy.spill.buffered_bytes")
            .set(total as i64);
    }

    /// Attempts to deliver `i`'s spilled summaries to its parent. Stops at
    /// the first transient failure (the edge is still down); fatal errors
    /// propagate.
    fn flush_spill(
        &mut self,
        i: usize,
        now: Timestamp,
        trace_root: &TraceSpan,
        stats: &mut ExportStats,
    ) -> Result<(), PumpError> {
        let Some(parent) = self.entries[i].parent else {
            // A root cannot export; anything spilled here is unreachable.
            return Ok(());
        };
        let (from, to) = (self.entries[i].net, self.entries[parent].net);
        let mut flush_span = trace_root.child("flush");
        if flush_span.is_recording() {
            flush_span.annotate("store", self.entries[i].store.name());
            flush_span.annotate("pending", &self.entries[i].spill.len().to_string());
        }
        while let Some(summary) = self.entries[i].spill.first().cloned() {
            let bytes = summary.wire_size() as u64;
            match self.network.transfer(from, to, bytes, now) {
                Ok(_) => {
                    self.entries[i].spill.remove(0);
                    self.entries[i].spill_bytes = self.entries[i].spill_bytes.saturating_sub(bytes);
                    stats.flushed += 1;
                    stats.exported_summaries += 1;
                    stats.exported_bytes += bytes;
                    flush_span.add_bytes(bytes);
                    flush_span.add_records(1);
                    self.tel.counter("hierarchy.spill.flushed_total").inc();
                    if self.cold.is_some() {
                        self.pump_audit.push(Frame::Flushed {
                            region: i as u32,
                            summary: summary.clone(),
                        });
                    }
                    if absorb(&mut self.entries[parent].store, &summary) {
                        stats.absorbed += 1;
                    } else {
                        self.entries[parent].store.import_summary(summary, now);
                    }
                }
                Err(err) if err.is_transient() => {
                    if flush_span.is_recording() {
                        flush_span.annotate("fault", &err.to_string());
                    }
                    break;
                }
                Err(source) => {
                    return Err(PumpError::Transfer { from, to, source });
                }
            }
        }
        self.update_spill_gauges(i);
        Ok(())
    }
}

/// Whether two stored summaries can merge without panicking: same kind,
/// and for Flowtrees / exact tables, matching configuration. Spill buffers
/// use this to coalesce parked summaries (P2) while an edge is down.
pub fn summaries_mergeable(a: &StoredSummary, b: &StoredSummary) -> bool {
    spill_mergeable(a, b)
}

fn spill_mergeable(a: &StoredSummary, b: &StoredSummary) -> bool {
    match (&a.summary, &b.summary) {
        (Summary::Flowtree(x), Summary::Flowtree(y)) => x.config().compatible_with(y.config()),
        (Summary::Exact(x), Summary::Exact(y)) => {
            x.features() == y.features() && x.score_kind() == y.score_kind()
        }
        (x, y) => x.kind() == y.kind(),
    }
}

/// Merges a summary into a compatible live aggregator of `store`, if any:
/// Flowtrees merge with Flowtrees of the same configuration, Space-Saving
/// sketches and exact tables with their counterparts. Returns whether the
/// summary was absorbed (callers typically import it otherwise).
pub fn absorb_summary(store: &mut DataStore, summary: &StoredSummary) -> bool {
    absorb(store, summary)
}

fn absorb(store: &mut DataStore, summary: &StoredSummary) -> bool {
    for id in store.aggregator_ids() {
        let Some(inst) = store.aggregator_mut(id) else {
            continue;
        };
        match (inst, &summary.summary) {
            (AggregatorInstance::Flowtree(mine), Summary::Flowtree(theirs))
                if mine.config().compatible_with(theirs.config()) =>
            {
                mine.merge(theirs);
                return true;
            }
            (AggregatorInstance::TopFlows { sketch, .. }, Summary::TopFlows(theirs)) => {
                sketch.combine(theirs);
                return true;
            }
            (AggregatorInstance::TimeBins(mine), Summary::Bins(theirs)) => {
                mine.absorb(theirs);
                return true;
            }
            (AggregatorInstance::Exact(mine), Summary::Exact(theirs))
                if mine.features() == theirs.features()
                    && mine.score_kind() == theirs.score_kind() =>
            {
                mine.combine(theirs);
                return true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_datastore::{AggregatorSpec, StorageStrategy};
    use megastream_flow::key::FlowKey;
    use megastream_flow::time::TimeDelta;
    use megastream_flowtree::FlowtreeConfig;
    use megastream_netsim::topology::{LinkSpec, NodeKind};

    fn store(name: &str, epoch_secs: u64) -> DataStore {
        let mut s = DataStore::new(
            name,
            StorageStrategy::RoundRobin {
                budget_bytes: 10 << 20,
            },
            TimeDelta::from_secs(epoch_secs),
        );
        s.install_aggregator(AggregatorSpec::Flowtree(
            FlowtreeConfig::default().with_capacity(4096),
        ));
        s
    }

    fn rec(src: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 5000)
            .dst("1.1.1.1".parse().unwrap(), 443)
            .packets(packets)
            .build()
    }

    /// Two leaves under one parent.
    fn two_level() -> (StoreHierarchy, HierarchyId, HierarchyId, HierarchyId) {
        let mut net = Network::new();
        let parent_n = net.add_node("parent", NodeKind::DataStore);
        let a_n = net.add_node("a", NodeKind::DataStore);
        let b_n = net.add_node("b", NodeKind::DataStore);
        net.connect(a_n, parent_n, LinkSpec::lan_1g());
        net.connect(b_n, parent_n, LinkSpec::lan_1g());
        let mut h = StoreHierarchy::new(net);
        let root = h.add_root(store("parent", 120), parent_n);
        let a = h.add_child(store("a", 60), a_n, root);
        let b = h.add_child(store("b", 60), b_n, root);
        (h, root, a, b)
    }

    #[test]
    fn pump_exports_and_absorbs() {
        let (mut h, root, a, b) = two_level();
        h.ingest_flow(
            a,
            &"ra".into(),
            &rec("10.0.0.1", 5),
            Timestamp::from_secs(10),
        );
        h.ingest_flow(
            b,
            &"rb".into(),
            &rec("10.1.0.1", 7),
            Timestamp::from_secs(10),
        );
        let stats = h.pump(Timestamp::from_secs(60)).unwrap();
        assert_eq!(stats.rotations, 2);
        assert_eq!(stats.exported_summaries, 2);
        assert_eq!(stats.absorbed, 2);
        assert!(stats.exported_bytes > 0);
        // Parent's live flowtree merged both children.
        assert_eq!(h.store(root).live_flow_score(&FlowKey::root()).value(), 12);
        // Network accounted the transfers.
        assert_eq!(h.network().total_bytes(), stats.exported_bytes);
        assert_eq!(h.network().transfer_count(), 2);
    }

    #[test]
    fn parent_epoch_produces_combined_summary() {
        let (mut h, root, a, b) = two_level();
        for t in [10u64, 70] {
            h.ingest_flow(
                a,
                &"ra".into(),
                &rec("10.0.0.1", 5),
                Timestamp::from_secs(t),
            );
            h.ingest_flow(
                b,
                &"rb".into(),
                &rec("10.1.0.1", 7),
                Timestamp::from_secs(t),
            );
            h.pump(Timestamp::from_secs(t + 50)).unwrap();
        }
        // The t=120 pump closed the parent epoch right after absorbing the
        // children's second exports (children rotate first within a pump).
        let total: u64 = h
            .store(root)
            .summaries()
            .iter()
            .filter_map(|s| match &s.summary {
                Summary::Flowtree(t) => Some(t.total().value()),
                _ => None,
            })
            .sum();
        assert_eq!(total, 24, "parent summary should combine both epochs");
    }

    #[test]
    fn rate_reduction_across_levels() {
        let (mut h, _root, a, b) = two_level();
        for i in 0..2_000u32 {
            let t = Timestamp::from_micros(i as u64 * 25_000);
            h.ingest_flow(a, &"ra".into(), &rec(&format!("10.0.{}.1", i % 50), 1), t);
            h.ingest_flow(b, &"rb".into(), &rec(&format!("10.1.{}.1", i % 50), 1), t);
        }
        let stats = h.pump(Timestamp::from_secs(60)).unwrap();
        let raw: u64 = [a, b].iter().map(|id| h.store(*id).stats().raw_bytes).sum();
        assert!(
            stats.exported_bytes < raw / 2,
            "summaries ({}) not smaller than raw stream ({raw})",
            stats.exported_bytes
        );
    }

    #[test]
    fn incompatible_summary_is_imported_not_absorbed() {
        let mut net = Network::new();
        let p = net.add_node("p", NodeKind::DataStore);
        let c = net.add_node("c", NodeKind::DataStore);
        net.connect(p, c, LinkSpec::lan_1g());
        let mut h = StoreHierarchy::new(net);
        // Parent has no aggregator at all.
        let parent_store = DataStore::new(
            "p",
            StorageStrategy::RoundRobin {
                budget_bytes: 1 << 20,
            },
            TimeDelta::from_secs(3600),
        );
        let root = h.add_root(parent_store, p);
        let child = h.add_child(store("c", 60), c, root);
        h.ingest_flow(
            child,
            &"r".into(),
            &rec("10.0.0.1", 5),
            Timestamp::from_secs(1),
        );
        let stats = h.pump(Timestamp::from_secs(60)).unwrap();
        assert_eq!(stats.absorbed, 0);
        assert_eq!(h.store(root).summaries().len(), 1);
    }

    #[test]
    fn pump_surfaces_fatal_transfer_errors() {
        // A child bound to a node with no link to its parent: NoRoute is a
        // wiring bug and must surface as an error, not be swallowed.
        let mut net = Network::new();
        let p = net.add_node("p", NodeKind::DataStore);
        let _linked = net.add_node("linked", NodeKind::DataStore);
        let island = net.add_node("island", NodeKind::DataStore);
        net.connect(p, _linked, LinkSpec::lan_1g());
        let mut h = StoreHierarchy::new(net);
        let root = h.add_root(store("p", 3600), p);
        let child = h.add_child(store("c", 60), island, root);
        h.ingest_flow(
            child,
            &"r".into(),
            &rec("10.0.0.1", 5),
            Timestamp::from_secs(1),
        );
        let err = h.pump(Timestamp::from_secs(60)).unwrap_err();
        assert_eq!(
            err,
            PumpError::Transfer {
                from: h.net_node(child),
                to: h.net_node(root),
                source: megastream_netsim::TransferError::NoRoute(
                    h.net_node(child),
                    h.net_node(root)
                ),
            }
        );
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn link_down_spills_then_flushes_and_converges() {
        use megastream_netsim::FaultPlan;
        // Reference run without faults.
        let (mut ref_h, ref_root, ref_a, ref_b) = two_level();
        // Faulted run: a's uplink is down across the t=60 rotation and
        // recovers before t=120.
        let (mut h, root, a, b) = two_level();
        let mut plan = FaultPlan::seeded(42);
        plan.link_down(
            h.net_node(a),
            h.net_node(root),
            Timestamp::from_secs(50),
            Timestamp::from_secs(100),
        );
        h.network_mut().install_faults(plan);
        for (hh, aa, bb) in [(&mut ref_h, ref_a, ref_b), (&mut h, a, b)] {
            for t in [10u64, 70] {
                hh.ingest_flow(
                    aa,
                    &"ra".into(),
                    &rec("10.0.0.1", 5),
                    Timestamp::from_secs(t),
                );
                hh.ingest_flow(
                    bb,
                    &"rb".into(),
                    &rec("10.1.0.1", 7),
                    Timestamp::from_secs(t),
                );
            }
        }
        let ref_s1 = ref_h.pump(Timestamp::from_secs(60)).unwrap();
        let s1 = h.pump(Timestamp::from_secs(60)).unwrap();
        // b exported fine; a retried, gave up, and spilled.
        assert_eq!(s1.exported_summaries, 1);
        assert_eq!(s1.spilled, 1);
        assert!(s1.retries >= 1);
        assert_eq!(h.spilled(a), 1);
        assert!(h.spilled_bytes(a) > 0);
        assert_eq!(ref_s1.spilled, 0);
        // Next pump runs after recovery: the spill flushes and the parent
        // converges to the reference run's exact totals.
        let ref_s2 = ref_h.pump(Timestamp::from_secs(120)).unwrap();
        let s2 = h.pump(Timestamp::from_secs(120)).unwrap();
        assert_eq!(s2.flushed, 1);
        assert_eq!(h.spilled(a), 0);
        assert_eq!(
            h.store(root).live_flow_score(&FlowKey::root()).value(),
            ref_h
                .store(ref_root)
                .live_flow_score(&FlowKey::root())
                .value(),
        );
        assert_eq!(
            s1.exported_summaries + s2.exported_summaries,
            ref_s1.exported_summaries + ref_s2.exported_summaries,
        );
    }

    /// A pump with a cold tier attached seals one verifiable epoch segment
    /// journaling every delivered summary.
    #[test]
    fn pump_audit_seals_verifiable_epochs() {
        let dir =
            std::env::temp_dir().join(format!("megastream-pump-audit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut h, _root, a, b) = two_level();
        let tier = ColdTier::create(
            &dir,
            megastream_storage::SyncPolicy::OnSeal,
            Telemetry::disabled(),
        )
        .unwrap();
        h.attach_cold_tier(tier);
        for (id, src) in [(a, "10.0.0.1"), (b, "10.1.0.1")] {
            h.ingest_flow(id, &"r".into(), &rec(src, 5), Timestamp::from_secs(10));
        }
        let stats = h.pump(Timestamp::from_secs(60)).unwrap();
        assert_eq!(stats.exported_summaries, 2);
        assert!(!h.cold_tier().unwrap().is_dead());
        let report = megastream_storage::fsck::fsck(&dir, false).unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
        assert_eq!(report.segments.len(), 1, "one pump → one sealed epoch");
        assert_eq!(report.clean_frames, 2, "both exports journaled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The pump's retry backoff carries deterministic seeded jitter: the
    /// same seed reproduces the same retry schedule bit-for-bit, and any
    /// seed converges to the same data — jitter shifts timing, never
    /// outcomes.
    #[test]
    fn pump_retry_jitter_is_seed_deterministic() {
        use megastream_netsim::FaultPlan;
        let run = |jitter_seed: u64| {
            let (mut h, root, a, b) = two_level();
            h.set_pump_policy(PumpPolicy {
                jitter_seed,
                ..PumpPolicy::default()
            });
            let mut plan = FaultPlan::seeded(42);
            plan.link_down(
                h.net_node(a),
                h.net_node(root),
                Timestamp::from_secs(50),
                Timestamp::from_secs(100),
            );
            h.network_mut().install_faults(plan);
            for (id, src) in [(a, "10.0.0.1"), (b, "10.1.0.1")] {
                h.ingest_flow(id, &"r".into(), &rec(src, 5), Timestamp::from_secs(10));
            }
            let s1 = h.pump(Timestamp::from_secs(60)).unwrap();
            let s2 = h.pump(Timestamp::from_secs(120)).unwrap();
            let score = h.store(root).live_flow_score(&FlowKey::root()).value();
            (s1, s2, score)
        };
        let first = run(1234);
        assert_eq!(first, run(1234), "same seed must be bit-identical");
        assert!(first.0.retries >= 1, "the outage forces retries");
        let other = run(5678);
        assert_eq!(first.2, other.2, "jitter shifts timing, never data");
        assert_eq!(
            first.0.spilled + first.1.flushed,
            other.0.spilled + other.1.flushed
        );
    }

    #[test]
    fn spilled_summaries_merge_while_waiting() {
        use megastream_netsim::FaultPlan;
        let (mut h, root, a, _b) = two_level();
        let mut plan = FaultPlan::seeded(7);
        // Down across both rotations.
        plan.link_down(
            h.net_node(a),
            h.net_node(root),
            Timestamp::from_secs(50),
            Timestamp::from_secs(500),
        );
        h.network_mut().install_faults(plan);
        for t in [10u64, 70] {
            h.ingest_flow(
                a,
                &"ra".into(),
                &rec("10.0.0.1", 5),
                Timestamp::from_secs(t),
            );
        }
        let s1 = h.pump(Timestamp::from_secs(60)).unwrap();
        let s2 = h.pump(Timestamp::from_secs(120)).unwrap();
        assert_eq!(s1.spilled + s2.spilled, 2);
        // Both epochs merged into ONE parked summary (P2 combinability).
        assert_eq!(h.spilled(a), 1);
        // After recovery the single flushed summary carries both epochs
        // (the root rotates at t=500 too, so count live + stored mass).
        let s3 = h.pump(Timestamp::from_secs(500)).unwrap();
        assert_eq!(s3.flushed, 1);
        let total = h.store(root).live_flow_score(&FlowKey::root()).value()
            + h.store(root)
                .summaries()
                .iter()
                .filter_map(|s| match &s.summary {
                    Summary::Flowtree(t) => Some(t.total().value()),
                    _ => None,
                })
                .sum::<u64>();
        assert_eq!(total, 10);
    }

    #[test]
    fn spill_overflow_drops_oldest_with_accounting() {
        use megastream_netsim::FaultPlan;
        let (mut h, root, a, _b) = two_level();
        h.set_pump_policy(PumpPolicy {
            max_retries: 0,
            spill_capacity_bytes: 1, // any spill overflows immediately
            ..PumpPolicy::default()
        });
        let mut plan = FaultPlan::seeded(7);
        plan.link_down(
            h.net_node(a),
            h.net_node(root),
            Timestamp::ZERO,
            Timestamp::from_secs(500),
        );
        h.network_mut().install_faults(plan);
        h.ingest_flow(
            a,
            &"ra".into(),
            &rec("10.0.0.1", 5),
            Timestamp::from_secs(10),
        );
        let s = h.pump(Timestamp::from_secs(60)).unwrap();
        assert_eq!(s.spilled, 1);
        assert_eq!(s.dropped, 1);
        assert!(s.dropped_bytes > 0);
        assert_eq!(h.spilled(a), 0);
    }

    #[test]
    fn trigger_events_surface_at_ingest() {
        use megastream_datastore::trigger::TriggerCondition;
        let (mut h, _root, a, _b) = two_level();
        h.store_mut(a).install_trigger(
            "app",
            TriggerCondition::ScalarAbove {
                stream: "m/temp".into(),
                threshold: 50.0,
            },
            TimeDelta::ZERO,
        );
        let events = h.ingest_scalar(a, &"m/temp".into(), 60.0, Timestamp::ZERO);
        assert_eq!(events.len(), 1);
    }
}
