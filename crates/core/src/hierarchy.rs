//! A hierarchy of data stores over a simulated network (paper Fig. 2b).
//!
//! "In the case of distributed mega-datasets, each mega-dataset is stored
//! in its own data store. Further data stores exist to merge and aggregate
//! data from multiple mega-datasets." The [`StoreHierarchy`] binds data
//! stores to nodes of a [`Network`], rotates their epochs, and pushes each
//! epoch's summaries to the parent store — accounting every byte that
//! crosses a link, which is what experiment E3 measures.

use megastream_datastore::aggregator::AggregatorInstance;
use megastream_datastore::store::{DataStore, StreamId};
use megastream_datastore::summary::{StoredSummary, Summary};
use megastream_datastore::trigger::TriggerEvent;
use megastream_flow::record::FlowRecord;
use megastream_flow::time::Timestamp;
use megastream_netsim::topology::{Network, NodeId};
use megastream_primitives::aggregator::Combinable;
use megastream_telemetry::{labeled, Telemetry, TraceSpan, Tracer};

/// Identifier of a store within a hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HierarchyId(usize);

#[derive(Debug)]
struct Entry {
    store: DataStore,
    net: NodeId,
    parent: Option<usize>,
    depth: usize,
}

/// Statistics of one [`StoreHierarchy::pump`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// Epoch rotations performed.
    pub rotations: u64,
    /// Summaries exported to parent stores.
    pub exported_summaries: u64,
    /// Bytes those exports put on the network.
    pub exported_bytes: u64,
    /// Summaries absorbed into a parent's live aggregator (vs stored).
    pub absorbed: u64,
}

impl std::ops::AddAssign for ExportStats {
    fn add_assign(&mut self, rhs: ExportStats) {
        self.rotations += rhs.rotations;
        self.exported_summaries += rhs.exported_summaries;
        self.exported_bytes += rhs.exported_bytes;
        self.absorbed += rhs.absorbed;
    }
}

/// A tree of data stores bound to network nodes.
#[derive(Debug)]
pub struct StoreHierarchy {
    entries: Vec<Entry>,
    network: Network,
    tel: Telemetry,
    tracer: Tracer,
}

impl StoreHierarchy {
    /// Creates a hierarchy over `network`.
    pub fn new(network: Network) -> Self {
        StoreHierarchy {
            entries: Vec::new(),
            network,
            tel: Telemetry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Connects the hierarchy (and every store in it, present or future) to
    /// a telemetry registry. [`StoreHierarchy::pump`] records per-level
    /// export volume and latency under `hierarchy.*{level=<depth>}` names.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        for entry in &mut self.entries {
            entry.store.set_telemetry(tel);
        }
    }

    /// Connects the hierarchy to a causal tracer: every
    /// [`StoreHierarchy::pump`] records a `hierarchy.pump` root span with
    /// one `export` child per rotated store and, stamped with the export's
    /// context, an `absorb` span covering the parent-side re-aggregation —
    /// so a summary's lineage across levels is one connected tree. Passing
    /// [`Tracer::disabled`] detaches again.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The tracer pump passes record into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Adds a root store (no parent — typically the cloud/datacenter).
    pub fn add_root(&mut self, mut store: DataStore, net: NodeId) -> HierarchyId {
        store.set_telemetry(&self.tel);
        self.entries.push(Entry {
            store,
            net,
            parent: None,
            depth: 0,
        });
        HierarchyId(self.entries.len() - 1)
    }

    /// Adds a store below `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown.
    pub fn add_child(
        &mut self,
        mut store: DataStore,
        net: NodeId,
        parent: HierarchyId,
    ) -> HierarchyId {
        store.set_telemetry(&self.tel);
        let depth = self.entries[parent.0].depth + 1;
        self.entries.push(Entry {
            store,
            net,
            parent: Some(parent.0),
            depth,
        });
        HierarchyId(self.entries.len() - 1)
    }

    /// Number of stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Read access to a store.
    pub fn store(&self, id: HierarchyId) -> &DataStore {
        &self.entries[id.0].store
    }

    /// Mutable access to a store.
    pub fn store_mut(&mut self, id: HierarchyId) -> &mut DataStore {
        &mut self.entries[id.0].store
    }

    /// The network node a store is bound to.
    pub fn net_node(&self, id: HierarchyId) -> NodeId {
        self.entries[id.0].net
    }

    /// The parent of a store, if any.
    pub fn parent(&self, id: HierarchyId) -> Option<HierarchyId> {
        self.entries[id.0].parent.map(HierarchyId)
    }

    /// The underlying network (with its byte accounting).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// All store ids, top-down.
    pub fn ids(&self) -> Vec<HierarchyId> {
        (0..self.entries.len()).map(HierarchyId).collect()
    }

    /// Ingests a flow record at a store (trigger firings returned).
    pub fn ingest_flow(
        &mut self,
        id: HierarchyId,
        stream: &StreamId,
        rec: &FlowRecord,
        now: Timestamp,
    ) -> Vec<TriggerEvent> {
        self.entries[id.0].store.ingest_flow(stream, rec, now)
    }

    /// Ingests a scalar reading at a store (trigger firings returned).
    pub fn ingest_scalar(
        &mut self,
        id: HierarchyId,
        stream: &StreamId,
        value: f64,
        now: Timestamp,
    ) -> Vec<TriggerEvent> {
        self.entries[id.0].store.ingest_scalar(stream, value, now)
    }

    /// Rotates every store whose epoch is due (deepest stores first) and
    /// exports the produced summaries to the parent over the network. A
    /// summary a parent can merge into one of its live aggregators is
    /// *absorbed* (so the parent's own epoch summarizes its children);
    /// anything else is imported into the parent's summary store.
    pub fn pump(&mut self, now: Timestamp) -> ExportStats {
        let pump_span = self.tel.span("hierarchy.pump");
        let trace_root = self.tracer.root("hierarchy.pump");
        let mut stats = ExportStats::default();
        // Deepest first, so child exports are absorbed before parents
        // rotate (when epochs align).
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.entries[i].depth));
        for i in order {
            if !self.entries[i].store.epoch_due(now) {
                continue;
            }
            let depth = self.entries[i].depth;
            let level_span = if self.tel.is_enabled() {
                Some(
                    self.tel
                        .span(&labeled("hierarchy.export", "level", &depth.to_string())),
                )
            } else {
                None
            };
            let mut export_span = trace_root.child("export");
            if export_span.is_recording() {
                export_span.annotate("store", self.entries[i].store.name());
                export_span.annotate("level", &depth.to_string());
            }
            let exported = self.entries[i].store.rotate_epoch(now);
            stats.rotations += 1;
            let Some(parent) = self.entries[i].parent else {
                continue;
            };
            // The export's context stamps the parent-side re-aggregation,
            // linking the two levels into one lineage tree.
            let mut absorb_span = match export_span.context() {
                Some(ctx) => {
                    let mut s = self.tracer.span_in(ctx, "absorb");
                    s.annotate("store", self.entries[parent].store.name());
                    s
                }
                None => TraceSpan::disabled(),
            };
            let (from, to) = (self.entries[i].net, self.entries[parent].net);
            let mut level_bytes = 0u64;
            let (mut absorbed, mut imported) = (0u64, 0u64);
            for summary in exported {
                let bytes = summary.wire_size() as u64;
                self.network
                    .transfer(from, to, bytes, now)
                    .expect("hierarchy stores must be connected");
                stats.exported_summaries += 1;
                stats.exported_bytes += bytes;
                level_bytes += bytes;
                export_span.add_bytes(bytes);
                export_span.add_records(1);
                if absorb(&mut self.entries[parent].store, &summary) {
                    stats.absorbed += 1;
                    absorbed += 1;
                } else {
                    self.entries[parent].store.import_summary(summary, now);
                    imported += 1;
                }
                absorb_span.add_bytes(bytes);
                absorb_span.add_records(1);
            }
            if absorb_span.is_recording() {
                absorb_span.annotate("absorbed", &absorbed.to_string());
                absorb_span.annotate("imported", &imported.to_string());
            }
            if let Some(span) = level_span {
                self.tel
                    .counter(&labeled(
                        "hierarchy.export.bytes_total",
                        "level",
                        &depth.to_string(),
                    ))
                    .add(level_bytes);
                span.finish();
            }
        }
        pump_span.finish();
        stats
    }
}

/// Merges a summary into a compatible live aggregator of `store`, if any:
/// Flowtrees merge with Flowtrees of the same configuration, Space-Saving
/// sketches and exact tables with their counterparts. Returns whether the
/// summary was absorbed (callers typically import it otherwise).
pub fn absorb_summary(store: &mut DataStore, summary: &StoredSummary) -> bool {
    absorb(store, summary)
}

fn absorb(store: &mut DataStore, summary: &StoredSummary) -> bool {
    for id in store.aggregator_ids() {
        let Some(inst) = store.aggregator_mut(id) else {
            continue;
        };
        match (inst, &summary.summary) {
            (AggregatorInstance::Flowtree(mine), Summary::Flowtree(theirs))
                if mine.config().compatible_with(theirs.config()) =>
            {
                mine.merge(theirs);
                return true;
            }
            (AggregatorInstance::TopFlows { sketch, .. }, Summary::TopFlows(theirs)) => {
                sketch.combine(theirs);
                return true;
            }
            (AggregatorInstance::TimeBins(mine), Summary::Bins(theirs)) => {
                mine.absorb(theirs);
                return true;
            }
            (AggregatorInstance::Exact(mine), Summary::Exact(theirs))
                if mine.features() == theirs.features()
                    && mine.score_kind() == theirs.score_kind() =>
            {
                mine.combine(theirs);
                return true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_datastore::{AggregatorSpec, StorageStrategy};
    use megastream_flow::key::FlowKey;
    use megastream_flow::time::TimeDelta;
    use megastream_flowtree::FlowtreeConfig;
    use megastream_netsim::topology::{LinkSpec, NodeKind};

    fn store(name: &str, epoch_secs: u64) -> DataStore {
        let mut s = DataStore::new(
            name,
            StorageStrategy::RoundRobin {
                budget_bytes: 10 << 20,
            },
            TimeDelta::from_secs(epoch_secs),
        );
        s.install_aggregator(AggregatorSpec::Flowtree(
            FlowtreeConfig::default().with_capacity(4096),
        ));
        s
    }

    fn rec(src: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 5000)
            .dst("1.1.1.1".parse().unwrap(), 443)
            .packets(packets)
            .build()
    }

    /// Two leaves under one parent.
    fn two_level() -> (StoreHierarchy, HierarchyId, HierarchyId, HierarchyId) {
        let mut net = Network::new();
        let parent_n = net.add_node("parent", NodeKind::DataStore);
        let a_n = net.add_node("a", NodeKind::DataStore);
        let b_n = net.add_node("b", NodeKind::DataStore);
        net.connect(a_n, parent_n, LinkSpec::lan_1g());
        net.connect(b_n, parent_n, LinkSpec::lan_1g());
        let mut h = StoreHierarchy::new(net);
        let root = h.add_root(store("parent", 120), parent_n);
        let a = h.add_child(store("a", 60), a_n, root);
        let b = h.add_child(store("b", 60), b_n, root);
        (h, root, a, b)
    }

    #[test]
    fn pump_exports_and_absorbs() {
        let (mut h, root, a, b) = two_level();
        h.ingest_flow(
            a,
            &"ra".into(),
            &rec("10.0.0.1", 5),
            Timestamp::from_secs(10),
        );
        h.ingest_flow(
            b,
            &"rb".into(),
            &rec("10.1.0.1", 7),
            Timestamp::from_secs(10),
        );
        let stats = h.pump(Timestamp::from_secs(60));
        assert_eq!(stats.rotations, 2);
        assert_eq!(stats.exported_summaries, 2);
        assert_eq!(stats.absorbed, 2);
        assert!(stats.exported_bytes > 0);
        // Parent's live flowtree merged both children.
        assert_eq!(h.store(root).live_flow_score(&FlowKey::root()).value(), 12);
        // Network accounted the transfers.
        assert_eq!(h.network().total_bytes(), stats.exported_bytes);
        assert_eq!(h.network().transfer_count(), 2);
    }

    #[test]
    fn parent_epoch_produces_combined_summary() {
        let (mut h, root, a, b) = two_level();
        for t in [10u64, 70] {
            h.ingest_flow(
                a,
                &"ra".into(),
                &rec("10.0.0.1", 5),
                Timestamp::from_secs(t),
            );
            h.ingest_flow(
                b,
                &"rb".into(),
                &rec("10.1.0.1", 7),
                Timestamp::from_secs(t),
            );
            h.pump(Timestamp::from_secs(t + 50));
        }
        // The t=120 pump closed the parent epoch right after absorbing the
        // children's second exports (children rotate first within a pump).
        let total: u64 = h
            .store(root)
            .summaries()
            .iter()
            .filter_map(|s| match &s.summary {
                Summary::Flowtree(t) => Some(t.total().value()),
                _ => None,
            })
            .sum();
        assert_eq!(total, 24, "parent summary should combine both epochs");
    }

    #[test]
    fn rate_reduction_across_levels() {
        let (mut h, _root, a, b) = two_level();
        for i in 0..2_000u32 {
            let t = Timestamp::from_micros(i as u64 * 25_000);
            h.ingest_flow(a, &"ra".into(), &rec(&format!("10.0.{}.1", i % 50), 1), t);
            h.ingest_flow(b, &"rb".into(), &rec(&format!("10.1.{}.1", i % 50), 1), t);
        }
        let stats = h.pump(Timestamp::from_secs(60));
        let raw: u64 = [a, b].iter().map(|id| h.store(*id).stats().raw_bytes).sum();
        assert!(
            stats.exported_bytes < raw / 2,
            "summaries ({}) not smaller than raw stream ({raw})",
            stats.exported_bytes
        );
    }

    #[test]
    fn incompatible_summary_is_imported_not_absorbed() {
        let mut net = Network::new();
        let p = net.add_node("p", NodeKind::DataStore);
        let c = net.add_node("c", NodeKind::DataStore);
        net.connect(p, c, LinkSpec::lan_1g());
        let mut h = StoreHierarchy::new(net);
        // Parent has no aggregator at all.
        let parent_store = DataStore::new(
            "p",
            StorageStrategy::RoundRobin {
                budget_bytes: 1 << 20,
            },
            TimeDelta::from_secs(3600),
        );
        let root = h.add_root(parent_store, p);
        let child = h.add_child(store("c", 60), c, root);
        h.ingest_flow(
            child,
            &"r".into(),
            &rec("10.0.0.1", 5),
            Timestamp::from_secs(1),
        );
        let stats = h.pump(Timestamp::from_secs(60));
        assert_eq!(stats.absorbed, 0);
        assert_eq!(h.store(root).summaries().len(), 1);
    }

    #[test]
    fn trigger_events_surface_at_ingest() {
        use megastream_datastore::trigger::TriggerCondition;
        let (mut h, _root, a, _b) = two_level();
        h.store_mut(a).install_trigger(
            "app",
            TriggerCondition::ScalarAbove {
                stream: "m/temp".into(),
                threshold: 50.0,
            },
            TimeDelta::ZERO,
        );
        let events = h.ingest_scalar(a, &"m/temp".into(), 60.0, Timestamp::ZERO);
        assert_eq!(events.len(), 1);
    }
}
