//! The **Controller**: "resolve conflicts & decide" (paper §III-A).
//!
//! > "For operating at production speed, machines may not be able to wait
//! > for input from applications. Yet, some validation may be necessary to
//! > avoid failures, e.g., raising a robot arm beyond its highest point. …
//! > The logic for the controller is installed and updated by individual
//! > applications but are checked for conflicts by the controller prior to
//! > installation."

use std::fmt;

use megastream_datastore::trigger::{TriggerEvent, TriggerId};
use megastream_flow::key::FlowKey;
use megastream_flow::time::Timestamp;

/// Identifier of an installed control rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(usize);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule{}", self.0)
    }
}

/// An action the controller can take on the physical process.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlAction {
    /// Emergency-stop the machine.
    Stop,
    /// Reduce the machine's operating speed to `factor ∈ (0, 1)` of
    /// nominal.
    SlowDown {
        /// Target speed as a fraction of nominal.
        factor: f64,
    },
    /// Install a rate limit on traffic matching `key` (network use case).
    RateLimit {
        /// Traffic to limit.
        key: FlowKey,
    },
    /// Raise an operator alert without touching the process.
    Alert {
        /// Human-readable message.
        message: String,
    },
}

impl ControlAction {
    /// Whether two actions contradict each other (cannot both be applied
    /// in response to the same trigger).
    pub fn conflicts_with(&self, other: &ControlAction) -> bool {
        matches!(
            (self, other),
            (ControlAction::Stop, ControlAction::SlowDown { .. })
                | (ControlAction::SlowDown { .. }, ControlAction::Stop)
        ) || (matches!(self, ControlAction::SlowDown { .. })
            && matches!(other, ControlAction::SlowDown { .. })
            && self != other)
    }
}

/// A control rule: when `trigger` fires, perform `action`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The rule's id.
    pub id: RuleId,
    /// The installing application.
    pub app: String,
    /// Which trigger activates the rule.
    pub trigger: TriggerId,
    /// What to do.
    pub action: ControlAction,
    /// Higher priority wins when several rules match one firing.
    pub priority: u8,
}

/// Static limits the controller enforces on every actuation — the paper's
/// "some validation may be necessary to avoid failures".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyEnvelope {
    /// Whether emergency stops are permitted at all.
    pub allow_stop: bool,
    /// Slow-down factors are clamped to at least this value.
    pub min_speed_factor: f64,
}

impl Default for SafetyEnvelope {
    fn default() -> Self {
        SafetyEnvelope {
            allow_stop: true,
            min_speed_factor: 0.1,
        }
    }
}

/// One executed actuation.
#[derive(Debug, Clone, PartialEq)]
pub struct Actuation {
    /// When it happened.
    pub at: Timestamp,
    /// Which rule caused it.
    pub rule: RuleId,
    /// The installing application.
    pub app: String,
    /// The action taken (after safety clamping).
    pub action: ControlAction,
    /// The trigger event that caused it.
    pub cause: TriggerEvent,
}

/// Error installing a rule.
#[derive(Debug, Clone, PartialEq)]
pub enum InstallError {
    /// The new rule conflicts with an existing rule on the same trigger at
    /// the same priority.
    Conflict {
        /// The already-installed conflicting rule.
        existing: RuleId,
    },
    /// The action violates the safety envelope outright.
    UnsafeAction(String),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Conflict { existing } => {
                write!(f, "rule conflicts with already-installed {existing}")
            }
            InstallError::UnsafeAction(why) => write!(f, "action violates safety envelope: {why}"),
        }
    }
}

impl std::error::Error for InstallError {}

/// The local control logic attached to one machine / network element.
#[derive(Debug, Clone)]
pub struct Controller {
    name: String,
    envelope: SafetyEnvelope,
    rules: Vec<Rule>,
    next_id: usize,
    log: Vec<Actuation>,
}

impl Controller {
    /// Creates a controller named `name` with the given safety envelope.
    pub fn new(name: impl Into<String>, envelope: SafetyEnvelope) -> Self {
        Controller {
            name: name.into(),
            envelope,
            rules: Vec::new(),
            next_id: 0,
            log: Vec::new(),
        }
    }

    /// The controller's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a rule after checking it for conflicts ("checked for
    /// conflicts by the controller prior to installation").
    ///
    /// # Errors
    ///
    /// * [`InstallError::Conflict`] if an existing rule on the same trigger
    ///   at the same priority prescribes a contradictory action,
    /// * [`InstallError::UnsafeAction`] if the action can never satisfy the
    ///   safety envelope (e.g. `Stop` when stops are disallowed).
    pub fn install_rule(
        &mut self,
        app: impl Into<String>,
        trigger: TriggerId,
        action: ControlAction,
        priority: u8,
    ) -> Result<RuleId, InstallError> {
        if matches!(action, ControlAction::Stop) && !self.envelope.allow_stop {
            return Err(InstallError::UnsafeAction(
                "emergency stop disabled by envelope".into(),
            ));
        }
        for existing in &self.rules {
            if existing.trigger == trigger
                && existing.priority == priority
                && existing.action.conflicts_with(&action)
            {
                return Err(InstallError::Conflict {
                    existing: existing.id,
                });
            }
        }
        let id = RuleId(self.next_id);
        self.next_id += 1;
        self.rules.push(Rule {
            id,
            app: app.into(),
            trigger,
            action,
            priority,
        });
        Ok(id)
    }

    /// Removes a rule. Returns whether it existed.
    pub fn remove_rule(&mut self, id: RuleId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        before != self.rules.len()
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Handles a trigger firing: selects the highest-priority matching rule
    /// (ties broken by installation order — "conflicts between rules are
    /// resolved locally at the controller"), clamps the action to the
    /// safety envelope, logs and returns the actuation.
    pub fn on_trigger(&mut self, event: &TriggerEvent) -> Option<Actuation> {
        let rule = self
            .rules
            .iter()
            .filter(|r| r.trigger == event.trigger)
            .max_by(|a, b| a.priority.cmp(&b.priority).then(b.id.cmp(&a.id)))?
            .clone();
        let action = self.clamp(rule.action.clone());
        let actuation = Actuation {
            at: event.at,
            rule: rule.id,
            app: rule.app.clone(),
            action,
            cause: event.clone(),
        };
        self.log.push(actuation.clone());
        Some(actuation)
    }

    /// Applies the safety envelope to an action.
    fn clamp(&self, action: ControlAction) -> ControlAction {
        match action {
            ControlAction::SlowDown { factor } => ControlAction::SlowDown {
                factor: factor.max(self.envelope.min_speed_factor).min(1.0),
            },
            other => other,
        }
    }

    /// The actuation log, oldest first.
    pub fn log(&self) -> &[Actuation] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_datastore::trigger::{TriggerCondition, TriggerEngine};
    use megastream_flow::time::TimeDelta;

    fn event(trigger: TriggerId) -> TriggerEvent {
        TriggerEvent {
            trigger,
            installed_by: "app".into(),
            at: Timestamp::from_secs(1),
            observed: 99.0,
        }
    }

    /// Builds a real TriggerId by installing into an engine.
    fn trigger_id(engine: &mut TriggerEngine) -> TriggerId {
        engine.install(
            "app",
            TriggerCondition::ScalarAbove {
                stream: "m/temp".into(),
                threshold: 80.0,
            },
            TimeDelta::ZERO,
        )
    }

    #[test]
    fn install_and_actuate() {
        let mut engine = TriggerEngine::new();
        let t = trigger_id(&mut engine);
        let mut c = Controller::new("machine-0", SafetyEnvelope::default());
        let r = c
            .install_rule("maintenance", t, ControlAction::SlowDown { factor: 0.5 }, 1)
            .unwrap();
        let act = c.on_trigger(&event(t)).unwrap();
        assert_eq!(act.rule, r);
        assert_eq!(act.action, ControlAction::SlowDown { factor: 0.5 });
        assert_eq!(c.log().len(), 1);
    }

    #[test]
    fn priority_resolves_between_rules() {
        let mut engine = TriggerEngine::new();
        let t = trigger_id(&mut engine);
        let mut c = Controller::new("m", SafetyEnvelope::default());
        c.install_rule(
            "a",
            t,
            ControlAction::Alert {
                message: "hm".into(),
            },
            1,
        )
        .unwrap();
        let stop = c.install_rule("b", t, ControlAction::Stop, 9).unwrap();
        let act = c.on_trigger(&event(t)).unwrap();
        assert_eq!(act.rule, stop);
        assert_eq!(act.action, ControlAction::Stop);
    }

    #[test]
    fn conflicting_rule_rejected_at_install() {
        let mut engine = TriggerEngine::new();
        let t = trigger_id(&mut engine);
        let mut c = Controller::new("m", SafetyEnvelope::default());
        let first = c.install_rule("a", t, ControlAction::Stop, 5).unwrap();
        let err = c
            .install_rule("b", t, ControlAction::SlowDown { factor: 0.5 }, 5)
            .unwrap_err();
        assert_eq!(err, InstallError::Conflict { existing: first });
        // Different priority is not a conflict (resolution is well-defined).
        assert!(c
            .install_rule("b", t, ControlAction::SlowDown { factor: 0.5 }, 4)
            .is_ok());
        // Non-contradictory actions coexist at the same priority.
        assert!(c
            .install_rule(
                "c",
                t,
                ControlAction::Alert {
                    message: "x".into()
                },
                5
            )
            .is_ok());
    }

    #[test]
    fn envelope_clamps_and_rejects() {
        let mut engine = TriggerEngine::new();
        let t = trigger_id(&mut engine);
        let mut c = Controller::new(
            "m",
            SafetyEnvelope {
                allow_stop: false,
                min_speed_factor: 0.4,
            },
        );
        assert!(matches!(
            c.install_rule("a", t, ControlAction::Stop, 1),
            Err(InstallError::UnsafeAction(_))
        ));
        c.install_rule("a", t, ControlAction::SlowDown { factor: 0.01 }, 1)
            .unwrap();
        let act = c.on_trigger(&event(t)).unwrap();
        assert_eq!(act.action, ControlAction::SlowDown { factor: 0.4 });
    }

    #[test]
    fn unmatched_trigger_does_nothing() {
        let mut engine = TriggerEngine::new();
        let t1 = trigger_id(&mut engine);
        let t2 = trigger_id(&mut engine);
        let mut c = Controller::new("m", SafetyEnvelope::default());
        c.install_rule("a", t1, ControlAction::Stop, 1).unwrap();
        assert!(c.on_trigger(&event(t2)).is_none());
        assert!(c.log().is_empty());
    }

    #[test]
    fn remove_rule() {
        let mut engine = TriggerEngine::new();
        let t = trigger_id(&mut engine);
        let mut c = Controller::new("m", SafetyEnvelope::default());
        let r = c.install_rule("a", t, ControlAction::Stop, 1).unwrap();
        assert!(c.remove_rule(r));
        assert!(!c.remove_rule(r));
        assert!(c.on_trigger(&event(t)).is_none());
    }

    #[test]
    fn conflict_semantics() {
        let stop = ControlAction::Stop;
        let slow = ControlAction::SlowDown { factor: 0.5 };
        let slow2 = ControlAction::SlowDown { factor: 0.7 };
        let alert = ControlAction::Alert {
            message: "m".into(),
        };
        assert!(stop.conflicts_with(&slow));
        assert!(slow.conflicts_with(&stop));
        assert!(slow.conflicts_with(&slow2));
        assert!(!slow.conflicts_with(&slow.clone()));
        assert!(!stop.conflicts_with(&alert));
    }
}
