//! **Applications**: "model & learn" (paper §III-A).
//!
//! > "Each application embodies the decision logic for a single purpose. …
//! > They function as an interface to the users to gather information from
//! > the data stores."
//!
//! The [`Application`] trait consumes data summaries and emits
//! [`AppDirective`]s — requests to install triggers/rules, maintenance
//! schedules, mitigations, or plain reports. Three applications from the
//! paper's motivation are implemented:
//!
//! * [`PredictiveMaintenanceApp`] — §II-A (a): trend analysis on machine
//!   sensor summaries, predicting when a channel will cross its limit,
//! * [`DdosDetectionApp`] — §II-B (c): hierarchical-heavy-hitter analysis
//!   of flow summaries to spot volumetric attacks,
//! * [`TrafficMatrixApp`] — §II-B (b): prefix-level traffic matrices "for
//!   planning network upgrades".

use std::collections::{HashMap, HashSet};

use megastream_analytics::inference::LinearTrend;
use megastream_datastore::summary::{StoredSummary, Summary};
use megastream_datastore::trigger::TriggerCondition;
use megastream_flow::addr::Prefix;
use megastream_flow::key::{Feature, FlowKey};
use megastream_flow::score::Popularity;
use megastream_flow::time::{TimeDelta, Timestamp};

/// A request an application makes of the rest of the architecture.
#[derive(Debug, Clone, PartialEq)]
pub enum AppDirective {
    /// A human-readable finding ("forward the data for monitoring or
    /// reporting purposes").
    Report(String),
    /// Schedule maintenance for a machine before `eta`.
    ScheduleMaintenance {
        /// The machine predicted to fail.
        machine: usize,
        /// The channel whose trend predicts the failure.
        channel: String,
        /// Predicted limit-crossing time.
        eta: Timestamp,
    },
    /// Ask the controller to mitigate traffic matching `key`.
    MitigateFlow {
        /// The traffic to mitigate.
        key: FlowKey,
        /// Why.
        reason: String,
    },
    /// Ask the data store to install a trigger (the application's fast
    /// path for "simple conditions that need real-time reactions").
    RequestTrigger {
        /// The condition to watch.
        condition: TriggerCondition,
        /// Debounce period.
        cooldown: TimeDelta,
    },
}

/// An application consuming data summaries.
pub trait Application {
    /// The application's name (used when installing triggers/rules).
    fn name(&self) -> &str;

    /// Feeds one summary; returns any directives.
    fn on_summary(&mut self, summary: &StoredSummary, now: Timestamp) -> Vec<AppDirective>;
}

/// Parses a sensor stream name of the form `machine-<m>/<channel>`.
fn parse_sensor_stream(stream: &str) -> Option<(usize, &str)> {
    let (machine_part, channel) = stream.split_once('/')?;
    let m = machine_part.strip_prefix("machine-")?.parse().ok()?;
    Some((m, channel))
}

/// Predictive maintenance (paper §II-A application (a)): fits a linear
/// trend to each machine channel's per-epoch means and predicts when the
/// channel crosses its limit. When the predicted crossing falls within the
/// planning horizon, it schedules maintenance and installs a guard trigger.
#[derive(Debug, Clone)]
pub struct PredictiveMaintenanceApp {
    /// Channel name → hard limit.
    limits: HashMap<String, f64>,
    /// Planning horizon: failures predicted after `now + horizon` are
    /// ignored (the trend may still change).
    horizon: TimeDelta,
    /// Per (machine, channel) history of epoch means.
    history: HashMap<(usize, String), Vec<(Timestamp, f64)>>,
    /// Machines already scheduled (avoid duplicate work orders).
    scheduled: HashSet<(usize, String)>,
    window: usize,
    /// Minimum history points before a trend is trusted (short fits on
    /// noisy channels produce spurious slopes).
    min_points: usize,
}

impl PredictiveMaintenanceApp {
    /// Creates the application with default limits (temperature 85 °C,
    /// vibration 4 mm/s, current 20 A) and the given horizon.
    pub fn new(horizon: TimeDelta) -> Self {
        let mut limits = HashMap::new();
        limits.insert("temperature".to_owned(), 85.0);
        limits.insert("vibration".to_owned(), 4.0);
        limits.insert("current".to_owned(), 20.0);
        PredictiveMaintenanceApp {
            limits,
            horizon,
            history: HashMap::new(),
            scheduled: HashSet::new(),
            window: 60,
            min_points: 30,
        }
    }

    /// Overrides the minimum number of history points required before a
    /// trend is trusted (default 30).
    pub fn set_min_points(&mut self, min_points: usize) {
        self.min_points = min_points.max(2);
    }

    /// Overrides the limit of one channel.
    pub fn set_limit(&mut self, channel: impl Into<String>, limit: f64) {
        self.limits.insert(channel.into(), limit);
    }

    /// Machines currently scheduled for maintenance.
    pub fn scheduled(&self) -> impl Iterator<Item = &(usize, String)> {
        self.scheduled.iter()
    }
}

impl Application for PredictiveMaintenanceApp {
    fn name(&self) -> &str {
        "predictive-maintenance"
    }

    fn on_summary(&mut self, summary: &StoredSummary, now: Timestamp) -> Vec<AppDirective> {
        let Summary::Bins(bins) = &summary.summary else {
            return Vec::new();
        };
        // Which machine/channel does this summary describe? The lineage
        // names the contributing streams.
        let mut keys: Vec<(usize, String)> = summary
            .lineage
            .sources
            .iter()
            .filter_map(|s| parse_sensor_stream(s))
            .map(|(m, c)| (m, c.to_owned()))
            .collect();
        keys.dedup();
        let Some((machine, channel)) = keys.first().cloned() else {
            return Vec::new();
        };
        if keys.len() > 1 {
            // Ambiguous summary (multiple machines merged) — trends would
            // mix machines; skip.
            return Vec::new();
        }
        let Some(&limit) = self.limits.get(&channel) else {
            return Vec::new();
        };
        let history = self.history.entry((machine, channel.clone())).or_default();
        for (ts, stats) in bins.iter() {
            if let Some(mean) = stats.mean() {
                history.push((ts, mean));
            }
        }
        let window = self.window;
        if history.len() > window {
            let start = history.len() - window;
            history.drain(..start);
        }
        if history.len() < self.min_points {
            return Vec::new();
        }
        let Some(trend) = LinearTrend::fit(history) else {
            return Vec::new();
        };
        // Guard against noise-induced slopes: the drift must be both
        // practically meaningful (a fraction of the limit per second) and
        // statistically significant (t-statistic of the fitted slope).
        let min_slope = limit * 1e-4;
        if trend.slope < min_slope {
            return Vec::new();
        }
        match trend.slope_stderr(history) {
            Some(stderr) if trend.slope > 6.0 * stderr => {}
            _ => return Vec::new(),
        }
        let mut out = Vec::new();
        if let Some(eta) = trend.time_to_threshold(limit) {
            if eta >= now
                && eta <= now + self.horizon
                && self.scheduled.insert((machine, channel.clone()))
            {
                out.push(AppDirective::Report(format!(
                    "machine-{machine} {channel} trending to limit {limit} at {eta} \
                     (slope {:+.4}/s)",
                    trend.slope
                )));
                out.push(AppDirective::ScheduleMaintenance {
                    machine,
                    channel: channel.clone(),
                    eta,
                });
                out.push(AppDirective::RequestTrigger {
                    condition: TriggerCondition::ScalarAbove {
                        stream: format!("machine-{machine}/{channel}").as_str().into(),
                        threshold: limit,
                    },
                    cooldown: TimeDelta::from_secs(30),
                });
            }
        }
        out
    }
}

/// DDoS investigation (paper §II-B application (c)): inspects flow
/// summaries for destinations receiving traffic above a threshold from a
/// broadly generalized source population, and asks for mitigation.
#[derive(Debug, Clone)]
pub struct DdosDetectionApp {
    /// Minimum popularity score within one summary to call it an attack.
    threshold: Popularity,
    /// Victims already reported.
    reported: HashSet<FlowKey>,
}

impl DdosDetectionApp {
    /// Creates the detector with a per-summary score threshold.
    pub fn new(threshold: Popularity) -> Self {
        DdosDetectionApp {
            threshold,
            reported: HashSet::new(),
        }
    }

    /// Victim keys reported so far.
    pub fn victims(&self) -> impl Iterator<Item = &FlowKey> {
        self.reported.iter()
    }
}

impl Application for DdosDetectionApp {
    fn name(&self) -> &str {
        "ddos-detection"
    }

    fn on_summary(&mut self, summary: &StoredSummary, _now: Timestamp) -> Vec<AppDirective> {
        let Summary::Flowtree(tree) = &summary.summary else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for item in tree.hhh(self.threshold) {
            let dst = item.key.field(Feature::DstIp);
            let src = item.key.field(Feature::SrcIp);
            // Attack signature: heavy mass whose source side is fully
            // generalized (spoofed/spread sources) while the destination
            // side keeps structure.
            if src.len() <= 8 && dst.len() >= 8 && dst.len() > src.len() {
                // Drill down to the concrete victim host: extend the
                // destination prefix while a single /32 still carries the
                // mass (the paper's interactive-investigation workflow,
                // automated).
                let Some(victim_prefix) =
                    refine_victim(tree, item.key.dst_prefix(), self.threshold)
                else {
                    continue;
                };
                let victim = FlowKey::root().with_dst_prefix(victim_prefix);
                if self.reported.insert(victim) {
                    out.push(AppDirective::Report(format!(
                        "suspected DDoS on {victim_prefix} (score {})",
                        item.discounted
                    )));
                    out.push(AppDirective::MitigateFlow {
                        key: victim,
                        reason: format!("HHH score {} above {}", item.discounted, self.threshold),
                    });
                    out.push(AppDirective::RequestTrigger {
                        condition: TriggerCondition::FlowScoreAbove {
                            key: victim,
                            threshold: self.threshold,
                            window_len: TimeDelta::from_secs(10),
                        },
                        cooldown: TimeDelta::from_secs(60),
                    });
                }
            }
        }
        out
    }
}

/// Refines a suspect destination prefix down to a single host: at each
/// step, extend the mask by 8 bits to the candidate carrying the most
/// score; succeed only if a /32 still exceeds `threshold` (a volumetric
/// attack has one victim; diffuse popularity does not refine).
fn refine_victim(
    tree: &megastream_flowtree::Flowtree,
    start: Prefix,
    threshold: Popularity,
) -> Option<Prefix> {
    let mut cur = start;
    while cur.len() < 32 {
        let next_len = cur.len() + 8;
        // Candidate refinements observed in the tree.
        let mut candidates: HashSet<Prefix> = HashSet::new();
        for node in tree.nodes() {
            let dst = node.key.field(Feature::DstIp);
            if dst.len() >= next_len {
                let p = node.key.dst_prefix().generalized(next_len);
                if cur.contains(p) {
                    candidates.insert(p);
                }
            }
        }
        let best = candidates
            .into_iter()
            .map(|p| (tree.query(&FlowKey::root().with_dst_prefix(p)), p))
            .max_by_key(|(score, _)| *score)?;
        if best.0 < threshold {
            return None;
        }
        cur = best.1;
    }
    Some(cur)
}

/// Prefix-level traffic matrices (paper §II-B application (b)): aggregates
/// flow-summary mass into `(src /p, dst /p)` cells, usable "for planning
/// network upgrades".
#[derive(Debug, Clone)]
pub struct TrafficMatrixApp {
    prefix_len: u8,
    matrix: HashMap<(Prefix, Prefix), u64>,
}

impl TrafficMatrixApp {
    /// Creates the application aggregating at `/prefix_len` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len` is 0 or exceeds 32.
    pub fn new(prefix_len: u8) -> Self {
        assert!((1..=32).contains(&prefix_len), "prefix length out of range");
        TrafficMatrixApp {
            prefix_len,
            matrix: HashMap::new(),
        }
    }

    /// The accumulated matrix.
    pub fn matrix(&self) -> &HashMap<(Prefix, Prefix), u64> {
        &self.matrix
    }

    /// Total mass attributed to matrix cells.
    pub fn total(&self) -> u64 {
        self.matrix.values().sum()
    }

    /// The `k` heaviest cells, descending.
    pub fn top_cells(&self, k: usize) -> Vec<((Prefix, Prefix), u64)> {
        let mut cells: Vec<((Prefix, Prefix), u64)> =
            self.matrix.iter().map(|(k, v)| (*k, *v)).collect();
        cells.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        cells.truncate(k);
        cells
    }
}

impl Application for TrafficMatrixApp {
    fn name(&self) -> &str {
        "traffic-matrix"
    }

    fn on_summary(&mut self, summary: &StoredSummary, _now: Timestamp) -> Vec<AppDirective> {
        let Summary::Flowtree(tree) = &summary.summary else {
            return Vec::new();
        };
        // Each node's own score counts once; only nodes specific enough on
        // both sides can be attributed to a cell (mass compressed above
        // that granularity is dropped — an explicit approximation).
        let mut attributed = 0u64;
        for node in tree.nodes() {
            if node.own_score.is_zero() {
                continue;
            }
            let src = node.key.field(Feature::SrcIp);
            let dst = node.key.field(Feature::DstIp);
            if src.len() >= self.prefix_len && dst.len() >= self.prefix_len {
                let cell = (
                    node.key.src_prefix().generalized(self.prefix_len),
                    node.key.dst_prefix().generalized(self.prefix_len),
                );
                *self.matrix.entry(cell).or_default() += node.own_score.value();
                attributed += node.own_score.value();
            }
        }
        vec![AppDirective::Report(format!(
            "traffic-matrix: attributed {attributed} of {} from {} ({} cells total)",
            tree.total(),
            summary.source,
            self.matrix.len()
        ))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_datastore::summary::Lineage;
    use megastream_flow::record::FlowRecord;
    use megastream_flow::time::TimeWindow;
    use megastream_flowtree::{Flowtree, FlowtreeConfig};
    use megastream_primitives::aggregator::ComputingPrimitive;
    use megastream_primitives::timebin::TimeBinStats;

    fn bins_summary(machine: usize, channel: &str, values: &[(u64, f64)]) -> StoredSummary {
        let mut agg = TimeBinStats::new(TimeDelta::from_secs(60), 1);
        for (sec, v) in values {
            agg.ingest(v, Timestamp::from_secs(*sec));
        }
        let window = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_hours(2));
        StoredSummary::new(
            "line-0/agg0",
            window,
            Summary::Bins(agg.snapshot(window)),
            Lineage::from_source(format!("machine-{machine}/{channel}")),
        )
    }

    #[test]
    fn maintenance_predicts_rising_trend() {
        let mut app = PredictiveMaintenanceApp::new(TimeDelta::from_hours(24));
        app.set_min_points(10);
        // Temperature rising 1°/min from 60: crosses 85 at minute 25.
        let values: Vec<(u64, f64)> = (0..10).map(|i| (i * 60, 60.0 + i as f64)).collect();
        let directives = app.on_summary(&bins_summary(3, "temperature", &values), Timestamp::ZERO);
        assert!(
            directives
                .iter()
                .any(|d| matches!(d, AppDirective::ScheduleMaintenance { machine: 3, .. })),
            "no maintenance scheduled: {directives:?}"
        );
        let eta = directives
            .iter()
            .find_map(|d| match d {
                AppDirective::ScheduleMaintenance { eta, .. } => Some(*eta),
                _ => None,
            })
            .unwrap();
        assert!((eta.as_secs_f64() - 25.0 * 60.0).abs() < 120.0, "eta {eta}");
        // A trigger guard is requested too.
        assert!(directives
            .iter()
            .any(|d| matches!(d, AppDirective::RequestTrigger { .. })));
        // Feeding the same trend again does not duplicate the schedule.
        let again = app.on_summary(&bins_summary(3, "temperature", &values), Timestamp::ZERO);
        assert!(again.is_empty());
    }

    #[test]
    fn maintenance_ignores_healthy_and_far_future() {
        let mut app = PredictiveMaintenanceApp::new(TimeDelta::from_mins(10));
        app.set_min_points(10);
        // Flat trend.
        let flat: Vec<(u64, f64)> = (0..10).map(|i| (i * 60, 60.0)).collect();
        assert!(app
            .on_summary(&bins_summary(0, "temperature", &flat), Timestamp::ZERO)
            .is_empty());
        // Rising but crossing far beyond the 10-minute horizon.
        let slow: Vec<(u64, f64)> = (0..10).map(|i| (i * 60, 60.0 + i as f64 * 0.01)).collect();
        assert!(app
            .on_summary(&bins_summary(1, "temperature", &slow), Timestamp::ZERO)
            .is_empty());
    }

    #[test]
    fn maintenance_ignores_non_bins_and_unknown_streams() {
        let mut app = PredictiveMaintenanceApp::new(TimeDelta::from_hours(1));
        let tree = Flowtree::new(FlowtreeConfig::default());
        let w = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60));
        let s = StoredSummary::new(
            "x",
            w,
            Summary::Flowtree(tree),
            Lineage::from_source("machine-0/temperature"),
        );
        assert!(app.on_summary(&s, Timestamp::ZERO).is_empty());
        // Bins but unparsable stream name.
        let mut bins = bins_summary(0, "temperature", &[(0, 99.0)]);
        bins.lineage = Lineage::from_source("weird-stream");
        assert!(app.on_summary(&bins, Timestamp::ZERO).is_empty());
    }

    fn flow_summary(records: &[FlowRecord]) -> StoredSummary {
        let mut tree = Flowtree::new(FlowtreeConfig::default().with_capacity(8192));
        for r in records {
            tree.observe(r);
        }
        let w = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60));
        StoredSummary::new(
            "region-0/agg0",
            w,
            Summary::Flowtree(tree),
            Lineage::from_source("router-0"),
        )
    }

    #[test]
    fn ddos_detects_spread_sources_on_one_victim() {
        let mut app = DdosDetectionApp::new(Popularity::new(500));
        // 200 random sources × 5 packets on one victim.
        let records: Vec<FlowRecord> = (0..200u32)
            .map(|i| {
                FlowRecord::builder()
                    .proto(17)
                    .src(
                        format!("{}.{}.{}.{}", 1 + i % 200, i % 251, i % 241, i % 254)
                            .parse()
                            .unwrap(),
                        9999,
                    )
                    .dst("100.64.0.1".parse().unwrap(), 53)
                    .packets(5)
                    .build()
            })
            .collect();
        let directives = app.on_summary(&flow_summary(&records), Timestamp::ZERO);
        assert!(
            directives
                .iter()
                .any(|d| matches!(d, AppDirective::MitigateFlow { .. })),
            "no mitigation: {directives:?}"
        );
        assert_eq!(app.victims().count(), 1);
        // Re-reporting the same victim is suppressed.
        assert!(app
            .on_summary(&flow_summary(&records), Timestamp::ZERO)
            .is_empty());
    }

    #[test]
    fn ddos_ignores_ordinary_elephants() {
        let mut app = DdosDetectionApp::new(Popularity::new(500));
        // One heavy flow from a single source: src stays specific, so the
        // HHH item carrying the mass has src len 32 at the leaf — no
        // spread-source signature.
        let records = vec![FlowRecord::builder()
            .proto(6)
            .src("10.0.0.1".parse().unwrap(), 80)
            .dst("100.64.0.1".parse().unwrap(), 443)
            .packets(10_000)
            .build()];
        let directives = app.on_summary(&flow_summary(&records), Timestamp::ZERO);
        assert!(
            !directives
                .iter()
                .any(|d| matches!(d, AppDirective::MitigateFlow { .. })),
            "false positive: {directives:?}"
        );
    }

    #[test]
    fn traffic_matrix_accumulates_cells() {
        let mut app = TrafficMatrixApp::new(8);
        let records: Vec<FlowRecord> = vec![
            FlowRecord::builder()
                .proto(6)
                .src("10.1.2.3".parse().unwrap(), 80)
                .dst("20.1.1.1".parse().unwrap(), 443)
                .packets(100)
                .build(),
            FlowRecord::builder()
                .proto(6)
                .src("10.9.9.9".parse().unwrap(), 80)
                .dst("20.2.2.2".parse().unwrap(), 443)
                .packets(50)
                .build(),
            FlowRecord::builder()
                .proto(6)
                .src("30.0.0.1".parse().unwrap(), 80)
                .dst("20.1.1.1".parse().unwrap(), 443)
                .packets(7)
                .build(),
        ];
        let directives = app.on_summary(&flow_summary(&records), Timestamp::ZERO);
        assert_eq!(directives.len(), 1);
        let ten_twenty = ("10.0.0.0/8".parse().unwrap(), "20.0.0.0/8".parse().unwrap());
        assert_eq!(app.matrix()[&ten_twenty], 150);
        assert_eq!(app.total(), 157);
        let top = app.top_cells(1);
        assert_eq!(top[0].0, ten_twenty);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn traffic_matrix_rejects_bad_prefix() {
        let _ = TrafficMatrixApp::new(0);
    }
}
