//! **megastream** — an architecture for processing *distributed
//! mega-datasets*, reproducing "Distributed Mega-Datasets: The Need for
//! Novel Computing Primitives" (ICDCS 2019).
//!
//! The paper's four building blocks (Fig. 2a) map onto this workspace:
//!
//! | Building block | Crate / module |
//! |---|---|
//! | Data Store — collect & aggregate | [`megastream_datastore`] |
//! | Analytics — transfer & process | [`megastream_analytics`] |
//! | Application — model & learn | [`application`] |
//! | Controller — resolve conflicts & decide | [`controller`] |
//! | Manager (control plane, Fig. 3b) | [`megastream_manager`] |
//!
//! plus the computing primitives themselves ([`megastream_primitives`],
//! [`megastream_flowtree`]), the FlowDB/FlowQL analytic engine
//! ([`megastream_flowdb`]), adaptive replication
//! ([`megastream_replication`]), the network substrate
//! ([`megastream_netsim`]) and the synthetic workloads
//! ([`megastream_workloads`]).
//!
//! This facade crate adds the pieces that tie a deployment together:
//!
//! * [`controller`] — rule installation, conflict resolution, safety
//!   envelopes, actuation,
//! * [`application`] — the application trait plus the three applications
//!   the paper motivates (predictive maintenance, DDoS investigation,
//!   traffic matrices),
//! * [`hierarchy`] — a hierarchy of data stores bound to a simulated
//!   network, with epoch-driven upward summary export (Fig. 2b),
//! * [`flowstream`] — the complete Flowstream system of Fig. 5
//!   (routers → Flowtree data stores → FlowDB → FlowQL),
//! * [`ops`] — the ops plane: time-series sampling, a rule-driven health
//!   model with hysteresis, and dashboard/JSON/Prometheus exposition.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use megastream::flowstream::{Flowstream, FlowstreamConfig};
//! use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};
//!
//! let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
//! for rec in FlowTraceGenerator::new(FlowTraceConfig::default()).take(5_000) {
//!     fs.ingest_round_robin(&rec);
//! }
//! fs.finish();
//! let result = fs.query("SELECT TOPK 3 FROM ALL")?;
//! assert_eq!(result.rows.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod application;
pub mod controller;
pub mod flowstream;
pub mod hierarchy;
pub mod ops;

pub use application::{AppDirective, Application};
pub use controller::{ControlAction, Controller, Rule, RuleId, SafetyEnvelope};
pub use flowstream::{DegradationPolicy, Explanation, Flowstream, FlowstreamConfig};
pub use hierarchy::{ExportStats, HierarchyId, PumpError, PumpPolicy, StoreHierarchy};
pub use megastream_flowdb::Parallelism;
pub use megastream_storage::{ColdTier, FaultMode, FaultSpec, RecoveryReport, SyncPolicy};
pub use ops::OpsPlane;

// Re-export the member crates under short names for downstream users.
pub use megastream_analytics as analytics;
pub use megastream_datastore as datastore;
pub use megastream_flow as flow;
pub use megastream_flowdb as flowdb;
pub use megastream_flowtree as flowtree;
pub use megastream_manager as manager;
pub use megastream_netsim as netsim;
pub use megastream_primitives as primitives;
pub use megastream_replication as replication;
pub use megastream_storage as storage;
pub use megastream_workloads as workloads;
