//! **Flowstream** — the complete system of paper Fig. 5.
//!
//! > "The router sends its raw flow data to a data store ①. The data store
//! > uses Flowtree as its aggregator to compute summaries ② and potentially
//! > exports these to other data stores ③. The data store can either
//! > further aggregate them or use them ④ to answer user queries via the
//! > FlowQL API ⑤."
//!
//! [`Flowstream`] wires routers (flow sources) to per-region data stores
//! running Flowtree aggregators over an [`IspTopology`], exports each
//! epoch's summaries up to a network-wide store *and* into a [`FlowDb`],
//! and answers FlowQL queries.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Mutex;

use megastream_datastore::store::DataStore;
use megastream_datastore::summary::{StoredSummary, Summary};
use megastream_datastore::trigger::TriggerEvent;
use megastream_datastore::{AggregatorSpec, StorageStrategy};
use megastream_flow::mask::GeneralizationSchema;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::ScoreKind;
use megastream_flow::time::{TimeDelta, Timestamp};
use megastream_flowdb::par::fan_out;
use megastream_flowdb::{FlowDb, Parallelism, QueryResult};
use megastream_flowtree::FlowtreeConfig;
use megastream_netsim::hierarchy::IspTopology;
use megastream_netsim::topology::{Network, NodeId};
use megastream_primitives::SpaceSaving;
use megastream_storage::{
    ColdTier, EpochBundle, EpochMeta, Frame, RecoveryReport, RegionStatsSnapshot, SegmentError,
    SyncPolicy, WalRecord,
};
use megastream_telemetry::{
    labeled, Counter, Gauge, Histogram, ProfileSnapshot, Profiler, ScopedTimer, Snapshot,
    Telemetry, TraceSnapshot, Tracer, LATENCY_MICROS_BOUNDS,
};

use crate::hierarchy::{absorb_summary, jitter_micros, summaries_mergeable};

/// What a fan-out query does when some locations are unreachable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Error with [`FlowstreamError::Unreachable`] if any location the
    /// query needs cannot be reached — never return partial data.
    #[default]
    FailFast,
    /// Answer from the reachable locations and annotate the result's
    /// [`Completeness`](megastream_flowdb::Completeness) — availability
    /// over exactness.
    Partial,
}

/// Configuration of a [`Flowstream`] deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowstreamConfig {
    /// Epoch length of the region data stores.
    pub epoch_len: TimeDelta,
    /// Node budget of each region Flowtree.
    pub tree_capacity: usize,
    /// Popularity measure.
    pub score_kind: ScoreKind,
    /// The generalization schema of all trees — pick it for the task at
    /// hand (property P5): the balanced default alternates source and
    /// destination;
    /// [`GeneralizationSchema::dst_preserving`] keeps victims/services
    /// specific under compression,
    /// [`GeneralizationSchema::src_preserving`] keeps customers specific.
    pub schema: GeneralizationSchema,
    /// Storage strategy of region stores.
    pub storage: StorageStrategy,
    /// What queries do when locations are unreachable.
    pub degradation: DegradationPolicy,
    /// Re-attempts after a transient summary-export failure.
    pub export_retries: u32,
    /// Backoff before the first export retry; doubles per retry.
    pub export_backoff: TimeDelta,
    /// Seed of the deterministic jitter added to each export backoff so
    /// concurrent regions don't retry in lock-step (thundering herd). The
    /// same seed reproduces the same retry schedule bit-for-bit.
    pub export_jitter_seed: u64,
    /// Per-region spill buffer bound for summaries awaiting a recovered
    /// uplink (oldest dropped, with accounting, on overflow).
    pub spill_capacity_bytes: u64,
    /// Worker threads of the data plane: region epoch rotations and
    /// FlowDB's per-location query fan-out. Every setting produces
    /// bit-identical results ([`Parallelism::Sequential`] is the oracle
    /// the equivalence tests compare against); only wall-clock differs.
    pub parallelism: Parallelism,
}

impl Default for FlowstreamConfig {
    fn default() -> Self {
        FlowstreamConfig {
            epoch_len: TimeDelta::from_secs(60),
            tree_capacity: 4096,
            score_kind: ScoreKind::Packets,
            schema: GeneralizationSchema::network_default(),
            storage: StorageStrategy::RoundRobinHierarchical {
                budget_bytes: 4 << 20,
                fanout: 2,
            },
            degradation: DegradationPolicy::default(),
            export_retries: 3,
            export_backoff: TimeDelta::from_millis(200),
            export_jitter_seed: 0,
            spill_capacity_bytes: 4 << 20,
            parallelism: Parallelism::default(),
        }
    }
}

/// Errors a FlowQL round-trip can produce.
#[derive(Debug)]
pub enum FlowstreamError {
    /// The query failed to parse.
    Parse(megastream_flowdb::ParseError),
    /// The query failed to execute.
    Query(megastream_flowdb::QueryError),
    /// The query needs locations that are currently unreachable and the
    /// deployment runs [`DegradationPolicy::FailFast`].
    Unreachable {
        /// The unreachable locations with matching data.
        locations: Vec<String>,
    },
}

impl std::fmt::Display for FlowstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowstreamError::Parse(e) => write!(f, "flowql parse error: {e}"),
            FlowstreamError::Query(e) => write!(f, "flowql execution error: {e}"),
            FlowstreamError::Unreachable { locations } => {
                write!(f, "unreachable locations: {}", locations.join(", "))
            }
        }
    }
}

impl std::error::Error for FlowstreamError {}

/// The rendered span tree of an `EXPLAIN ANALYZE` run — see
/// [`Flowstream::explain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// Human-readable span tree of the query's execution stages.
    pub tree: String,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tree)
    }
}

/// Aggregated operating statistics of a [`Flowstream`] deployment, summed
/// over its region stores, the NOC store, and the FlowDB index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowstreamStats {
    /// Flow records ingested across all regions.
    pub flows: u64,
    /// Raw bytes received from routers (full-forwarding cost).
    pub raw_bytes: u64,
    /// Epoch rotations across region stores.
    pub region_epochs: u64,
    /// Epoch rotations of the NOC store.
    pub noc_epochs: u64,
    /// Summary bytes exported by region stores.
    pub exported_bytes: u64,
    /// Summaries indexed in FlowDB.
    pub flowdb_summaries: usize,
    /// Trigger firings observed during ingest.
    pub trigger_events: usize,
    /// Bytes moved over the simulated network (raw + summary transfers).
    pub network_bytes: u64,
    /// Summary-export re-attempts after transient transfer failures.
    pub export_retries: u64,
    /// Summaries parked in a region spill buffer (uplink down).
    pub spilled_summaries: u64,
    /// Spilled summaries delivered after the uplink recovered.
    pub flushed_summaries: u64,
    /// Spilled summaries dropped to spill-buffer overflow.
    pub dropped_summaries: u64,
    /// Bytes those drops discarded.
    pub dropped_bytes: u64,
    /// Raw router→region accounting batches deferred to a later epoch
    /// because the link was down (no data loss — records are already in
    /// the region store).
    pub raw_deferrals: u64,
    /// Queries answered partially (completeness < 1).
    pub partial_queries: u64,
}

/// Cached telemetry handles for the Flowstream fabric itself (per-router
/// ingest counters, FlowQL end-to-end latency, rotation stage timers, and
/// the watermark/spill gauges the ops plane's health rules watch).
#[derive(Debug, Clone, Default)]
struct StreamMetrics {
    /// `router_records[region][router]` — empty when telemetry is disabled.
    router_records: Vec<Vec<Counter>>,
    query_micros: Histogram,
    queries: Counter,
    query_errors: Counter,
    /// End-to-end wall-clock of one `rotate` pass.
    rotate_micros: Histogram,
    /// Per-stage wall-clock inside `rotate`: spill flush, region rotation,
    /// NOC export + indexing.
    stage_flush_micros: Histogram,
    stage_rotate_micros: Histogram,
    stage_export_micros: Histogram,
    /// Newest ingested simulated timestamp (`flowstream.watermark_micros`).
    watermark: Gauge,
    /// Aggregate spill occupancy across regions, plus one labeled gauge
    /// per region (`flowstream.spill.buffered_bytes{region=g}`).
    spill_bytes_gauge: Gauge,
    spill_summaries_gauge: Gauge,
    spill_region_bytes: Vec<Gauge>,
}

/// Capacity of the bounded heavy-query log: only the heaviest ~64 distinct
/// FlowQL texts are tracked exactly; lighter ones may be evicted with the
/// usual SpaceSaving overestimation bound.
pub const HEAVY_QUERY_LOG_CAPACITY: usize = 64;

/// The Fig. 5 system: routers → region data stores (Flowtree) → network
/// store + FlowDB → FlowQL.
#[derive(Debug)]
pub struct Flowstream {
    tel: Telemetry,
    tracer: Tracer,
    profiler: Profiler,
    /// Bounded top-K heavy-query log: FlowQL text → accumulated
    /// deterministic work units
    /// ([`QueryCost::work_units`](megastream_flowdb::QueryCost::work_units)).
    /// A mutex because queries run through `&self`, possibly from several
    /// threads.
    heavy_queries: Mutex<SpaceSaving<String>>,
    metrics: StreamMetrics,
    topology: IspTopology,
    config: FlowstreamConfig,
    regions: Vec<DataStore>,
    noc: DataStore,
    flowdb: FlowDb,
    /// Raw bytes received per (region, router) in the current epoch —
    /// transferred in one batch at rotation for link accounting.
    raw_pending: Vec<Vec<u64>>,
    /// Per-region store-and-forward buffers for summaries whose export to
    /// the NOC failed (uplink down); flushed on a later rotation.
    spill: Vec<Vec<StoredSummary>>,
    spill_bytes: Vec<u64>,
    faults_seen: FaultCounters,
    epoch_end: Timestamp,
    now: Timestamp,
    rr: usize,
    trigger_log: Vec<TriggerEvent>,
    /// Optional durable cold tier: ingests are WAL-logged, every rotation
    /// seals one checksummed epoch segment, and
    /// [`Flowstream::recover`] rebuilds the deployment from both after a
    /// crash. `None` keeps the system purely in-memory.
    cold: Option<ColdTier>,
}

/// Running totals of fault handling, copied into [`FlowstreamStats`].
/// `partial_queries` is atomic because queries run through `&self` — and,
/// since the data plane went parallel, possibly from several threads at
/// once.
#[derive(Debug, Default)]
struct FaultCounters {
    export_retries: u64,
    spilled: u64,
    flushed: u64,
    dropped: u64,
    dropped_bytes: u64,
    raw_deferrals: u64,
    partial_queries: std::sync::atomic::AtomicU64,
}

impl Flowstream {
    /// Builds a Flowstream over `regions` regions of `routers_per_region`
    /// routers.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(regions: usize, routers_per_region: usize, config: FlowstreamConfig) -> Self {
        let topology = IspTopology::build(regions, routers_per_region);
        let tree_config = FlowtreeConfig::default()
            .with_capacity(config.tree_capacity)
            .with_score_kind(config.score_kind)
            .with_schema(config.schema.clone());
        let mut region_stores = Vec::with_capacity(regions);
        for g in 0..regions {
            let mut store = DataStore::new(format!("region-{g}"), config.storage, config.epoch_len);
            store.install_aggregator(AggregatorSpec::Flowtree(tree_config.clone()));
            region_stores.push(store);
        }
        // The network-wide store aggregates over a 4× longer horizon.
        let mut noc = DataStore::new(
            "noc",
            config.storage,
            TimeDelta::from_micros(config.epoch_len.as_micros() * 4),
        );
        noc.install_aggregator(AggregatorSpec::Flowtree(tree_config));
        let epoch_end = Timestamp::ZERO + config.epoch_len;
        let par = config.parallelism;
        Flowstream {
            tel: Telemetry::disabled(),
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
            heavy_queries: Mutex::new(SpaceSaving::new(HEAVY_QUERY_LOG_CAPACITY)),
            metrics: StreamMetrics::default(),
            raw_pending: vec![vec![0; routers_per_region]; regions],
            spill: vec![Vec::new(); regions],
            spill_bytes: vec![0; regions],
            faults_seen: FaultCounters::default(),
            topology,
            config,
            regions: region_stores,
            noc,
            flowdb: FlowDb::new().with_parallelism(par),
            epoch_end,
            now: Timestamp::ZERO,
            rr: 0,
            trigger_log: Vec::new(),
            cold: None,
        }
    }

    /// Attaches a durable cold tier: from here on every ingested record is
    /// WAL-logged before it is applied and every rotation seals one
    /// checksummed epoch segment in the tier's directory. Attach before
    /// the first ingest (or right after [`Flowstream::recover`]) so the
    /// journal covers the deployment's whole history.
    ///
    /// Storage failures never disturb the data plane: the tier is marked
    /// dead on the first real I/O error and the stream degrades to
    /// in-memory operation ([`Flowstream::cold_tier_dead`] turns true).
    pub fn attach_cold_tier(&mut self, tier: ColdTier) {
        self.cold = Some(tier);
    }

    /// The attached cold tier, if any.
    pub fn cold_tier(&self) -> Option<&ColdTier> {
        self.cold.as_ref()
    }

    /// Mutable access to the attached cold tier — e.g. to install a
    /// [`FaultSpec`](megastream_storage::FaultSpec) in crash tests.
    pub fn cold_tier_mut(&mut self) -> Option<&mut ColdTier> {
        self.cold.as_mut()
    }

    /// Detaches and returns the cold tier; the stream continues in-memory.
    pub fn detach_cold_tier(&mut self) -> Option<ColdTier> {
        self.cold.take()
    }

    /// Whether an attached cold tier has died (injected crash point or
    /// real storage failure). A durability harness polls this after each
    /// ingest to decide when to kill and recover the deployment.
    pub fn cold_tier_dead(&self) -> bool {
        self.cold.as_ref().is_some_and(ColdTier::is_dead)
    }

    /// Whether a cold tier is attached and still accepting writes.
    fn cold_active(&self) -> bool {
        self.cold.as_ref().is_some_and(|t| !t.is_dead())
    }

    /// Runs one cold-tier operation, declaring the tier dead on any real
    /// failure so the data plane degrades to in-memory instead of
    /// erroring. No-op when no live tier is attached.
    fn cold_op(&mut self, op: impl FnOnce(&mut ColdTier) -> Result<(), SegmentError>) {
        let Some(tier) = self.cold.as_mut() else {
            return;
        };
        if tier.is_dead() {
            return;
        }
        if let Err(e) = op(tier) {
            if !matches!(e, SegmentError::TierDead) {
                tier.mark_dead(e);
            }
        }
    }

    /// Journals one frame into the cold tier's open epoch segment.
    fn cold_frame(&mut self, frame: Frame) {
        self.cold_op(|t| t.append_frame(&frame));
    }

    /// Sets how many worker threads the data plane uses — region epoch
    /// rotations in the pump and FlowDB's per-location query fan-out.
    /// Every setting produces bit-identical results; only wall-clock time
    /// differs. Can be changed at any point in a deployment's life.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.config.parallelism = par;
        self.flowdb.set_parallelism(par);
    }

    /// The data-plane parallelism in effect.
    pub fn parallelism(&self) -> Parallelism {
        self.config.parallelism
    }

    /// Connects the whole deployment to a telemetry registry: every region
    /// store, the NOC store, FlowDB, per-router ingest counters, and the
    /// FlowQL end-to-end latency histogram. Passing
    /// [`Telemetry::disabled`] detaches everything again.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        for store in &mut self.regions {
            store.set_telemetry(tel);
        }
        self.noc.set_telemetry(tel);
        self.flowdb.set_telemetry(tel);
        self.metrics = if tel.is_enabled() {
            StreamMetrics {
                router_records: (0..self.regions.len())
                    .map(|g| {
                        (0..self.raw_pending[g].len())
                            .map(|r| {
                                tel.counter(&labeled(
                                    "flowstream.ingest.records_total",
                                    "router",
                                    &format!("{g}-{r}"),
                                ))
                            })
                            .collect()
                    })
                    .collect(),
                query_micros: tel.histogram(
                    "flowstream.query.micros",
                    megastream_telemetry::LATENCY_MICROS_BOUNDS,
                ),
                queries: tel.counter("flowstream.query.total"),
                query_errors: tel.counter("flowstream.query.errors_total"),
                rotate_micros: tel.histogram("flowstream.rotate.micros", LATENCY_MICROS_BOUNDS),
                stage_flush_micros: tel
                    .histogram("flowstream.stage.flush.micros", LATENCY_MICROS_BOUNDS),
                stage_rotate_micros: tel
                    .histogram("flowstream.stage.rotate.micros", LATENCY_MICROS_BOUNDS),
                stage_export_micros: tel
                    .histogram("flowstream.stage.export.micros", LATENCY_MICROS_BOUNDS),
                watermark: tel.gauge("flowstream.watermark_micros"),
                spill_bytes_gauge: tel.gauge("flowstream.spill.buffered_bytes"),
                spill_summaries_gauge: tel.gauge("flowstream.spill.buffered_summaries"),
                spill_region_bytes: (0..self.regions.len())
                    .map(|g| {
                        tel.gauge(&labeled(
                            "flowstream.spill.buffered_bytes",
                            "region",
                            &g.to_string(),
                        ))
                    })
                    .collect(),
            }
        } else {
            StreamMetrics::default()
        };
    }

    /// Refreshes the spill-occupancy gauges the ops plane's health rules
    /// watch: one labeled gauge per region plus the aggregate bytes and
    /// summary count.
    fn update_spill_gauges(&self) {
        for (g, gauge) in self.metrics.spill_region_bytes.iter().enumerate() {
            gauge.set(self.spill_bytes[g] as i64);
        }
        self.metrics
            .spill_bytes_gauge
            .set(self.spill_bytes.iter().sum::<u64>() as i64);
        self.metrics
            .spill_summaries_gauge
            .set(self.spill.iter().map(Vec::len).sum::<usize>() as i64);
    }

    /// Builder-style [`Flowstream::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.set_telemetry(tel);
        self
    }

    /// Connects the deployment to a causal tracer: every FlowQL query
    /// records a `flowstream.query` span tree (subject to the tracer's
    /// sampling policy). Passing [`Tracer::disabled`] detaches again at
    /// one-branch cost per span site.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Builder-style [`Flowstream::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// The tracer queries record into (disabled unless
    /// [`Flowstream::set_tracer`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Connects the deployment to a scoped-activity profiler: ingest,
    /// rotation stages, and FlowQL query phases record into its activity
    /// tree (see [`Profiler`]). Passing [`Profiler::disabled`] detaches
    /// again at one-branch cost per activity site.
    pub fn set_profiler(&mut self, profiler: &Profiler) {
        self.profiler = profiler.clone();
    }

    /// Builder-style [`Flowstream::set_profiler`].
    #[must_use]
    pub fn with_profiler(mut self, profiler: &Profiler) -> Self {
        self.set_profiler(profiler);
        self
    }

    /// The profiler activity sites record into (disabled unless
    /// [`Flowstream::set_profiler`] was called).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Snapshot of aggregated profile activities (empty when profiling is
    /// off).
    pub fn profile_snapshot(&self) -> ProfileSnapshot {
        self.profiler.snapshot()
    }

    /// The top `k` heaviest queries by accumulated deterministic work
    /// units — FlowQL text with total
    /// [`work_units`](megastream_flowdb::QueryCost::work_units), heaviest
    /// first, ties broken by query text. The log is bounded
    /// ([SpaceSaving], capacity [`HEAVY_QUERY_LOG_CAPACITY`]), so
    /// long-running deployments keep only the heavy tail.
    pub fn heavy_queries(&self, k: usize) -> Vec<(String, u64)> {
        let log = match self.heavy_queries.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        log.top_k(k)
            .into_iter()
            .map(|(q, c)| (q, c.count))
            .collect()
    }

    /// Snapshot of all recorded trace spans (empty when tracing is off).
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.tracer.snapshot()
    }

    /// Human-readable span-tree report of all recorded traces (empty when
    /// tracing is off).
    pub fn trace_report(&self) -> String {
        self.tracer.render_tree()
    }

    /// All recorded traces as Chrome `trace_event` JSON, loadable in
    /// `chrome://tracing` or Perfetto (empty event list when tracing is
    /// off).
    pub fn trace_chrome_json(&self) -> String {
        self.tracer.render_chrome_json()
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of routers per region.
    pub fn routers_per_region(&self) -> usize {
        self.topology.routers[0].len()
    }

    /// Ingests one flow record observed at `router` in `region` (①).
    /// Records must arrive in non-decreasing time order.
    ///
    /// With a cold tier attached, the record is WAL-logged *before* it is
    /// applied: a record is either durable and applied, or neither. When
    /// the WAL write fails the tier is marked dead and the record is
    /// dropped un-applied — after [`Flowstream::recover`], the client
    /// re-sends from exactly that record.
    ///
    /// # Panics
    ///
    /// Panics if `region`/`router` are out of range.
    pub fn ingest(&mut self, region: usize, router: usize, rec: &FlowRecord) {
        assert!(region < self.regions.len(), "region {region} out of range");
        assert!(
            router < self.raw_pending[region].len(),
            "router {router} out of range"
        );
        while rec.ts >= self.epoch_end {
            let at = self.epoch_end;
            self.rotate(at);
        }
        if self.cold_active() {
            let wrec = WalRecord {
                rr: self.rr as u64,
                region: region as u32,
                router: router as u32,
                record: *rec,
            };
            let mut logged = false;
            self.cold_op(|t| {
                t.wal_append(&wrec)?;
                logged = true;
                Ok(())
            });
            if !logged {
                // WAL'd ⇔ applied: an un-logged record is never applied,
                // so recovery converges with a client that re-sends it.
                return;
            }
        }
        self.apply_ingest(region, router, rec);
    }

    /// The in-memory half of [`Flowstream::ingest`]: applies one record
    /// whose timestamp is within the current epoch. WAL replay calls this
    /// directly — the replayed record is already in the journal.
    fn apply_ingest(&mut self, region: usize, router: usize, rec: &FlowRecord) {
        // Started after any rotations so `flowstream.rotate` stays a root
        // activity of its own rather than nesting under every ingest.
        let _activity = self.profiler.activity("flowstream.ingest");
        self.now = self.now.max(rec.ts);
        self.metrics.watermark.set(self.now.as_micros() as i64);
        if let Some(counter) = self
            .metrics
            .router_records
            .get(region)
            .and_then(|v| v.get(router))
        {
            counter.inc();
        }
        self.raw_pending[region][router] += FlowRecord::WIRE_BYTES as u64;
        let stream = format!("router-{region}-{router}");
        let events = self.regions[region].ingest_flow(&stream.as_str().into(), rec, rec.ts);
        self.trigger_log.extend(events);
    }

    /// Ingests a record, assigning it to a router round-robin — convenient
    /// when replaying a single generated trace across the deployment.
    pub fn ingest_round_robin(&mut self, rec: &FlowRecord) {
        let total_routers = self.regions.len() * self.raw_pending[0].len();
        let slot = self.rr % total_routers;
        self.rr += 1;
        let region = slot / self.raw_pending[0].len();
        let router = slot % self.raw_pending[0].len();
        self.ingest(region, router, rec);
    }

    /// Closes the current epoch at `at`: flushes raw-transfer accounting,
    /// rotates region stores (②), exports summaries to the NOC store (③)
    /// and indexes Flowtrees into FlowDB (④).
    ///
    /// Fault handling: a down router→region link defers the batch's byte
    /// accounting to the next rotation (records are already in the region
    /// store, so nothing is lost); a failed region→NOC export is retried
    /// with exponential backoff, then parked in the region's bounded spill
    /// buffer and re-exported — and only then indexed in FlowDB — once the
    /// uplink recovers.
    fn rotate(&mut self, at: Timestamp) {
        let rotate_timer = ScopedTimer::start(&self.metrics.rotate_micros);
        let _activity = self.profiler.activity("flowstream.rotate");
        // Open this epoch's segment before any frame can be produced.
        self.cold_op(|t| t.begin_epoch(at));
        // ① account the raw router → region-store transfers of this epoch.
        for g in 0..self.raw_pending.len() {
            for r in 0..self.raw_pending[g].len() {
                let pending = self.raw_pending[g][r];
                if pending == 0 {
                    continue;
                }
                let from = self.topology.routers[g][r];
                let to = self.topology.regions[g];
                match self.topology.network.transfer(from, to, pending, at) {
                    Ok(_) => self.raw_pending[g][r] = 0,
                    Err(e) if e.is_transient() => {
                        // Defer: the batch rides along at the next rotate.
                        self.faults_seen.raw_deferrals += 1;
                        self.tel.counter("flowstream.raw.deferred_total").inc();
                    }
                    Err(e) => panic!("router is connected to its region: {e}"),
                }
            }
        }
        // Recovery first: spilled summaries from earlier epochs, so the NOC
        // absorbs late data before it rotates below.
        let flush_timer = ScopedTimer::start(&self.metrics.stage_flush_micros);
        let flush_activity = self.profiler.activity("flush_spill");
        self.flush_spill(at);
        drop(flush_activity);
        flush_timer.stop();
        // ② rotate every region store — sibling subtrees concurrently, per
        // the parallelism knob; rotation touches only the store itself —
        // then ③ + ④ export each region's summaries to the NOC in region
        // order, exactly as the sequential loop did, so the observable
        // outcome is identical for every worker count.
        let workers = self.config.parallelism.worker_count(self.regions.len());
        if self.tel.is_enabled() {
            self.tel
                .gauge("flowstream.rotate.workers")
                .set(workers as i64);
        }
        let worker_micros = self
            .tel
            .histogram("flowstream.rotate.worker.micros", LATENCY_MICROS_BOUNDS);
        let stage_timer = ScopedTimer::start(&self.metrics.stage_rotate_micros);
        let regions_activity = self.profiler.activity("rotate_regions");
        let rotated: Vec<Vec<StoredSummary>> = fan_out(
            self.regions.iter_mut().collect(),
            workers,
            |store| store.rotate_epoch(at),
            |micros| worker_micros.record(micros),
        );
        drop(regions_activity);
        stage_timer.stop();
        let export_timer = ScopedTimer::start(&self.metrics.stage_export_micros);
        let export_activity = self.profiler.activity("export");
        for (g, exported) in rotated.into_iter().enumerate() {
            for summary in exported {
                self.export_to_noc(g, summary, at);
            }
        }
        if self.noc.epoch_due(at) {
            let exported = self.noc.rotate_epoch(at);
            for summary in exported {
                if let Summary::Flowtree(tree) = &summary.summary {
                    self.flowdb.insert("noc", summary.window, tree.clone());
                }
            }
        }
        drop(export_activity);
        export_timer.stop();
        if self.cold_active() {
            // The Meta frame is written last: replay reruns the epoch's
            // deliveries/parks and then snaps counters and cursors to the
            // authoritative end-of-epoch values. Sealing renames the
            // segment into place atomically; only then is the WAL — whose
            // records this epoch just made redundant — reset.
            let meta = Frame::Meta(self.snapshot_meta());
            self.cold_frame(meta);
            self.cold_op(|t| t.seal_epoch());
            self.cold_op(|t| t.wal_reset());
        }
        self.epoch_end = at + self.config.epoch_len;
        rotate_timer.stop();
    }

    /// End-of-epoch snapshot journaled as the sealing [`Frame::Meta`]:
    /// everything recovery cannot re-derive by replaying the epoch's
    /// frames — watermark, round-robin cursor, fault counters, deferred
    /// raw-transfer accounting, and per-region ingest statistics.
    fn snapshot_meta(&self) -> EpochMeta {
        EpochMeta {
            now: self.now,
            rr: self.rr as u64,
            export_retries: self.faults_seen.export_retries,
            spilled: self.faults_seen.spilled,
            flushed: self.faults_seen.flushed,
            dropped: self.faults_seen.dropped,
            dropped_bytes: self.faults_seen.dropped_bytes,
            raw_deferrals: self.faults_seen.raw_deferrals,
            raw_pending: self.raw_pending.clone(),
            region_stats: self
                .regions
                .iter()
                .map(|store| {
                    let s = store.stats();
                    RegionStatsSnapshot {
                        flows: s.flows,
                        scalars: s.scalars,
                        raw_bytes: s.raw_bytes,
                    }
                })
                .collect(),
        }
    }

    /// Exports one region summary to the NOC with bounded retry +
    /// exponential backoff, spilling it on persistent transient failure.
    fn export_to_noc(&mut self, g: usize, summary: StoredSummary, at: Timestamp) {
        let bytes = summary.wire_size() as u64;
        let (from, to) = (self.topology.regions[g], self.topology.noc);
        let mut attempt_at = at;
        let mut backoff = self.config.export_backoff;
        for attempt in 0..=self.config.export_retries {
            match self.topology.network.transfer(from, to, bytes, attempt_at) {
                Ok(_) => {
                    if self.cold_active() {
                        self.cold_frame(Frame::Exported {
                            region: g as u32,
                            summary: summary.clone(),
                        });
                    }
                    self.deliver_to_noc(g, summary, at);
                    return;
                }
                Err(e) if e.is_transient() && attempt < self.config.export_retries => {
                    self.faults_seen.export_retries += 1;
                    self.tel.counter("flowstream.export.retries_total").inc();
                    let salt = at
                        .as_micros()
                        .wrapping_mul(31)
                        .wrapping_add((g as u64) << 40)
                        .wrapping_add(bytes)
                        .wrapping_add(u64::from(attempt));
                    attempt_at +=
                        backoff + jitter_micros(self.config.export_jitter_seed, salt, backoff);
                    backoff = TimeDelta::from_micros(backoff.as_micros().saturating_mul(2));
                }
                Err(e) if e.is_transient() => {
                    self.park(g, summary, at);
                    return;
                }
                Err(e) => panic!("region is connected to the noc: {e}"),
            }
        }
        unreachable!("loop always returns")
    }

    /// Indexes a delivered summary in FlowDB and merges it into the NOC
    /// store.
    fn deliver_to_noc(&mut self, g: usize, summary: StoredSummary, at: Timestamp) {
        if let Summary::Flowtree(tree) = &summary.summary {
            self.flowdb
                .insert(format!("region-{g}"), summary.window, tree.clone());
        }
        if !absorb_summary(&mut self.noc, &summary) {
            self.noc.import_summary(summary, at);
        }
    }

    /// Parks a summary in region `g`'s spill buffer: merged into a
    /// compatible parked summary where possible (P2), bounded with
    /// oldest-first drops. FlowDB indexing is deferred until the flush —
    /// the data has not reached the NOC yet.
    fn park(&mut self, g: usize, summary: StoredSummary, at: Timestamp) {
        // Journal the incoming summary pre-merge: replay reruns this very
        // method, reproducing the merge/overflow decisions bit-for-bit.
        if self.cold_active() {
            self.cold_frame(Frame::Parked {
                region: g as u32,
                summary: summary.clone(),
            });
        }
        let location = format!("region-{g}");
        if let Some(existing) = self.spill[g]
            .iter_mut()
            .find(|s| summaries_mergeable(s, &summary))
        {
            let before = existing.wire_size() as u64;
            existing.merge(&summary, &location, at);
            self.spill_bytes[g] = self.spill_bytes[g] - before + existing.wire_size() as u64;
        } else {
            self.spill_bytes[g] += summary.wire_size() as u64;
            self.spill[g].push(summary);
        }
        self.faults_seen.spilled += 1;
        self.tel.counter("flowstream.spill.spilled_total").inc();
        while self.spill_bytes[g] > self.config.spill_capacity_bytes && !self.spill[g].is_empty() {
            let victim = self.spill[g].remove(0);
            let bytes = victim.wire_size() as u64;
            self.spill_bytes[g] -= bytes;
            self.faults_seen.dropped += 1;
            self.faults_seen.dropped_bytes += bytes;
            self.tel.counter("flowstream.spill.dropped_total").inc();
            self.tel
                .counter("flowstream.spill.dropped_bytes_total")
                .add(bytes);
        }
        self.update_spill_gauges();
    }

    /// Re-exports spilled summaries whose uplink has recovered; stops at
    /// the first still-failing transfer per region.
    fn flush_spill(&mut self, at: Timestamp) {
        for g in 0..self.spill.len() {
            let (from, to) = (self.topology.regions[g], self.topology.noc);
            while let Some(summary) = self.spill[g].first().cloned() {
                let bytes = summary.wire_size() as u64;
                match self.topology.network.transfer(from, to, bytes, at) {
                    Ok(_) => {
                        self.spill[g].remove(0);
                        self.spill_bytes[g] = self.spill_bytes[g].saturating_sub(bytes);
                        self.faults_seen.flushed += 1;
                        self.tel.counter("flowstream.spill.flushed_total").inc();
                        if self.cold_active() {
                            self.cold_frame(Frame::Flushed {
                                region: g as u32,
                                summary: summary.clone(),
                            });
                        }
                        self.deliver_to_noc(g, summary, at);
                    }
                    Err(e) if e.is_transient() => break,
                    Err(e) => panic!("region is connected to the noc: {e}"),
                }
            }
        }
        self.update_spill_gauges();
    }

    /// Flushes the current (partial) epoch so all ingested data is
    /// queryable.
    pub fn finish(&mut self) {
        let at = self.epoch_end.max(self.now);
        self.rotate(at);
    }

    /// Rebuilds a deployment from a cold tier's on-disk state after a
    /// crash: sealed epoch segments replay first (rebuilding region
    /// summary stores, the NOC store, FlowDB, and spill buffers), then the
    /// WAL replays the current epoch's ingests. The recovered stream
    /// converges bit-identically with a never-crashed run on query
    /// results, accounted bytes, live scores, and ingest statistics —
    /// telemetry counters and simulated-network byte meters are
    /// deliberately *not* restored (they describe the process, not the
    /// data).
    ///
    /// Torn tails are truncated and bit-flipped frames quarantined during
    /// the underlying [`ColdTier::open`]; the returned
    /// [`RecoveryReport`] counts both. A record whose WAL append failed at
    /// crash time was never applied, so the client re-sends from exactly
    /// the first unacknowledged record.
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError`] when the store is unreadable or an epoch
    /// segment is missing from the sequence — corruption *within* frames
    /// is repaired, not fatal.
    pub fn recover(
        regions: usize,
        routers_per_region: usize,
        config: FlowstreamConfig,
        dir: &Path,
        sync: SyncPolicy,
        tel: &Telemetry,
    ) -> Result<(Self, RecoveryReport), SegmentError> {
        let (tier, report) = ColdTier::open(dir, sync, tel.clone())?;
        let mut fs = Flowstream::new(regions, routers_per_region, config);
        fs.set_telemetry(tel);
        for bundle in &report.bundles {
            fs.replay_bundle(bundle);
        }
        // Attach only now: sealed-epoch replay must never write frames.
        fs.cold = Some(tier);
        let replayed = tel.counter("storage.wal.replayed_total");
        for rec in &report.wal_records {
            fs.replay_wal_record(rec);
            replayed.inc();
        }
        Ok((fs, report))
    }

    /// Replays one sealed epoch. Every summary a region exported this
    /// epoch — delivered (`Exported`) or parked — also entered its summary
    /// store at rotation, so those rebuild the rotation first; then the
    /// frames rerun the epoch's deliveries and parks in their original
    /// order; the closing `Meta` frame snaps counters and cursors to their
    /// authoritative end-of-epoch values.
    fn replay_bundle(&mut self, bundle: &EpochBundle) {
        let at = bundle.at;
        let mut rotated: Vec<Vec<StoredSummary>> = vec![Vec::new(); self.regions.len()];
        for frame in &bundle.frames {
            if let Frame::Exported { region, summary } | Frame::Parked { region, summary } = frame {
                if let Some(row) = rotated.get_mut(*region as usize) {
                    row.push(summary.clone());
                }
            }
        }
        // Every region rotated this epoch (possibly exporting nothing) —
        // restore unconditionally so epoch starts and counts line up.
        for (g, summaries) in rotated.iter().enumerate() {
            self.regions[g].restore_rotation(summaries, at);
        }
        for frame in &bundle.frames {
            match frame {
                Frame::Flushed { region, summary } => {
                    let g = *region as usize;
                    if g >= self.regions.len() {
                        continue;
                    }
                    if let Some(front) =
                        (!self.spill[g].is_empty()).then(|| self.spill[g].remove(0))
                    {
                        self.spill_bytes[g] =
                            self.spill_bytes[g].saturating_sub(front.wire_size() as u64);
                    }
                    self.deliver_to_noc(g, summary.clone(), at);
                }
                Frame::Exported { region, summary } => {
                    let g = *region as usize;
                    if g < self.regions.len() {
                        self.deliver_to_noc(g, summary.clone(), at);
                    }
                }
                Frame::Parked { region, summary } => {
                    let g = *region as usize;
                    if g < self.regions.len() {
                        self.park(g, summary.clone(), at);
                    }
                }
                Frame::Meta(meta) => self.apply_meta(meta),
            }
        }
        if self.noc.epoch_due(at) {
            let exported = self.noc.rotate_epoch(at);
            for summary in exported {
                if let Summary::Flowtree(tree) = &summary.summary {
                    self.flowdb.insert("noc", summary.window, tree.clone());
                }
            }
        }
        self.epoch_end = at + self.config.epoch_len;
        self.update_spill_gauges();
    }

    /// Applies a journaled end-of-epoch snapshot (see
    /// [`Flowstream::snapshot_meta`]).
    fn apply_meta(&mut self, meta: &EpochMeta) {
        self.now = meta.now;
        self.rr = meta.rr as usize;
        self.faults_seen.export_retries = meta.export_retries;
        self.faults_seen.spilled = meta.spilled;
        self.faults_seen.flushed = meta.flushed;
        self.faults_seen.dropped = meta.dropped;
        self.faults_seen.dropped_bytes = meta.dropped_bytes;
        self.faults_seen.raw_deferrals = meta.raw_deferrals;
        for (g, row) in meta.raw_pending.iter().enumerate() {
            let Some(mine) = self.raw_pending.get_mut(g) else {
                break;
            };
            for (r, &pending) in row.iter().enumerate() {
                if let Some(slot) = mine.get_mut(r) {
                    *slot = pending;
                }
            }
        }
        for (g, snap) in meta.region_stats.iter().enumerate() {
            if g >= self.regions.len() {
                break;
            }
            self.regions[g].restore_ingest_stats(snap.flows, snap.scalars, snap.raw_bytes);
        }
    }

    /// Replays one WAL record of the epoch in flight at crash time: it is
    /// re-logged into the fresh WAL (preserving the original round-robin
    /// cursor, so a second crash before the next seal still recovers) and
    /// applied. Records are guaranteed in-epoch — a record beyond the
    /// epoch end would have rotated (and reset the WAL) before being
    /// logged.
    fn replay_wal_record(&mut self, wrec: &WalRecord) {
        let region = wrec.region as usize;
        let router = wrec.router as usize;
        if region >= self.regions.len() || router >= self.raw_pending[region].len() {
            return;
        }
        let rec = wrec.record;
        let copy = *wrec;
        self.cold_op(|t| t.wal_append(&copy));
        self.apply_ingest(region, router, &rec);
        self.rr = wrec.rr as usize;
    }

    /// Runs a FlowQL query against the indexed summaries (⑤), under the
    /// configured [`DegradationPolicy`].
    ///
    /// Note that `noc`-level summaries cover the same traffic as the
    /// per-region ones; restrict by `location` to avoid double counting
    /// when both are indexed, or query only region locations (the default
    /// examples do).
    ///
    /// # Errors
    ///
    /// Returns [`FlowstreamError`] on parse or execution failures, and —
    /// under [`DegradationPolicy::FailFast`] with unreachable locations
    /// holding matching data — [`FlowstreamError::Unreachable`].
    pub fn query(&self, flowql: &str) -> Result<QueryResult, FlowstreamError> {
        self.query_with(flowql, self.config.degradation, &self.tracer)
    }

    /// [`Flowstream::query`] under an explicit policy, overriding the
    /// configured one for this call.
    ///
    /// # Errors
    ///
    /// Same as [`Flowstream::query`].
    pub fn query_with_policy(
        &self,
        flowql: &str,
        policy: DegradationPolicy,
    ) -> Result<QueryResult, FlowstreamError> {
        self.query_with(flowql, policy, &self.tracer)
    }

    /// Region locations (plus `noc`) currently unreachable from the cloud
    /// vantage point, per the network's installed fault plan. Empty
    /// without faults.
    pub fn unreachable_locations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        if self.topology.network.faults().is_none() {
            return out;
        }
        let cloud = self.topology.cloud;
        for (g, &region) in self.topology.regions.iter().enumerate() {
            if self
                .topology
                .network
                .route_at(cloud, region, self.now)
                .is_none()
            {
                out.insert(format!("region-{g}"));
            }
        }
        if self
            .topology
            .network
            .route_at(cloud, self.topology.noc, self.now)
            .is_none()
        {
            out.insert("noc".to_owned());
        }
        out
    }

    /// [`Flowstream::query`] recording its causal lineage into `tracer`:
    /// a `flowstream.query` root span with a `parse` child and the FlowDB
    /// execution stages (plan, per-location fan-out, merge, operator run)
    /// underneath. With unreachable locations, the root span is annotated
    /// with the policy, the unreachable set, and the result's
    /// completeness — so `explain` shows *why* a result is partial.
    fn query_with(
        &self,
        flowql: &str,
        policy: DegradationPolicy,
        tracer: &Tracer,
    ) -> Result<QueryResult, FlowstreamError> {
        let timer = ScopedTimer::start(&self.metrics.query_micros);
        self.metrics.queries.inc();
        let _activity = self.profiler.activity("flowstream.query");
        let mut root = tracer.root("flowstream.query");
        root.annotate("flowql", flowql);
        let parse_timer = self.tel.timer("flowdb.parse.micros");
        let parse_activity = self.profiler.activity("parse");
        let parse_span = root.child("parse");
        let parsed = megastream_flowdb::parse(flowql).map_err(FlowstreamError::Parse);
        drop(parse_span);
        drop(parse_activity);
        parse_timer.stop();
        let _exec_activity = self.profiler.activity("execute");
        let unavailable = self.unreachable_locations();
        let result = parsed.and_then(|query| {
            if unavailable.is_empty() {
                return self
                    .flowdb
                    .execute_traced(&query, &root)
                    .map_err(FlowstreamError::Query);
            }
            root.annotate("degradation", &format!("{policy:?}"));
            root.annotate(
                "unreachable",
                &unavailable.iter().cloned().collect::<Vec<_>>().join(","),
            );
            let partial = self
                .flowdb
                .execute_partial_traced(&query, &root, &unavailable)
                .map_err(FlowstreamError::Query)?;
            if partial.completeness.is_complete() {
                // The query never needed the unreachable locations.
                return Ok(partial);
            }
            root.annotate("completeness", &partial.completeness.to_string());
            match policy {
                DegradationPolicy::FailFast => Err(FlowstreamError::Unreachable {
                    locations: self
                        .flowdb
                        .locations()
                        .into_iter()
                        .filter(|l| unavailable.contains(*l))
                        .map(str::to_owned)
                        .collect(),
                }),
                DegradationPolicy::Partial => {
                    self.faults_seen
                        .partial_queries
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.tel.counter("flowstream.query.partial_total").inc();
                    Ok(partial)
                }
            }
        });
        match &result {
            Err(e) => {
                self.metrics.query_errors.inc();
                root.annotate("error", &e.to_string());
            }
            Ok(r) => {
                // Cost metering: annotate the trace root and charge the
                // heavy-query log with the execution's deterministic work.
                root.annotate("cost", &r.cost.to_string());
                let mut log = match self.heavy_queries.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                log.offer(flowql.to_owned(), r.cost.work_units());
            }
        }
        timer.stop();
        result
    }

    /// Runs a FlowQL query under a throwaway always-on tracer and returns
    /// both the result and its rendered span tree — `EXPLAIN ANALYZE` for
    /// FlowQL. Works regardless of whether the deployment itself has a
    /// tracer attached.
    ///
    /// # Errors
    ///
    /// Returns [`FlowstreamError`] on parse or execution failures; the
    /// explanation still carries the spans recorded up to the failure.
    pub fn explain(&self, flowql: &str) -> (Result<QueryResult, FlowstreamError>, Explanation) {
        let tracer = Tracer::new();
        let result = self.query_with(flowql, self.config.degradation, &tracer);
        (
            result,
            Explanation {
                tree: tracer.render_tree(),
            },
        )
    }

    /// Aggregated operating statistics across the deployment.
    pub fn stats(&self) -> FlowstreamStats {
        let mut stats = FlowstreamStats::default();
        for store in &self.regions {
            let s = store.stats();
            stats.flows += s.flows;
            stats.raw_bytes += s.raw_bytes;
            stats.region_epochs += s.epochs;
            stats.exported_bytes += s.exported_bytes;
        }
        stats.noc_epochs = self.noc.stats().epochs;
        stats.flowdb_summaries = self.flowdb.len();
        stats.trigger_events = self.trigger_log.len();
        stats.network_bytes = self.topology.network.total_bytes();
        stats.export_retries = self.faults_seen.export_retries;
        stats.spilled_summaries = self.faults_seen.spilled;
        stats.flushed_summaries = self.faults_seen.flushed;
        stats.dropped_summaries = self.faults_seen.dropped;
        stats.dropped_bytes = self.faults_seen.dropped_bytes;
        stats.raw_deferrals = self.faults_seen.raw_deferrals;
        stats.partial_queries = self
            .faults_seen
            .partial_queries
            .load(std::sync::atomic::Ordering::Relaxed);
        stats
    }

    /// The telemetry handle this deployment records into (disabled unless
    /// [`Flowstream::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Snapshot of all telemetry metrics (empty when disabled).
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.tel.snapshot()
    }

    /// Human-readable telemetry report (empty when disabled).
    pub fn telemetry_report(&self) -> String {
        self.tel.render_text()
    }

    /// The FlowDB index.
    pub fn flowdb(&self) -> &FlowDb {
        &self.flowdb
    }

    /// The simulated network with its transfer accounting.
    pub fn network(&self) -> &Network {
        &self.topology.network
    }

    /// Mutable access to the simulated network — install a
    /// [`FaultPlan`](megastream_netsim::FaultPlan) here to script outages.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.topology.network
    }

    /// The network node hosting `region`'s data store.
    pub fn region_node(&self, region: usize) -> NodeId {
        self.topology.regions[region]
    }

    /// The network node hosting the NOC store.
    pub fn noc_node(&self) -> NodeId {
        self.topology.noc
    }

    /// The cloud node — the vantage point queries fan out from.
    pub fn cloud_node(&self) -> NodeId {
        self.topology.cloud
    }

    /// Summaries currently parked in `region`'s spill buffer.
    pub fn spilled(&self, region: usize) -> usize {
        self.spill[region].len()
    }

    /// Read access to a region's data store.
    pub fn region_store(&self, region: usize) -> &DataStore {
        &self.regions[region]
    }

    /// Mutable access to a region's data store (e.g. to install triggers).
    pub fn region_store_mut(&mut self, region: usize) -> &mut DataStore {
        &mut self.regions[region]
    }

    /// The network-wide (NOC) store.
    pub fn noc_store(&self) -> &DataStore {
        &self.noc
    }

    /// Trigger firings collected during ingest.
    pub fn trigger_log(&self) -> &[TriggerEvent] {
        &self.trigger_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};

    fn small_trace(secs: u64) -> Vec<FlowRecord> {
        FlowTraceGenerator::new(FlowTraceConfig {
            flows_per_sec: 50.0,
            duration: TimeDelta::from_secs(secs),
            internal_hosts: 100,
            external_hosts: 100,
            ..Default::default()
        })
        .collect()
    }

    #[test]
    fn end_to_end_ingest_and_query() {
        let mut fs = Flowstream::new(2, 4, FlowstreamConfig::default());
        let trace = small_trace(150);
        let total_packets: u64 = trace.iter().map(|r| r.packets).sum();
        for rec in &trace {
            fs.ingest_round_robin(rec);
        }
        fs.finish();
        // Epochs of 60 s over 150 s → 3 windows per region.
        assert!(fs.flowdb().len() >= 4, "{} summaries", fs.flowdb().len());
        // Region-scoped total equals the ingested packet mass.
        let mut region_total = 0;
        for g in 0..2 {
            let r = fs
                .query(&format!(
                    "SELECT QUERY FROM ALL WHERE location = \"region-{g}\""
                ))
                .unwrap();
            region_total += r.rows[0].score;
        }
        assert_eq!(region_total, total_packets);
        // The network moved raw bytes and summary bytes.
        assert!(fs.network().total_bytes() > 0);
    }

    #[test]
    fn noc_store_absorbs_all_regions() {
        use megastream_flow::key::FlowKey;
        let mut fs = Flowstream::new(2, 2, FlowstreamConfig::default());
        let trace = small_trace(60);
        let total: u64 = trace.iter().map(|r| r.packets).sum();
        for rec in &trace {
            fs.ingest_round_robin(rec);
        }
        fs.finish();
        // NOC live tree + its stored summaries account for every packet.
        let noc_total = fs.noc_store().live_flow_score(&FlowKey::root()).value()
            + fs.noc_store()
                .summaries()
                .iter()
                .filter_map(|s| match &s.summary {
                    Summary::Flowtree(t) => Some(t.total().value()),
                    _ => None,
                })
                .sum::<u64>();
        assert_eq!(noc_total, total);
    }

    #[test]
    fn queries_by_time_window() {
        let mut fs = Flowstream::new(1, 2, FlowstreamConfig::default());
        for rec in small_trace(120) {
            fs.ingest_round_robin(&rec);
        }
        fs.finish();
        let first = fs
            .query("SELECT QUERY FROM [0, 60) WHERE location = \"region-0\"")
            .unwrap();
        let second = fs
            .query("SELECT QUERY FROM [60, 120) WHERE location = \"region-0\"")
            .unwrap();
        let all = fs
            .query("SELECT QUERY FROM ALL WHERE location = \"region-0\"")
            .unwrap();
        assert_eq!(
            first.rows[0].score + second.rows[0].score,
            all.rows[0].score
        );
        assert!(first.rows[0].score > 0);
    }

    #[test]
    fn bad_queries_are_reported() {
        let fs = Flowstream::new(1, 1, FlowstreamConfig::default());
        assert!(matches!(
            fs.query("SELEC nonsense"),
            Err(FlowstreamError::Parse(_))
        ));
        assert!(matches!(
            fs.query("SELECT QUERY FROM ALL"),
            Err(FlowstreamError::Query(_))
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ingest_checks_bounds() {
        let mut fs = Flowstream::new(1, 1, FlowstreamConfig::default());
        let rec = FlowRecord::builder().build();
        fs.ingest(5, 0, &rec);
    }
}
