//! The [`DataStore`]: collect & aggregate (Fig. 2a, Fig. 4).

use std::collections::BTreeMap;
use std::fmt;

use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::Popularity;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_primitives::aggregator::AdaptationFeedback;
use megastream_telemetry::{
    labeled, Counter, Gauge, Histogram, ScopedTimer, Telemetry, LATENCY_MICROS_BOUNDS,
};

use crate::aggregator::{AggregatorId, AggregatorInstance, AggregatorSpec};
use crate::storage::{StorageStrategy, SummaryStore};
use crate::summary::{Lineage, StoredSummary};
use crate::trigger::{TriggerCondition, TriggerEngine, TriggerEvent, TriggerId};

/// Identifier of a data stream (a sensor channel, a router export, ...).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(String);

impl StreamId {
    /// Creates a stream id.
    pub fn new(name: impl Into<String>) -> Self {
        StreamId(name.into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for StreamId {
    fn from(s: &str) -> Self {
        StreamId(s.to_owned())
    }
}

/// Ingest/processing statistics of one data store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Flow records ingested.
    pub flows: u64,
    /// Scalar readings ingested.
    pub scalars: u64,
    /// Raw bytes ingested (what full forwarding would have cost).
    pub raw_bytes: u64,
    /// Bytes exported as summaries so far.
    pub exported_bytes: u64,
    /// Epoch rotations performed.
    pub epochs: u64,
}

/// Cached telemetry handles for one store's hot paths. All handles are
/// no-ops until [`DataStore::set_telemetry`] installs a live registry.
#[derive(Debug, Clone, Default)]
struct StoreMetrics {
    flows: Counter,
    scalars: Counter,
    raw_bytes: Counter,
    exported_bytes: Counter,
    epochs: Counter,
    imports: Counter,
    rotate_micros: Histogram,
    footprint: Gauge,
    /// Deterministic deep memory account (live aggregators + stored
    /// summaries), maintained incrementally at merge/compress/rotate
    /// boundaries — the accounting plane's per-store gauge.
    memory: Gauge,
    /// Newest ingested simulated timestamp — the ops plane's freshness
    /// rules compare it against "now".
    watermark: Gauge,
    /// Simulated timestamp of the last epoch rotation (rotation lag).
    last_rotation: Gauge,
    /// Live nodes across the store's *distinct* Flowtree arenas (shared
    /// arenas counted once).
    arena_nodes: Gauge,
    /// Stored flowtree summaries that were hash-consed onto an
    /// already-stored arena.
    arena_dedup_hits: Gauge,
    /// Bytes held by the store's distinct Flowtree arenas (the shareable
    /// part of the deep-memory account).
    arena_bytes: Gauge,
}

impl StoreMetrics {
    fn for_store(tel: &Telemetry, store: &str) -> Self {
        StoreMetrics {
            flows: tel.counter(&labeled("datastore.ingest.flows_total", "store", store)),
            scalars: tel.counter(&labeled("datastore.ingest.scalars_total", "store", store)),
            raw_bytes: tel.counter(&labeled("datastore.ingest.raw_bytes_total", "store", store)),
            exported_bytes: tel.counter(&labeled(
                "datastore.export.summary_bytes_total",
                "store",
                store,
            )),
            epochs: tel.counter(&labeled("datastore.epoch.rotations_total", "store", store)),
            imports: tel.counter(&labeled("datastore.import.summaries_total", "store", store)),
            rotate_micros: tel.histogram(
                &labeled("datastore.epoch.rotate.micros", "store", store),
                LATENCY_MICROS_BOUNDS,
            ),
            footprint: tel.gauge(&labeled("datastore.footprint_bytes", "store", store)),
            memory: tel.gauge(&labeled("store.memory.bytes", "store", store)),
            watermark: tel.gauge(&labeled("datastore.watermark_micros", "store", store)),
            last_rotation: tel.gauge(&labeled(
                "datastore.epoch.last_rotation_micros",
                "store",
                store,
            )),
            arena_nodes: tel.gauge(&labeled("flowtree.arena.nodes", "store", store)),
            arena_dedup_hits: tel.gauge(&labeled("flowtree.arena.dedup_hits", "store", store)),
            arena_bytes: tel.gauge(&labeled("flowtree.arena.bytes", "store", store)),
        }
    }
}

/// One data store in the hierarchy.
///
/// ```
/// use megastream_datastore::{AggregatorSpec, DataStore, StorageStrategy};
/// use megastream_flow::record::FlowRecord;
/// use megastream_flow::time::{TimeDelta, Timestamp};
/// use megastream_flowtree::FlowtreeConfig;
///
/// let mut store = DataStore::new(
///     "region-0",
///     StorageStrategy::RoundRobin { budget_bytes: 1 << 20 },
///     TimeDelta::from_secs(60),
/// );
/// let agg = store.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
/// let rec = FlowRecord::builder()
///     .proto(6)
///     .src("10.0.0.1".parse()?, 443)
///     .dst("1.1.1.1".parse()?, 80)
///     .packets(10)
///     .build();
/// store.ingest_flow(&"router-0".into(), &rec, Timestamp::ZERO);
/// let exported = store.rotate_epoch(Timestamp::from_secs(60));
/// assert_eq!(exported.len(), 1);
/// # let _ = agg;
/// # Ok::<(), megastream_flow::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DataStore {
    name: String,
    epoch_len: TimeDelta,
    epoch_start: Timestamp,
    next_agg_id: usize,
    aggregators: Vec<(AggregatorId, AggregatorSpec, AggregatorInstance)>,
    /// Streams each aggregator subscribed to; empty = all streams of the
    /// matching type ("instances of computing primitives … have subscribed
    /// to the respective data streams").
    subscriptions: BTreeMap<AggregatorId, Vec<StreamId>>,
    /// Streams that contributed to the current epoch (for lineage).
    epoch_sources: Vec<StreamId>,
    summaries: SummaryStore,
    triggers: TriggerEngine,
    stats: StoreStats,
    metrics: StoreMetrics,
}

impl DataStore {
    /// Creates a data store named `name`, storing summaries under
    /// `strategy`, rotating epochs every `epoch_len`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(name: impl Into<String>, strategy: StorageStrategy, epoch_len: TimeDelta) -> Self {
        assert!(!epoch_len.is_zero(), "epoch length must be non-zero");
        let name = name.into();
        DataStore {
            summaries: SummaryStore::new(strategy, &name),
            name,
            epoch_len,
            epoch_start: Timestamp::ZERO,
            next_agg_id: 0,
            aggregators: Vec::new(),
            subscriptions: BTreeMap::new(),
            epoch_sources: Vec::new(),
            triggers: TriggerEngine::new(),
            stats: StoreStats::default(),
            metrics: StoreMetrics::default(),
        }
    }

    /// Connects this store to a telemetry registry; its ingest, rotation,
    /// import, and footprint metrics are recorded under names labeled with
    /// the store's name. Passing [`Telemetry::disabled`] detaches again.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.metrics = StoreMetrics::for_store(tel, &self.name);
    }

    /// Builder-style [`DataStore::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.set_telemetry(tel);
        self
    }

    /// The store's name (its location in lineage records).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured epoch length.
    pub fn epoch_len(&self) -> TimeDelta {
        self.epoch_len
    }

    /// When the current epoch started.
    pub fn epoch_start(&self) -> Timestamp {
        self.epoch_start
    }

    /// Whether `now` has passed the end of the current epoch.
    pub fn epoch_due(&self, now: Timestamp) -> bool {
        now >= self.epoch_start + self.epoch_len
    }

    /// Ingest statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    // ------------------------------------------------------------------
    // aggregator management (driven by the manager, Fig. 3b)
    // ------------------------------------------------------------------

    /// Installs an aggregator; it initially subscribes to all streams of
    /// its input type.
    pub fn install_aggregator(&mut self, spec: AggregatorSpec) -> AggregatorId {
        let id = AggregatorId(self.next_agg_id);
        self.next_agg_id += 1;
        let instance = spec.build();
        self.aggregators.push((id, spec, instance));
        id
    }

    /// Removes an aggregator. Returns whether it existed.
    pub fn remove_aggregator(&mut self, id: AggregatorId) -> bool {
        let before = self.aggregators.len();
        self.aggregators.retain(|(aid, _, _)| *aid != id);
        self.subscriptions.remove(&id);
        before != self.aggregators.len()
    }

    /// Restricts an aggregator to the given stream (may be called multiple
    /// times to subscribe to several streams).
    ///
    /// # Panics
    ///
    /// Panics if the aggregator does not exist.
    pub fn subscribe(&mut self, id: AggregatorId, stream: StreamId) {
        assert!(
            self.aggregators.iter().any(|(aid, _, _)| *aid == id),
            "unknown aggregator {id}"
        );
        self.subscriptions.entry(id).or_default().push(stream);
    }

    /// Number of installed aggregators.
    pub fn aggregator_count(&self) -> usize {
        self.aggregators.len()
    }

    /// Access to a live aggregator (e.g. for direct queries, Fig. 5 ⑤).
    pub fn aggregator(&self, id: AggregatorId) -> Option<&AggregatorInstance> {
        self.aggregators
            .iter()
            .find(|(aid, _, _)| *aid == id)
            .map(|(_, _, inst)| inst)
    }

    /// Mutable access to a live aggregator (manager reconfiguration).
    pub fn aggregator_mut(&mut self, id: AggregatorId) -> Option<&mut AggregatorInstance> {
        self.aggregators
            .iter_mut()
            .find(|(aid, _, _)| *aid == id)
            .map(|(_, _, inst)| inst)
    }

    /// Ids of all installed aggregators.
    pub fn aggregator_ids(&self) -> Vec<AggregatorId> {
        self.aggregators.iter().map(|(id, _, _)| *id).collect()
    }

    fn is_subscribed(&self, id: AggregatorId, stream: &StreamId) -> bool {
        match self.subscriptions.get(&id) {
            None => true,
            Some(streams) => streams.is_empty() || streams.contains(stream),
        }
    }

    // ------------------------------------------------------------------
    // data path (Fig. 3a)
    // ------------------------------------------------------------------

    /// Ingests one flow record from `stream`, feeding subscribed
    /// aggregators and evaluating triggers. Returns any trigger firings
    /// (to be delivered to the controller).
    pub fn ingest_flow(
        &mut self,
        stream: &StreamId,
        rec: &FlowRecord,
        now: Timestamp,
    ) -> Vec<TriggerEvent> {
        self.stats.flows += 1;
        self.stats.raw_bytes += FlowRecord::WIRE_BYTES as u64;
        self.metrics.flows.inc();
        self.metrics.raw_bytes.add(FlowRecord::WIRE_BYTES as u64);
        self.metrics.watermark.set(now.as_micros() as i64);
        self.note_source(stream);
        let ids: Vec<AggregatorId> = self
            .aggregators
            .iter()
            .filter(|(_, spec, _)| spec.consumes_flows())
            .map(|(id, _, _)| *id)
            .collect();
        for id in ids {
            if self.is_subscribed(id, stream) {
                if let Some(inst) = self.aggregator_mut(id) {
                    inst.ingest_flow(rec, now);
                }
            }
        }
        self.triggers.on_flow(rec, now)
    }

    /// Ingests one scalar reading from `stream`. Returns trigger firings.
    pub fn ingest_scalar(
        &mut self,
        stream: &StreamId,
        value: f64,
        now: Timestamp,
    ) -> Vec<TriggerEvent> {
        self.stats.scalars += 1;
        self.stats.raw_bytes += 16;
        self.metrics.scalars.inc();
        self.metrics.raw_bytes.add(16);
        self.metrics.watermark.set(now.as_micros() as i64);
        self.note_source(stream);
        let ids: Vec<AggregatorId> = self
            .aggregators
            .iter()
            .filter(|(_, spec, _)| !spec.consumes_flows())
            .map(|(id, _, _)| *id)
            .collect();
        for id in ids {
            if self.is_subscribed(id, stream) {
                if let Some(inst) = self.aggregator_mut(id) {
                    inst.ingest_scalar(value, now);
                }
            }
        }
        self.triggers.on_scalar(stream, value, now)
    }

    fn note_source(&mut self, stream: &StreamId) {
        if !self.epoch_sources.contains(stream) {
            self.epoch_sources.push(stream.clone());
        }
    }

    /// Closes the current epoch: snapshots every aggregator into the
    /// summary store and returns copies of the snapshots for export to
    /// parent stores (Fig. 5 ③). Aggregator state is reset.
    pub fn rotate_epoch(&mut self, now: Timestamp) -> Vec<StoredSummary> {
        let timer = ScopedTimer::start(&self.metrics.rotate_micros);
        self.metrics.last_rotation.set(now.as_micros() as i64);
        let window = TimeWindow::new(self.epoch_start, now.max(self.epoch_start));
        let mut exported = Vec::new();
        for (id, _, inst) in &mut self.aggregators {
            // An aggregator's lineage names the streams that actually fed
            // it: its explicit subscriptions, or every stream seen this
            // epoch if it subscribed to all.
            let sources: Vec<String> = match self.subscriptions.get(id) {
                Some(streams) if !streams.is_empty() => {
                    streams.iter().map(|s| s.as_str().to_owned()).collect()
                }
                _ => self
                    .epoch_sources
                    .iter()
                    .map(|s| s.as_str().to_owned())
                    .collect(),
            };
            let mut lineage = Lineage {
                sources,
                transforms: Vec::new(),
            };
            lineage.record("snapshot", &self.name, now);
            let summary = inst.snapshot(window);
            inst.reset();
            let stored =
                StoredSummary::new(format!("{}/{}", self.name, id), window, summary, lineage);
            self.stats.exported_bytes += stored.wire_size() as u64;
            exported.push(stored.clone());
            self.summaries.insert(stored, now);
        }
        self.epoch_sources.clear();
        self.epoch_start = now;
        self.stats.epochs += 1;
        self.metrics.epochs.inc();
        self.metrics
            .exported_bytes
            .add(exported.iter().map(|s| s.wire_size() as u64).sum());
        self.update_memory_gauges();
        timer.stop();
        exported
    }

    /// Imports a summary produced elsewhere (a child store's export or a
    /// replica; Fig. 5 ③/④).
    pub fn import_summary(&mut self, mut summary: StoredSummary, now: Timestamp) {
        summary.lineage.record("import", &self.name, now);
        self.metrics.imports.inc();
        self.summaries.insert(summary, now);
        self.update_memory_gauges();
    }

    // ------------------------------------------------------------------
    // crash recovery (driven by the durable cold tier's replay)
    // ------------------------------------------------------------------

    /// Re-applies one sealed epoch rotation during crash recovery: the
    /// summaries the original rotation exported are inserted back into the
    /// summary store (same order, so round-robin eviction replays
    /// identically) and the rotation bookkeeping — export accounting, epoch
    /// counter, epoch start — is repeated. The caller re-delivers the same
    /// summaries upward, exactly as the original rotation did.
    pub fn restore_rotation(&mut self, exported: &[StoredSummary], at: Timestamp) {
        for stored in exported {
            self.stats.exported_bytes += stored.wire_size() as u64;
            self.summaries.insert(stored.clone(), at);
        }
        self.epoch_start = at;
        self.stats.epochs += 1;
        self.update_memory_gauges();
    }

    /// Restores the cumulative ingest counters from a recovery snapshot.
    /// Absolute values: the raw records that produced them were summarized
    /// and discarded, so they cannot be re-counted — only restored.
    pub fn restore_ingest_stats(&mut self, flows: u64, scalars: u64, raw_bytes: u64) {
        self.stats.flows = flows;
        self.stats.scalars = scalars;
        self.stats.raw_bytes = raw_bytes;
    }

    // ------------------------------------------------------------------
    // queries (the Data API of Fig. 4)
    // ------------------------------------------------------------------

    /// The summary store (read access for analytics/FlowDB export).
    pub fn summaries(&self) -> &SummaryStore {
        &self.summaries
    }

    /// Estimated score of traffic matching `key` within `window`, summed
    /// over all stored flow summaries overlapping the window, plus the live
    /// aggregators if the window extends into the current epoch.
    pub fn flow_score(&self, key: &FlowKey, window: TimeWindow) -> Popularity {
        let mut total: Popularity = self
            .summaries
            .summaries_in(window)
            .filter_map(|s| s.summary.flow_score(key))
            .sum();
        if window.end > self.epoch_start {
            total += self.live_flow_score(key);
        }
        total
    }

    /// Score of traffic matching `key` in the current (uncommitted) epoch.
    pub fn live_flow_score(&self, key: &FlowKey) -> Popularity {
        self.aggregators
            .iter()
            .filter_map(|(_, _, inst)| match inst {
                AggregatorInstance::Flowtree(t) => Some(t.query(key)),
                AggregatorInstance::Exact(t) => Some(t.query(key)),
                _ => None,
            })
            .max()
            .unwrap_or(Popularity::ZERO)
    }

    // ------------------------------------------------------------------
    // triggers (installed by applications via the controller)
    // ------------------------------------------------------------------

    /// Installs a trigger.
    pub fn install_trigger(
        &mut self,
        installed_by: impl Into<String>,
        condition: TriggerCondition,
        cooldown: TimeDelta,
    ) -> TriggerId {
        self.triggers.install(installed_by, condition, cooldown)
    }

    /// Removes a trigger.
    pub fn remove_trigger(&mut self, id: TriggerId) -> bool {
        self.triggers.remove(id)
    }

    /// The trigger engine (read access).
    pub fn triggers(&self) -> &TriggerEngine {
        &self.triggers
    }

    // ------------------------------------------------------------------
    // resource management (driven by the manager)
    // ------------------------------------------------------------------

    /// Total live-aggregator footprint in bytes.
    pub fn live_footprint(&self) -> usize {
        self.aggregators
            .iter()
            .map(|(_, _, inst)| inst.footprint_bytes())
            .sum()
    }

    /// Total footprint including stored summaries.
    pub fn footprint_bytes(&self) -> usize {
        self.live_footprint() + self.summaries.total_bytes()
    }

    /// Deterministic deep memory size of the whole store, recomputed
    /// independently from scratch: every live aggregator's `deep_bytes`
    /// plus every stored summary's. The accounting property tests compare
    /// this against [`DataStore::accounted_bytes`].
    pub fn deep_bytes(&self) -> usize {
        let live: usize = self
            .aggregators
            .iter()
            .map(|(_, _, inst)| inst.deep_bytes())
            .sum();
        live + self.summaries.deep_bytes()
    }

    /// The incrementally maintained deep-byte account carried by the
    /// `store.memory.bytes` gauge: live aggregators (O(#aggregators), each
    /// a pure function of its element count) plus the summary store's
    /// delta-maintained total.
    pub fn accounted_bytes(&self) -> usize {
        let live: usize = self
            .aggregators
            .iter()
            .map(|(_, _, inst)| inst.deep_bytes())
            .sum();
        live + self.summaries.accounted_deep_bytes()
    }

    /// Refreshes the footprint/memory gauges plus the flowtree arena gauges
    /// (distinct-arena nodes/bytes and cross-summary dedup hits).
    fn update_memory_gauges(&self) {
        self.metrics.footprint.set(self.footprint_bytes() as i64);
        self.metrics.memory.set(self.accounted_bytes() as i64);
        let (nodes, bytes) = self.summaries.arena_stats();
        self.metrics.arena_nodes.set(nodes as i64);
        self.metrics.arena_bytes.set(bytes as i64);
        self.metrics
            .arena_dedup_hits
            .set(self.summaries.dedup_hits() as i64);
    }

    /// Distributes `budget` equally across aggregators and lets each adapt
    /// (property P4 driven by the store).
    pub fn adapt_aggregators(&mut self, budget: usize, ingest_rate: f64) {
        if self.aggregators.is_empty() {
            return;
        }
        let per = budget / self.aggregators.len();
        let feedback = AdaptationFeedback {
            ingest_rate,
            footprint_budget: per,
            query_granularity: None,
        };
        for (_, _, inst) in &mut self.aggregators {
            inst.adapt(&feedback);
        }
        self.metrics.memory.set(self.accounted_bytes() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::key::FeatureSet;
    use megastream_flow::score::ScoreKind;
    use megastream_flowtree::FlowtreeConfig;

    fn store() -> DataStore {
        DataStore::new(
            "test-store",
            StorageStrategy::RoundRobin {
                budget_bytes: 1 << 20,
            },
            TimeDelta::from_secs(60),
        )
    }

    fn rec(src: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 5555)
            .dst("1.1.1.1".parse().unwrap(), 443)
            .packets(packets)
            .build()
    }

    #[test]
    fn install_subscribe_ingest() {
        let mut s = store();
        let ft = s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        s.subscribe(ft, "router-0".into());
        // Subscribed stream reaches the aggregator; others do not.
        s.ingest_flow(&"router-0".into(), &rec("10.0.0.1", 5), Timestamp::ZERO);
        s.ingest_flow(&"router-1".into(), &rec("10.0.0.2", 7), Timestamp::ZERO);
        let key = FlowKey::root();
        assert_eq!(s.live_flow_score(&key).value(), 5);
        assert_eq!(s.stats().flows, 2);
    }

    #[test]
    fn unsubscribed_aggregator_gets_everything() {
        let mut s = store();
        s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        s.ingest_flow(&"a".into(), &rec("10.0.0.1", 5), Timestamp::ZERO);
        s.ingest_flow(&"b".into(), &rec("10.0.0.2", 7), Timestamp::ZERO);
        assert_eq!(s.live_flow_score(&FlowKey::root()).value(), 12);
    }

    #[test]
    fn rotate_epoch_snapshots_and_resets() {
        let mut s = store();
        s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        s.install_aggregator(AggregatorSpec::ExactFlows {
            features: FeatureSet::FIVE_TUPLE,
            score_kind: ScoreKind::Packets,
        });
        s.ingest_flow(&"r0".into(), &rec("10.0.0.1", 5), Timestamp::from_secs(10));
        let exported = s.rotate_epoch(Timestamp::from_secs(60));
        assert_eq!(exported.len(), 2);
        assert_eq!(s.summaries().len(), 2);
        // Live state reset.
        assert_eq!(s.live_flow_score(&FlowKey::root()), Popularity::ZERO);
        // Summary window covers the epoch.
        assert_eq!(exported[0].window.start, Timestamp::ZERO);
        assert_eq!(exported[0].window.end, Timestamp::from_secs(60));
        // Lineage carries the source stream and the snapshot transform.
        assert_eq!(exported[0].lineage.sources, vec!["r0"]);
        assert_eq!(exported[0].lineage.transforms[0].op, "snapshot");
        assert_eq!(s.stats().epochs, 1);
        assert!(s.stats().exported_bytes > 0);
    }

    #[test]
    fn flow_score_spans_stored_and_live() {
        let mut s = store();
        s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        s.ingest_flow(&"r0".into(), &rec("10.0.0.1", 5), Timestamp::from_secs(10));
        s.rotate_epoch(Timestamp::from_secs(60));
        s.ingest_flow(&"r0".into(), &rec("10.0.0.1", 3), Timestamp::from_secs(70));
        let all_time = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(120));
        assert_eq!(s.flow_score(&FlowKey::root(), all_time).value(), 8);
        // Query restricted to the first epoch only sees the stored 5.
        let first = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60));
        assert_eq!(s.flow_score(&FlowKey::root(), first).value(), 5);
    }

    #[test]
    fn import_records_lineage() {
        let mut parent = store();
        let mut child = store();
        child.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        child.ingest_flow(&"r0".into(), &rec("10.0.0.1", 5), Timestamp::from_secs(1));
        let exported = child.rotate_epoch(Timestamp::from_secs(60));
        parent.import_summary(exported[0].clone(), Timestamp::from_secs(61));
        assert_eq!(parent.summaries().len(), 1);
        let imported = parent.summaries().iter().next().unwrap();
        assert_eq!(imported.lineage.transforms.last().unwrap().op, "import");
    }

    #[test]
    fn epoch_due() {
        let mut s = store();
        assert!(!s.epoch_due(Timestamp::from_secs(30)));
        assert!(s.epoch_due(Timestamp::from_secs(60)));
        s.rotate_epoch(Timestamp::from_secs(60));
        assert!(!s.epoch_due(Timestamp::from_secs(90)));
    }

    #[test]
    fn trigger_path_on_ingest() {
        let mut s = store();
        s.install_trigger(
            "app",
            TriggerCondition::ScalarAbove {
                stream: "m0/temp".into(),
                threshold: 80.0,
            },
            TimeDelta::ZERO,
        );
        let events = s.ingest_scalar(&"m0/temp".into(), 99.0, Timestamp::ZERO);
        assert_eq!(events.len(), 1);
        assert_eq!(s.triggers().fired(), 1);
    }

    #[test]
    fn adapt_shrinks_oversized_aggregators() {
        let mut s = store();
        let id = s.install_aggregator(AggregatorSpec::Flowtree(
            FlowtreeConfig::default().with_capacity(4096),
        ));
        for i in 0..500u32 {
            s.ingest_flow(
                &"r0".into(),
                &rec(&format!("10.{}.{}.1", i % 20, i % 100), 1),
                Timestamp::ZERO,
            );
        }
        let before = s.live_footprint();
        s.adapt_aggregators(before / 50, 500.0);
        assert!(s.live_footprint() < before);
        assert!(s.aggregator(id).is_some());
    }

    #[test]
    fn remove_aggregator() {
        let mut s = store();
        let id = s.install_aggregator(AggregatorSpec::Flowtree(FlowtreeConfig::default()));
        assert_eq!(s.aggregator_count(), 1);
        assert!(s.remove_aggregator(id));
        assert!(!s.remove_aggregator(id));
        assert_eq!(s.aggregator_count(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown aggregator")]
    fn subscribe_unknown_panics() {
        let mut s = store();
        s.subscribe(AggregatorId(7), "x".into());
    }
}
