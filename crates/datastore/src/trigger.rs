//! Triggers: the data store's fast path to the controller.
//!
//! "Applications … install triggers in the data store, to influence future
//! behavior. As the name suggests, triggers are triggered by events and
//! then signal a controller" (§III-A). Triggers are evaluated on the data
//! path — against raw readings and flow records as they arrive — so the
//! controller can react within machine-level time budgets without waiting
//! for analytics.

use std::fmt;

use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::Popularity;
use megastream_flow::time::{TimeDelta, Timestamp};

use crate::store::StreamId;

/// Identifier of an installed trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TriggerId(pub(crate) usize);

impl fmt::Display for TriggerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trig{}", self.0)
    }
}

/// The condition a trigger matches.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerCondition {
    /// A scalar reading on `stream` exceeds `threshold`.
    ScalarAbove {
        /// The watched stream.
        stream: StreamId,
        /// Firing threshold.
        threshold: f64,
    },
    /// A scalar reading on `stream` falls below `threshold`.
    ScalarBelow {
        /// The watched stream.
        stream: StreamId,
        /// Firing threshold.
        threshold: f64,
    },
    /// Accumulated score of flows matching `key` exceeds `threshold`
    /// within a sliding window of `window_len` (e.g. a DDoS rate trigger).
    FlowScoreAbove {
        /// Flows matching this (generalized) key are counted.
        key: FlowKey,
        /// Score threshold within the window.
        threshold: Popularity,
        /// Sliding-window length.
        window_len: TimeDelta,
    },
}

/// An installed trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    /// Identifier within the owning data store.
    pub id: TriggerId,
    /// Name of the application that installed it.
    pub installed_by: String,
    /// The matching condition.
    pub condition: TriggerCondition,
    /// Minimum time between firings (debounce), so a persistently abnormal
    /// signal does not flood the controller.
    pub cooldown: TimeDelta,
}

/// A firing produced when a trigger matches.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerEvent {
    /// Which trigger fired.
    pub trigger: TriggerId,
    /// The application that installed it.
    pub installed_by: String,
    /// When it fired.
    pub at: Timestamp,
    /// The observed value/score that crossed the threshold.
    pub observed: f64,
}

/// Per-trigger runtime state.
#[derive(Debug, Clone, Default)]
struct TriggerState {
    last_fired: Option<Timestamp>,
    /// For flow-score triggers: (timestamp, score) events in the window.
    window: Vec<(Timestamp, u64)>,
}

/// The trigger registry and matcher of one data store.
#[derive(Debug, Clone, Default)]
pub struct TriggerEngine {
    triggers: Vec<(Trigger, TriggerState)>,
    next_id: usize,
    fired: u64,
}

impl TriggerEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        TriggerEngine::default()
    }

    /// Installs a trigger, returning its id.
    pub fn install(
        &mut self,
        installed_by: impl Into<String>,
        condition: TriggerCondition,
        cooldown: TimeDelta,
    ) -> TriggerId {
        let id = TriggerId(self.next_id);
        self.next_id += 1;
        self.triggers.push((
            Trigger {
                id,
                installed_by: installed_by.into(),
                condition,
                cooldown,
            },
            TriggerState::default(),
        ));
        id
    }

    /// Removes a trigger. Returns whether it existed.
    pub fn remove(&mut self, id: TriggerId) -> bool {
        let before = self.triggers.len();
        self.triggers.retain(|(t, _)| t.id != id);
        before != self.triggers.len()
    }

    /// Number of installed triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// Whether no triggers are installed.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Total number of firings so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Installed triggers.
    pub fn iter(&self) -> impl Iterator<Item = &Trigger> {
        self.triggers.iter().map(|(t, _)| t)
    }

    /// Evaluates a scalar reading, returning any firings.
    pub fn on_scalar(&mut self, stream: &StreamId, value: f64, at: Timestamp) -> Vec<TriggerEvent> {
        let mut out = Vec::new();
        for (trigger, state) in &mut self.triggers {
            let hit = match &trigger.condition {
                TriggerCondition::ScalarAbove {
                    stream: s,
                    threshold,
                } => s == stream && value > *threshold,
                TriggerCondition::ScalarBelow {
                    stream: s,
                    threshold,
                } => s == stream && value < *threshold,
                TriggerCondition::FlowScoreAbove { .. } => false,
            };
            if hit && cooldown_ok(state, trigger.cooldown, at) {
                state.last_fired = Some(at);
                self.fired += 1;
                out.push(TriggerEvent {
                    trigger: trigger.id,
                    installed_by: trigger.installed_by.clone(),
                    at,
                    observed: value,
                });
            }
        }
        out
    }

    /// Evaluates a flow record, returning any firings.
    pub fn on_flow(&mut self, rec: &FlowRecord, at: Timestamp) -> Vec<TriggerEvent> {
        let mut out = Vec::new();
        let rec_key = FlowKey::from_record(rec);
        for (trigger, state) in &mut self.triggers {
            if let TriggerCondition::FlowScoreAbove {
                key,
                threshold,
                window_len,
            } = &trigger.condition
            {
                if !key.contains(&rec_key) {
                    continue;
                }
                state.window.push((at, rec.packets));
                // Slide the window.
                state.window.retain(|(ts, _)| *ts + *window_len > at);
                let score: u64 = state.window.iter().map(|(_, s)| s).sum();
                if score > threshold.value() && cooldown_ok(state, trigger.cooldown, at) {
                    state.last_fired = Some(at);
                    self.fired += 1;
                    out.push(TriggerEvent {
                        trigger: trigger.id,
                        installed_by: trigger.installed_by.clone(),
                        at,
                        observed: score as f64,
                    });
                }
            }
        }
        out
    }
}

fn cooldown_ok(state: &TriggerState, cooldown: TimeDelta, at: Timestamp) -> bool {
    match state.last_fired {
        None => true,
        Some(last) => at.saturating_since(last) >= cooldown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(name: &str) -> StreamId {
        StreamId::new(name)
    }

    #[test]
    fn scalar_above_fires_once_per_cooldown() {
        let mut eng = TriggerEngine::new();
        let id = eng.install(
            "maintenance-app",
            TriggerCondition::ScalarAbove {
                stream: stream("m0/temperature"),
                threshold: 80.0,
            },
            TimeDelta::from_secs(10),
        );
        // Below threshold → nothing.
        assert!(eng
            .on_scalar(&stream("m0/temperature"), 75.0, Timestamp::ZERO)
            .is_empty());
        // Above → fires.
        let events = eng.on_scalar(&stream("m0/temperature"), 85.0, Timestamp::from_secs(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trigger, id);
        assert_eq!(events[0].observed, 85.0);
        // Within cooldown → suppressed.
        assert!(eng
            .on_scalar(&stream("m0/temperature"), 90.0, Timestamp::from_secs(5))
            .is_empty());
        // After cooldown → fires again.
        assert_eq!(
            eng.on_scalar(&stream("m0/temperature"), 90.0, Timestamp::from_secs(12))
                .len(),
            1
        );
        assert_eq!(eng.fired(), 2);
    }

    #[test]
    fn scalar_triggers_are_stream_scoped() {
        let mut eng = TriggerEngine::new();
        eng.install(
            "app",
            TriggerCondition::ScalarAbove {
                stream: stream("m0/temperature"),
                threshold: 80.0,
            },
            TimeDelta::ZERO,
        );
        assert!(eng
            .on_scalar(&stream("m1/temperature"), 99.0, Timestamp::ZERO)
            .is_empty());
    }

    #[test]
    fn scalar_below() {
        let mut eng = TriggerEngine::new();
        eng.install(
            "app",
            TriggerCondition::ScalarBelow {
                stream: stream("m0/current"),
                threshold: 5.0,
            },
            TimeDelta::ZERO,
        );
        assert_eq!(
            eng.on_scalar(&stream("m0/current"), 2.0, Timestamp::ZERO)
                .len(),
            1
        );
    }

    #[test]
    fn flow_score_trigger_slides_window() {
        let mut eng = TriggerEngine::new();
        let victim = FlowKey::root().with_dst_prefix("9.9.9.9/32".parse().unwrap());
        eng.install(
            "ddos-app",
            TriggerCondition::FlowScoreAbove {
                key: victim,
                threshold: Popularity::new(100),
                window_len: TimeDelta::from_secs(10),
            },
            TimeDelta::from_secs(30),
        );
        let attack = |ts: u64| {
            FlowRecord::builder()
                .ts(Timestamp::from_secs(ts))
                .proto(17)
                .src("1.2.3.4".parse().unwrap(), 5000)
                .dst("9.9.9.9".parse().unwrap(), 53)
                .packets(30)
                .build()
        };
        // 3 records × 30 packets = 90 ≤ 100 → no firing yet.
        for ts in 0..3 {
            assert!(eng
                .on_flow(&attack(ts), Timestamp::from_secs(ts))
                .is_empty());
        }
        // Fourth crosses 100.
        let events = eng.on_flow(&attack(3), Timestamp::from_secs(3));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].observed, 120.0);
        // Unrelated traffic never matches.
        let other = FlowRecord::builder()
            .proto(6)
            .src("1.2.3.4".parse().unwrap(), 5000)
            .dst("8.8.8.8".parse().unwrap(), 443)
            .packets(1000)
            .build();
        assert!(eng.on_flow(&other, Timestamp::from_secs(4)).is_empty());
    }

    #[test]
    fn flow_window_expires_old_traffic() {
        let mut eng = TriggerEngine::new();
        let victim = FlowKey::root().with_dst_prefix("9.9.9.9/32".parse().unwrap());
        eng.install(
            "ddos-app",
            TriggerCondition::FlowScoreAbove {
                key: victim,
                threshold: Popularity::new(50),
                window_len: TimeDelta::from_secs(5),
            },
            TimeDelta::ZERO,
        );
        let attack = |_ts: u64, pkts: u64| {
            FlowRecord::builder()
                .proto(17)
                .src("1.2.3.4".parse().unwrap(), 5000)
                .dst("9.9.9.9".parse().unwrap(), 53)
                .packets(pkts)
                .build()
        };
        // 40 packets at t=0, 40 more at t=10: window slid, never exceeds 50.
        assert!(eng.on_flow(&attack(0, 40), Timestamp::ZERO).is_empty());
        assert!(eng
            .on_flow(&attack(10, 40), Timestamp::from_secs(10))
            .is_empty());
    }

    #[test]
    fn install_remove() {
        let mut eng = TriggerEngine::new();
        let id = eng.install(
            "app",
            TriggerCondition::ScalarAbove {
                stream: stream("s"),
                threshold: 1.0,
            },
            TimeDelta::ZERO,
        );
        assert_eq!(eng.len(), 1);
        assert!(eng.remove(id));
        assert!(!eng.remove(id));
        assert!(eng.is_empty());
    }
}
