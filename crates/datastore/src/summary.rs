//! Type-erased data summaries and schema-level lineage.
//!
//! Data stores exchange summaries up and down the hierarchy; since a store
//! may host heterogeneous aggregators, the exchanged unit is the
//! [`Summary`] enum. Every stored summary carries a [`Lineage`] tag —
//! *schema-level* lineage as argued in §III-C ("instance-level … usually
//! comes at a high cost"): which sources fed it and which transformations it
//! went through, but not per-item provenance.

use megastream_flow::key::FlowKey;
use megastream_flow::record::FlowRecord;
use megastream_flow::score::{Popularity, ScoreKind};
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::Flowtree;
use megastream_primitives::aggregator::{Combinable, ComputingPrimitive};
use megastream_primitives::exact::ExactFlowTable;
use megastream_primitives::sampling::SampledSeries;
use megastream_primitives::spacesaving::SpaceSaving;
use megastream_primitives::timebin::BinnedSeries;

/// One record of a transformation applied to a summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformRecord {
    /// Operation name (`"snapshot"`, `"merge"`, `"hierarchical-aggregate"`,
    /// `"replicate"`, ...).
    pub op: String,
    /// Where it happened (data-store name).
    pub location: String,
    /// When it happened.
    pub at: Timestamp,
}

/// Schema-level lineage: sources and transformation chain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lineage {
    /// Stream/sensor identifiers that contributed data.
    pub sources: Vec<String>,
    /// Transformations applied, oldest first.
    pub transforms: Vec<TransformRecord>,
}

impl Lineage {
    /// Lineage with a single source.
    pub fn from_source(source: impl Into<String>) -> Self {
        Lineage {
            sources: vec![source.into()],
            transforms: Vec::new(),
        }
    }

    /// Appends a transformation record.
    pub fn record(&mut self, op: impl Into<String>, location: impl Into<String>, at: Timestamp) {
        self.transforms.push(TransformRecord {
            op: op.into(),
            location: location.into(),
            at,
        });
    }

    /// Merges another lineage (union of sources, concatenated transforms).
    pub fn absorb(&mut self, other: &Lineage) {
        for s in &other.sources {
            if !self.sources.contains(s) {
                self.sources.push(s.clone());
            }
        }
        self.transforms.extend(other.transforms.iter().cloned());
    }
}

/// A type-erased data summary produced by some aggregator.
// Flowtree dwarfs the other variants; summaries are moved, not stored in
// dense arrays, so the padding is cheaper than boxing every query path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Summary {
    /// A Flowtree (network-monitoring primitive, §VI).
    Flowtree(Flowtree),
    /// A sampled time series (the §V-B toy primitive).
    Series(SampledSeries),
    /// Time-bin statistics.
    Bins(BinnedSeries),
    /// Space-Saving top flows.
    TopFlows(SpaceSaving<FlowKey>),
    /// An exact flow table (ground truth / small streams).
    Exact(ExactFlowTable),
    /// Raw flow records (Fig. 4 "Raw Access"): the most recent records,
    /// bounded by the ring capacity — full detail, shortest retention.
    Raw {
        /// The retained records, oldest first.
        records: Vec<FlowRecord>,
        /// The measure [`Summary::flow_score`] counts over them.
        score_kind: ScoreKind,
    },
}

impl Summary {
    /// Short kind name (used in lineage and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Summary::Flowtree(_) => "flowtree",
            Summary::Series(_) => "series",
            Summary::Bins(_) => "bins",
            Summary::TopFlows(_) => "top-flows",
            Summary::Exact(_) => "exact",
            Summary::Raw { .. } => "raw",
        }
    }

    /// Approximate serialized size in bytes (drives storage budgets and
    /// transfer accounting).
    pub fn wire_size(&self) -> usize {
        match self {
            Summary::Flowtree(t) => t.wire_size(),
            Summary::Series(s) => s.len() * 24 + 32,
            Summary::Bins(b) => b.len() * 320 + 32,
            Summary::TopFlows(ss) => ss.len() * (std::mem::size_of::<FlowKey>() + 16) + 32,
            Summary::Exact(t) => t.len() * (std::mem::size_of::<FlowKey>() + 8) + 32,
            Summary::Raw { records, .. } => records.len() * FlowRecord::WIRE_BYTES + 32,
        }
    }

    /// Deterministic deep in-memory size in bytes — the accounting-plane
    /// counterpart of [`Summary::wire_size`]. A pure function of element
    /// counts (never allocator capacities), so independently recomputing
    /// it always reproduces the incrementally maintained gauges.
    pub fn deep_bytes(&self) -> usize {
        match self {
            Summary::Flowtree(t) => t.deep_bytes(),
            Summary::TopFlows(ss) => ComputingPrimitive::deep_bytes(ss),
            Summary::Exact(t) => ComputingPrimitive::deep_bytes(t),
            Summary::Raw { records, .. } => records.len() * FlowRecord::WIRE_BYTES + 32,
            // Scalar summaries: the wire estimate is already a pure
            // function of their element counts.
            Summary::Series(_) | Summary::Bins(_) => self.wire_size(),
        }
    }

    /// The inner Flowtree, if this is a flowtree summary. The store-level
    /// dedup and shared-arena accounting only apply to flowtrees (the one
    /// summary kind with sharable storage).
    pub fn as_flowtree(&self) -> Option<&Flowtree> {
        match self {
            Summary::Flowtree(t) => Some(t),
            _ => None,
        }
    }

    /// Mutable access to the inner Flowtree, if this is a flowtree summary.
    pub fn as_flowtree_mut(&mut self) -> Option<&mut Flowtree> {
        match self {
            Summary::Flowtree(t) => Some(t),
            _ => None,
        }
    }

    /// Number of discrete elements (tree nodes, counters, entries,
    /// records) the summary holds.
    pub fn node_count(&self) -> usize {
        match self {
            Summary::Flowtree(t) => t.node_count(),
            Summary::Series(s) => s.len(),
            Summary::Bins(b) => b.len(),
            Summary::TopFlows(ss) => ss.len(),
            Summary::Exact(t) => t.len(),
            Summary::Raw { records, .. } => records.len(),
        }
    }

    /// Combines another summary of the *same kind* into this one
    /// (property P2).
    ///
    /// # Panics
    ///
    /// Panics if the kinds differ — heterogeneous summaries cannot be
    /// combined meaningfully.
    pub fn combine(&mut self, other: &Summary) {
        match (self, other) {
            (Summary::Flowtree(a), Summary::Flowtree(b)) => a.merge(b),
            (Summary::Series(a), Summary::Series(b)) => a.combine(b),
            (Summary::Bins(a), Summary::Bins(b)) => a.combine(b),
            (Summary::TopFlows(a), Summary::TopFlows(b)) => a.combine(b),
            (Summary::Exact(a), Summary::Exact(b)) => a.combine(b),
            (Summary::Raw { records: a, .. }, Summary::Raw { records: b, .. }) => {
                a.extend_from_slice(b);
                a.sort_by_key(|r| r.ts);
            }
            (me, other) => panic!(
                "cannot combine summary kinds {} and {}",
                me.kind(),
                other.kind()
            ),
        }
    }

    /// Reduces the summary's detail (and footprint) by roughly `factor`
    /// (used by storage strategy S3, hierarchical aggregation).
    pub fn degrade(&mut self, factor: usize) {
        let factor = factor.max(2);
        match self {
            Summary::Flowtree(t) => {
                let target = (t.len() / factor).max(1);
                t.compress_to(target);
            }
            Summary::Series(s) => s.thin(factor),
            Summary::Bins(b) => {
                let width =
                    TimeDelta::from_micros(b.width().as_micros().saturating_mul(factor as u64));
                *b = b.coarsened_to(width);
            }
            Summary::TopFlows(ss) => {
                let target = (ss.len() / factor).max(1);
                ss.set_capacity(target);
            }
            Summary::Exact(_) => {
                // Exact tables are ground truth; degrading them would defeat
                // their purpose. S3 keeps them as-is (they are only used for
                // baselines and small streams).
            }
            Summary::Raw { records, .. } => {
                // Raw records cannot be summarized without changing kind;
                // drop the oldest fraction (they are ordered by time).
                let keep = records.len() / factor;
                let start = records.len() - keep;
                records.drain(..start);
            }
        }
    }

    /// P1 point query where the summary supports it: the score of traffic
    /// matching `key` (flow summaries only).
    pub fn flow_score(&self, key: &FlowKey) -> Option<Popularity> {
        match self {
            Summary::Flowtree(t) => Some(t.query(key)),
            Summary::Exact(t) => Some(t.query(key)),
            Summary::TopFlows(ss) => ss.estimate(key).map(|c| Popularity::new(c.count)),
            Summary::Raw {
                records,
                score_kind,
            } => Some(
                records
                    .iter()
                    .filter(|r| key.contains(&FlowKey::from_record(r)))
                    .map(|r| score_kind.score(r))
                    .sum(),
            ),
            _ => None,
        }
    }
}

/// A summary plus the metadata the data store tracks for it.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSummary {
    /// Name of the producing data store or stream.
    pub source: String,
    /// The period the summary covers.
    pub window: TimeWindow,
    /// Aggregation level: 0 = as produced; each hierarchical re-aggregation
    /// increments it.
    pub level: u32,
    /// Schema-level provenance.
    pub lineage: Lineage,
    /// The payload.
    pub summary: Summary,
}

impl StoredSummary {
    /// Creates a level-0 summary from a freshly produced payload.
    pub fn new(
        source: impl Into<String>,
        window: TimeWindow,
        summary: Summary,
        lineage: Lineage,
    ) -> Self {
        StoredSummary {
            source: source.into(),
            window,
            level: 0,
            lineage,
            summary,
        }
    }

    /// The payload's approximate size in bytes.
    pub fn wire_size(&self) -> usize {
        self.summary.wire_size() + 64
    }

    /// Deterministic deep in-memory size: the payload's
    /// [`Summary::deep_bytes`] plus this record's fixed metadata header.
    /// Lineage strings are excluded deliberately — they grow with merge
    /// *history*, and the accounting invariant (incremental gauge ==
    /// independent recompute) must be a function of structure, not of the
    /// path that produced it.
    pub fn deep_bytes(&self) -> usize {
        self.summary.deep_bytes() + 64
    }

    /// Merges a compatible stored summary into this one: payloads combine,
    /// windows take the hull, lineages union, the level becomes the max.
    ///
    /// # Panics
    ///
    /// Panics if the payload kinds differ.
    pub fn merge(&mut self, other: &StoredSummary, location: &str, at: Timestamp) {
        self.summary.combine(&other.summary);
        self.window = if self.window.is_empty() {
            other.window
        } else if other.window.is_empty() {
            self.window
        } else {
            self.window.hull(other.window)
        };
        self.level = self.level.max(other.level);
        self.lineage.absorb(&other.lineage);
        self.lineage.record("merge", location, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megastream_flow::key::FeatureSet;
    use megastream_flow::record::FlowRecord;
    use megastream_flow::score::ScoreKind;
    use megastream_flowtree::FlowtreeConfig;

    fn rec(src: &str, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src(src.parse().unwrap(), 1000)
            .dst("1.1.1.1".parse().unwrap(), 80)
            .packets(packets)
            .build()
    }

    fn tree_summary(packets: u64) -> Summary {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(256));
        t.observe(&rec("10.0.0.1", packets));
        Summary::Flowtree(t)
    }

    #[test]
    fn lineage_tracks_sources_and_transforms() {
        let mut l = Lineage::from_source("router-0");
        l.record("snapshot", "region-0", Timestamp::from_secs(1));
        let mut l2 = Lineage::from_source("router-1");
        l2.record("snapshot", "region-0", Timestamp::from_secs(1));
        l.absorb(&l2);
        assert_eq!(l.sources, vec!["router-0", "router-1"]);
        assert_eq!(l.transforms.len(), 2);
        // Absorbing the same source twice does not duplicate it.
        l.absorb(&Lineage::from_source("router-0"));
        assert_eq!(l.sources.len(), 2);
    }

    #[test]
    fn combine_same_kind() {
        let mut a = tree_summary(5);
        let b = tree_summary(3);
        a.combine(&b);
        match &a {
            Summary::Flowtree(t) => assert_eq!(t.total().value(), 8),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "cannot combine")]
    fn combine_mismatched_kinds_panics() {
        let mut a = tree_summary(5);
        let b = Summary::Exact(ExactFlowTable::new(
            FeatureSet::FIVE_TUPLE,
            ScoreKind::Packets,
        ));
        a.combine(&b);
    }

    #[test]
    fn degrade_shrinks_flowtree() {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(4096));
        for i in 0..100u32 {
            t.observe(&rec(&format!("10.0.{}.1", i), 1));
        }
        let mut s = Summary::Flowtree(t);
        let before = s.wire_size();
        s.degrade(4);
        assert!(s.wire_size() < before / 2);
        // Mass conserved.
        match &s {
            Summary::Flowtree(t) => assert_eq!(t.total().value(), 100),
            _ => unreachable!(),
        }
    }

    #[test]
    fn flow_score_dispatch() {
        let s = tree_summary(9);
        let key = FlowKey::from_record(&rec("10.0.0.1", 0));
        assert_eq!(s.flow_score(&key), Some(Popularity::new(9)));
        let none = Summary::Series(SampledSeries::default());
        assert_eq!(none.flow_score(&key), None);
    }

    #[test]
    fn stored_summary_merge() {
        let w1 = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(10));
        let w2 = TimeWindow::starting_at(Timestamp::from_secs(10), TimeDelta::from_secs(10));
        let mut a = StoredSummary::new("r0", w1, tree_summary(5), Lineage::from_source("r0"));
        let b = StoredSummary::new("r1", w2, tree_summary(3), Lineage::from_source("r1"));
        a.merge(&b, "region", Timestamp::from_secs(20));
        assert_eq!(a.window.len(), TimeDelta::from_secs(20));
        assert_eq!(a.lineage.sources.len(), 2);
        assert_eq!(a.lineage.transforms.last().unwrap().op, "merge");
    }

    #[test]
    fn kinds_and_sizes() {
        let s = tree_summary(1);
        assert_eq!(s.kind(), "flowtree");
        assert!(s.wire_size() > 0);
        let e = Summary::Exact(ExactFlowTable::new(
            FeatureSet::FIVE_TUPLE,
            ScoreKind::Packets,
        ));
        assert_eq!(e.kind(), "exact");
    }
}
