//! The three storage strategies of §IV.
//!
//! > "We identify three basic strategies for storing data in the data
//! > store: (1) storage with predefined expiration, (2) storage using a
//! > round-robin mechanism, and (3) storage using a round-robin mechanism
//! > and hierarchical aggregation."

use std::collections::{BTreeMap, BTreeSet};

use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};

use crate::summary::StoredSummary;

/// Refcount + size of one shared Flowtree arena (keyed by its storage
/// token). The accounting plane charges an arena's bytes once, no matter
/// how many deduplicated summaries share it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ArenaRef {
    refs: usize,
    bytes: usize,
}

/// Which storage strategy a [`SummaryStore`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageStrategy {
    /// **S1**: summaries expire `ttl` after the end of their window.
    /// Storage use is unbounded but retention is guaranteed for `ttl`.
    FixedExpiration {
        /// Time to live after a summary's window ends.
        ttl: TimeDelta,
    },
    /// **S2**: a byte budget is fully utilized; when exceeded, the oldest
    /// summaries are evicted. Retention depends on the data rate.
    RoundRobin {
        /// Storage budget in bytes.
        budget_bytes: usize,
    },
    /// **S3**: like S2, but instead of evicting, the oldest `fanout`
    /// summaries of the same source and kind are merged into one coarser
    /// summary ("older data is not expired but aggregated to a coarser
    /// granularity with a smaller footprint").
    RoundRobinHierarchical {
        /// Storage budget in bytes.
        budget_bytes: usize,
        /// How many summaries merge into one per aggregation step.
        fanout: usize,
    },
}

/// A budget-managed collection of [`StoredSummary`] values.
#[derive(Debug, Clone)]
pub struct SummaryStore {
    strategy: StorageStrategy,
    location: String,
    /// Ordered by insertion (oldest first).
    summaries: Vec<StoredSummary>,
    evicted: u64,
    aggregated: u64,
    /// Incrementally maintained sum of the stored summaries'
    /// [`StoredSummary::deep_bytes`], counting each shared Flowtree arena
    /// **once**: adjusted by delta at every insert, eviction, and
    /// hierarchical aggregation instead of re-walking the store. The
    /// accounting property tests assert it equals the independent
    /// recompute [`SummaryStore::deep_bytes`] after arbitrary operation
    /// sequences, with dedup active.
    deep_accounted: usize,
    /// Per-arena refcounts keyed by storage token (BTreeMap: the
    /// determinism gate bans hash iteration in result-affecting crates).
    arena_refs: BTreeMap<u64, ArenaRef>,
    /// How many inserted flowtree summaries were hash-consed onto an
    /// already-stored arena.
    dedup_hits: u64,
}

impl PartialEq for SummaryStore {
    /// Storage tokens are process-lifetime identities, so the refcount map
    /// can never match across independently built stores; equality compares
    /// the *content* (strategy, summaries, history counters) and leaves the
    /// derived accounting state to the property tests that check it against
    /// recompute.
    fn eq(&self, other: &Self) -> bool {
        self.strategy == other.strategy
            && self.location == other.location
            && self.summaries == other.summaries
            && self.evicted == other.evicted
            && self.aggregated == other.aggregated
    }
}

impl SummaryStore {
    /// Creates an empty store running `strategy` at `location` (the
    /// location is recorded in lineage when the store transforms data).
    pub fn new(strategy: StorageStrategy, location: impl Into<String>) -> Self {
        SummaryStore {
            strategy,
            location: location.into(),
            summaries: Vec::new(),
            evicted: 0,
            aggregated: 0,
            deep_accounted: 0,
            arena_refs: BTreeMap::new(),
            dedup_hits: 0,
        }
    }

    /// Charges an incoming summary to the deep-byte account. A flowtree
    /// whose arena is already referenced (deduplicated or snapshot-shared)
    /// is charged its header only — the arena bytes are already on the
    /// books under its token.
    fn account_insert(&mut self, s: &StoredSummary) {
        let mut charge = s.deep_bytes();
        if let Some(t) = s.summary.as_flowtree() {
            let e = self
                .arena_refs
                .entry(t.storage_token())
                .or_insert(ArenaRef { refs: 0, bytes: 0 });
            e.bytes = t.arena_bytes();
            if e.refs > 0 {
                charge -= t.arena_bytes();
            }
            e.refs += 1;
        }
        self.deep_accounted = self.deep_accounted.saturating_add(charge);
    }

    /// Discharges a summary that leaves the store (or is about to be
    /// mutated — callers discharge *before* mutating and re-charge after,
    /// so the account always reflects the state that was charged). The
    /// arena's bytes leave the books only with its last reference.
    fn account_remove(&mut self, s: &StoredSummary) {
        let mut discharge = s.deep_bytes();
        if let Some(t) = s.summary.as_flowtree() {
            let token = t.storage_token();
            if let Some(e) = self.arena_refs.get_mut(&token) {
                e.refs -= 1;
                if e.refs > 0 {
                    discharge -= t.arena_bytes();
                } else {
                    self.arena_refs.remove(&token);
                }
            }
        }
        self.deep_accounted = self.deep_accounted.saturating_sub(discharge);
    }

    /// Hash-consing across epochs and locations: if the incoming summary
    /// is a Flowtree structurally equal to one already stored, adopt the
    /// stored arena so both summaries share one copy. The value number is
    /// the cheap pre-filter; `dedup_with` performs the full structural
    /// comparison before uniting. Newest-first scan: the most likely twin
    /// is a recent epoch's summary.
    fn dedup_incoming(&mut self, incoming: &mut StoredSummary) {
        let Some(tree) = incoming.summary.as_flowtree_mut() else {
            return;
        };
        let vn = tree.value_number();
        for s in self.summaries.iter().rev() {
            let Some(cand) = s.summary.as_flowtree() else {
                continue;
            };
            if cand.len() == tree.len()
                && cand.total() == tree.total()
                && cand.records() == tree.records()
                && !cand.shares_storage_with(tree)
                && cand.value_number() == vn
                && tree.dedup_with(cand)
            {
                self.dedup_hits += 1;
                return;
            }
        }
    }

    /// The strategy in force.
    pub fn strategy(&self) -> StorageStrategy {
        self.strategy
    }

    /// Inserts a summary (deduplicating its arena against stored twins
    /// first) and enforces the strategy at time `now`.
    pub fn insert(&mut self, mut summary: StoredSummary, now: Timestamp) {
        self.dedup_incoming(&mut summary);
        self.account_insert(&summary);
        self.summaries.push(summary);
        self.enforce(now);
    }

    /// Enforces the strategy (expiry/eviction/aggregation) at time `now`.
    pub fn enforce(&mut self, now: Timestamp) {
        match self.strategy {
            StorageStrategy::FixedExpiration { ttl } => {
                let mut kept = Vec::with_capacity(self.summaries.len());
                for s in std::mem::take(&mut self.summaries) {
                    if s.window.end + ttl > now {
                        kept.push(s);
                    } else {
                        self.account_remove(&s);
                        self.evicted += 1;
                    }
                }
                self.summaries = kept;
            }
            StorageStrategy::RoundRobin { budget_bytes } => {
                while self.total_bytes() > budget_bytes && !self.summaries.is_empty() {
                    let gone = self.summaries.remove(0);
                    self.account_remove(&gone);
                    self.evicted += 1;
                }
            }
            StorageStrategy::RoundRobinHierarchical {
                budget_bytes,
                fanout,
            } => {
                let fanout = fanout.max(2);
                while self.total_bytes() > budget_bytes {
                    if !self.aggregate_oldest(fanout, now) {
                        // Nothing left to merge — fall back to eviction so
                        // the budget is still honoured.
                        if self.summaries.is_empty() {
                            break;
                        }
                        let gone = self.summaries.remove(0);
                        self.account_remove(&gone);
                        self.evicted += 1;
                    }
                }
            }
        }
    }

    /// Merges the oldest group of ≥2 same-source same-kind summaries into a
    /// degraded, coarser one. Returns whether any aggregation happened.
    fn aggregate_oldest(&mut self, fanout: usize, now: Timestamp) -> bool {
        // Find the oldest summary that has at least one mergeable sibling.
        for i in 0..self.summaries.len() {
            let (source, kind, level) = {
                let s = &self.summaries[i];
                (s.source.clone(), s.summary.kind(), s.level)
            };
            let mut group = vec![i];
            for (j, s) in self.summaries.iter().enumerate().skip(i + 1) {
                if group.len() >= fanout {
                    break;
                }
                if s.source == source && s.summary.kind() == kind && s.level == level {
                    group.push(j);
                }
            }
            if group.len() >= 2 {
                // Merge group members into the first, back to front so
                // indices stay valid. Accounting: every member is
                // discharged *before* the merge mutates it (the clone
                // shares the stored arena, so its token still matches what
                // was charged), and the compressed result is re-charged
                // once finished.
                let mut base = self.summaries[group[0]].clone();
                self.account_remove(&base);
                for &j in group[1..].iter().rev() {
                    let other = self.summaries.remove(j);
                    self.account_remove(&other);
                    base.merge(&other, &self.location, now);
                }
                base.level = level + 1;
                base.summary.degrade(fanout);
                base.lineage
                    .record("hierarchical-aggregate", &self.location, now);
                self.account_insert(&base);
                self.summaries[group[0]] = base;
                self.aggregated += 1;
                return true;
            }
        }
        false
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.summaries.iter().map(|s| s.wire_size()).sum()
    }

    /// Total deterministic deep in-memory bytes of the stored summaries,
    /// recomputed independently from scratch (the accounting-plane
    /// counterpart of [`SummaryStore::total_bytes`]), counting each shared
    /// Flowtree arena once. The property tests compare this against
    /// [`SummaryStore::accounted_deep_bytes`].
    pub fn deep_bytes(&self) -> usize {
        let mut seen = BTreeSet::new();
        let mut sum = 0usize;
        for s in &self.summaries {
            sum += s.deep_bytes();
            if let Some(t) = s.summary.as_flowtree() {
                if !seen.insert(t.storage_token()) {
                    sum -= t.arena_bytes();
                }
            }
        }
        sum
    }

    /// How many inserted flowtree summaries were deduplicated onto an
    /// already-stored arena (drives the `flowtree.arena.dedup_hits` gauge).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// `(live nodes, arena bytes)` across the *distinct* Flowtree arenas in
    /// the store — shared arenas counted once (drives the
    /// `flowtree.arena.nodes` / `flowtree.arena.bytes` gauges).
    pub fn arena_stats(&self) -> (usize, usize) {
        let mut seen = BTreeSet::new();
        let mut nodes = 0usize;
        let mut bytes = 0usize;
        for s in &self.summaries {
            if let Some(t) = s.summary.as_flowtree() {
                if seen.insert(t.storage_token()) {
                    nodes += t.len();
                    bytes += t.arena_bytes();
                }
            }
        }
        (nodes, bytes)
    }

    /// The incrementally maintained deep-byte account (what the
    /// `store.memory.bytes` gauge carries). Equal to
    /// [`SummaryStore::deep_bytes`] by the accounting invariant.
    pub fn accounted_deep_bytes(&self) -> usize {
        self.deep_accounted
    }

    /// Number of stored summaries.
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }

    /// Summaries whose window overlaps `window`.
    pub fn summaries_in(&self, window: TimeWindow) -> impl Iterator<Item = &StoredSummary> {
        self.summaries
            .iter()
            .filter(move |s| s.window.overlaps(window))
    }

    /// All stored summaries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &StoredSummary> {
        self.summaries.iter()
    }

    /// The oldest window still covered by any summary, if non-empty.
    pub fn oldest_window(&self) -> Option<TimeWindow> {
        self.summaries
            .iter()
            .map(|s| s.window)
            .min_by_key(|w| w.start)
    }

    /// How many summaries were evicted outright (data irrecoverably lost —
    /// "when a data store chooses to delete data, it cannot be recovered").
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// How many hierarchical aggregation steps ran.
    pub fn aggregations(&self) -> u64 {
        self.aggregated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{Lineage, Summary};
    use megastream_flow::record::FlowRecord;
    use megastream_flowtree::{Flowtree, FlowtreeConfig};

    fn tree_summary(n_flows: u32, epoch: u64) -> StoredSummary {
        let mut t = Flowtree::new(FlowtreeConfig::default().with_capacity(4096));
        for i in 0..n_flows {
            t.observe(
                &FlowRecord::builder()
                    .proto(6)
                    .src(format!("10.0.{}.{}", i / 250, i % 250).parse().unwrap(), 99)
                    .dst("1.1.1.1".parse().unwrap(), 443)
                    .packets(1)
                    .build(),
            );
        }
        StoredSummary::new(
            "router-0",
            TimeWindow::starting_at(Timestamp::from_secs(epoch * 60), TimeDelta::from_secs(60)),
            Summary::Flowtree(t),
            Lineage::from_source("router-0"),
        )
    }

    #[test]
    fn s1_expires_old_summaries() {
        let mut store = SummaryStore::new(
            StorageStrategy::FixedExpiration {
                ttl: TimeDelta::from_secs(120),
            },
            "edge",
        );
        for epoch in 0..5 {
            store.insert(
                tree_summary(10, epoch),
                Timestamp::from_secs(epoch * 60 + 60),
            );
        }
        // At t=360 s only summaries with window.end + ttl > 360 survive,
        // i.e. end > 240 s — epoch 4 alone (epoch 3 ends exactly at 240).
        store.enforce(Timestamp::from_secs(360));
        assert_eq!(store.len(), 1);
        assert!(store.evicted() >= 4);
        assert_eq!(
            store.oldest_window().unwrap().start,
            Timestamp::from_secs(240)
        );
    }

    #[test]
    fn s2_honours_budget_by_dropping_oldest() {
        let one_size = tree_summary(50, 0).wire_size();
        let mut store = SummaryStore::new(
            StorageStrategy::RoundRobin {
                budget_bytes: one_size * 3,
            },
            "edge",
        );
        for epoch in 0..10 {
            store.insert(tree_summary(50, epoch), Timestamp::from_secs(epoch * 60));
        }
        assert!(store.total_bytes() <= one_size * 3);
        assert!(store.len() <= 3);
        // Newest survive.
        assert!(store
            .iter()
            .any(|s| s.window.start == Timestamp::from_secs(9 * 60)));
        assert!(store.evicted() >= 7);
    }

    #[test]
    fn s3_aggregates_instead_of_dropping() {
        let one_size = tree_summary(50, 0).wire_size();
        let mut store = SummaryStore::new(
            StorageStrategy::RoundRobinHierarchical {
                budget_bytes: one_size * 3,
                fanout: 2,
            },
            "edge",
        );
        for epoch in 0..10 {
            store.insert(tree_summary(50, epoch), Timestamp::from_secs(epoch * 60));
        }
        assert!(store.total_bytes() <= one_size * 3 + one_size);
        assert!(store.aggregations() > 0);
        // Old data is still covered: some summary reaches back to epoch 0.
        let oldest = store.oldest_window().unwrap();
        assert_eq!(oldest.start, Timestamp::ZERO);
        // Aggregated summaries moved up a level and merged lineage ops.
        let top = store.iter().map(|s| s.level).max().unwrap();
        assert!(top >= 1);
        let agg = store.iter().find(|s| s.level >= 1).unwrap();
        assert!(agg
            .lineage
            .transforms
            .iter()
            .any(|t| t.op == "hierarchical-aggregate"));
    }

    #[test]
    fn s3_retains_total_mass() {
        let mut store = SummaryStore::new(
            StorageStrategy::RoundRobinHierarchical {
                budget_bytes: tree_summary(50, 0).wire_size() * 2,
                fanout: 2,
            },
            "edge",
        );
        for epoch in 0..8 {
            store.insert(tree_summary(50, epoch), Timestamp::from_secs(epoch * 60));
        }
        let total: u64 = store
            .iter()
            .map(|s| match &s.summary {
                Summary::Flowtree(t) => t.total().value(),
                _ => 0,
            })
            .sum();
        // 8 epochs × 50 flows × 1 packet — aggregation loses no mass (as
        // long as nothing was evicted outright).
        assert_eq!(total + store.evicted() * 50, 8 * 50);
    }

    #[test]
    fn query_by_window() {
        let mut store = SummaryStore::new(
            StorageStrategy::FixedExpiration {
                ttl: TimeDelta::from_hours(1),
            },
            "edge",
        );
        for epoch in 0..5 {
            store.insert(tree_summary(5, epoch), Timestamp::from_secs(epoch * 60));
        }
        let w = TimeWindow::starting_at(Timestamp::from_secs(60), TimeDelta::from_secs(120));
        assert_eq!(store.summaries_in(w).count(), 2);
    }
}
