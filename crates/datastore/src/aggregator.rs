//! Installable aggregator instances.
//!
//! "A data store aggregates data, using one or multiple instances of
//! computing primitives, which we refer to as aggregators" (§III-A). The
//! data store hosts heterogeneous primitives, so instances are wrapped in
//! the [`AggregatorInstance`] enum, installed from an [`AggregatorSpec`].

use std::fmt;

use megastream_flow::key::{FeatureSet, FlowKey};
use megastream_flow::record::FlowRecord;
use megastream_flow::score::ScoreKind;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};
use megastream_flowtree::{Flowtree, FlowtreeConfig};
use megastream_primitives::aggregator::{AdaptationFeedback, ComputingPrimitive, Granularity};
use megastream_primitives::exact::ExactFlowTable;
use megastream_primitives::sampling::SampledTimeSeries;
use megastream_primitives::spacesaving::SpaceSaving;
use megastream_primitives::timebin::TimeBinStats;

use crate::summary::Summary;

/// Identifier of an installed aggregator within one data store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AggregatorId(pub(crate) usize);

impl fmt::Display for AggregatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agg{}", self.0)
    }
}

/// Blueprint for installing an aggregator (what the manager configures,
/// Fig. 3b "add/remove", "change parameter").
#[derive(Debug, Clone, PartialEq)]
pub enum AggregatorSpec {
    /// A Flowtree over flow records.
    Flowtree(FlowtreeConfig),
    /// The §V-B toy primitive over a scalar stream.
    SampledSeries {
        /// RNG seed.
        seed: u64,
        /// Initial sampling rate in `(0, 1]`.
        rate: f64,
    },
    /// Time-bin statistics over a scalar stream.
    TimeBins {
        /// Finest bin width.
        width: TimeDelta,
        /// RNG seed for quantile reservoirs.
        seed: u64,
    },
    /// Space-Saving top flows.
    TopFlows {
        /// Number of monitored keys.
        capacity: usize,
        /// Feature projection applied to records.
        features: FeatureSet,
        /// Score measure.
        score_kind: ScoreKind,
    },
    /// An exact flow table.
    ExactFlows {
        /// Feature projection applied to records.
        features: FeatureSet,
        /// Score measure.
        score_kind: ScoreKind,
    },
    /// A raw ring buffer (Fig. 4 "Raw Access"): keeps the most recent
    /// `capacity` records at full detail.
    RawRing {
        /// Maximum records retained.
        capacity: usize,
        /// Measure used when the summary answers score queries.
        score_kind: ScoreKind,
    },
}

impl AggregatorSpec {
    /// Instantiates the aggregator.
    pub fn build(&self) -> AggregatorInstance {
        match self {
            AggregatorSpec::Flowtree(cfg) => {
                AggregatorInstance::Flowtree(Flowtree::new(cfg.clone()))
            }
            AggregatorSpec::SampledSeries { seed, rate } => AggregatorInstance::SampledSeries(
                SampledTimeSeries::new(*seed, Granularity::new(*rate)),
            ),
            AggregatorSpec::TimeBins { width, seed } => {
                AggregatorInstance::TimeBins(TimeBinStats::new(*width, *seed))
            }
            AggregatorSpec::TopFlows {
                capacity,
                features,
                score_kind,
            } => AggregatorInstance::TopFlows {
                sketch: SpaceSaving::new(*capacity),
                features: *features,
                score_kind: *score_kind,
            },
            AggregatorSpec::ExactFlows {
                features,
                score_kind,
            } => AggregatorInstance::Exact(ExactFlowTable::new(*features, *score_kind)),
            AggregatorSpec::RawRing {
                capacity,
                score_kind,
            } => AggregatorInstance::RawRing {
                buf: std::collections::VecDeque::with_capacity((*capacity).min(1 << 16)),
                capacity: (*capacity).max(1),
                score_kind: *score_kind,
            },
        }
    }

    /// Short kind name matching [`Summary::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            AggregatorSpec::Flowtree(_) => "flowtree",
            AggregatorSpec::SampledSeries { .. } => "series",
            AggregatorSpec::TimeBins { .. } => "bins",
            AggregatorSpec::TopFlows { .. } => "top-flows",
            AggregatorSpec::ExactFlows { .. } => "exact",
            AggregatorSpec::RawRing { .. } => "raw",
        }
    }

    /// Whether the aggregator consumes flow records (vs scalar readings).
    pub fn consumes_flows(&self) -> bool {
        matches!(
            self,
            AggregatorSpec::Flowtree(_)
                | AggregatorSpec::TopFlows { .. }
                | AggregatorSpec::ExactFlows { .. }
                | AggregatorSpec::RawRing { .. }
        )
    }
}

/// A live aggregator instance inside a data store.
// Flowtree dwarfs the other variants; instances live in a store's small
// aggregator table, so per-variant boxing would cost more indirection on
// every observe() than the padding costs in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AggregatorInstance {
    /// A Flowtree.
    Flowtree(Flowtree),
    /// A sampled time series.
    SampledSeries(SampledTimeSeries),
    /// Time-bin statistics.
    TimeBins(TimeBinStats),
    /// Space-Saving top flows with its projection parameters.
    TopFlows {
        /// The sketch.
        sketch: SpaceSaving<FlowKey>,
        /// Feature projection applied to records.
        features: FeatureSet,
        /// Score measure.
        score_kind: ScoreKind,
    },
    /// An exact flow table.
    Exact(ExactFlowTable),
    /// A raw ring buffer of recent records.
    RawRing {
        /// The retained records, oldest first.
        buf: std::collections::VecDeque<FlowRecord>,
        /// Maximum records retained.
        capacity: usize,
        /// Score measure for queries.
        score_kind: ScoreKind,
    },
}

impl AggregatorInstance {
    /// Feeds one flow record (no-op for scalar aggregators).
    pub fn ingest_flow(&mut self, rec: &FlowRecord, ts: Timestamp) {
        match self {
            AggregatorInstance::Flowtree(t) => t.ingest(rec, ts),
            AggregatorInstance::TopFlows {
                sketch,
                features,
                score_kind,
            } => {
                let key = FlowKey::from_record_projected(rec, *features);
                sketch.offer(key, score_kind.score(rec).value());
            }
            AggregatorInstance::Exact(t) => t.ingest(rec, ts),
            AggregatorInstance::RawRing { buf, capacity, .. } => {
                if buf.len() == *capacity {
                    buf.pop_front();
                }
                buf.push_back(*rec);
            }
            _ => {}
        }
    }

    /// Feeds one scalar reading (no-op for flow aggregators).
    pub fn ingest_scalar(&mut self, value: f64, ts: Timestamp) {
        match self {
            AggregatorInstance::SampledSeries(s) => s.ingest(&value, ts),
            AggregatorInstance::TimeBins(b) => b.ingest(&value, ts),
            _ => {}
        }
    }

    /// Snapshots the current summary for `window`.
    pub fn snapshot(&self, window: TimeWindow) -> Summary {
        match self {
            AggregatorInstance::Flowtree(t) => Summary::Flowtree(t.snapshot(window)),
            AggregatorInstance::SampledSeries(s) => Summary::Series(s.snapshot(window)),
            AggregatorInstance::TimeBins(b) => Summary::Bins(b.snapshot(window)),
            AggregatorInstance::TopFlows { sketch, .. } => {
                Summary::TopFlows(sketch.snapshot(window))
            }
            AggregatorInstance::Exact(t) => Summary::Exact(t.snapshot(window)),
            AggregatorInstance::RawRing {
                buf, score_kind, ..
            } => Summary::Raw {
                records: buf.iter().copied().collect(),
                score_kind: *score_kind,
            },
        }
    }

    /// Clears accumulated state (epoch rotation).
    pub fn reset(&mut self) {
        match self {
            AggregatorInstance::Flowtree(t) => t.reset(),
            AggregatorInstance::SampledSeries(s) => s.reset(),
            AggregatorInstance::TimeBins(b) => b.reset(),
            AggregatorInstance::TopFlows { sketch, .. } => sketch.reset(),
            AggregatorInstance::Exact(t) => t.reset(),
            AggregatorInstance::RawRing { buf, .. } => buf.clear(),
        }
    }

    /// Current storage footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            AggregatorInstance::Flowtree(t) => t.footprint_bytes(),
            AggregatorInstance::SampledSeries(s) => s.footprint_bytes(),
            AggregatorInstance::TimeBins(b) => b.footprint_bytes(),
            AggregatorInstance::TopFlows { sketch, .. } => sketch.footprint_bytes(),
            AggregatorInstance::Exact(t) => t.footprint_bytes(),
            AggregatorInstance::RawRing { buf, .. } => buf.len() * FlowRecord::WIRE_BYTES,
        }
    }

    /// Deterministic deep memory footprint in bytes (accounting plane):
    /// a pure function of element counts, never allocator capacities, so
    /// the incrementally maintained `store.memory.bytes` gauge can be
    /// verified against an independent recompute.
    pub fn deep_bytes(&self) -> usize {
        match self {
            AggregatorInstance::Flowtree(t) => ComputingPrimitive::deep_bytes(t),
            AggregatorInstance::SampledSeries(s) => s.footprint_bytes(),
            AggregatorInstance::TimeBins(b) => b.footprint_bytes(),
            AggregatorInstance::TopFlows { sketch, .. } => ComputingPrimitive::deep_bytes(sketch),
            AggregatorInstance::Exact(t) => ComputingPrimitive::deep_bytes(t),
            AggregatorInstance::RawRing { buf, .. } => buf.len() * FlowRecord::WIRE_BYTES + 32,
        }
    }

    /// Number of discrete elements the aggregator currently holds (zero
    /// for scalar aggregators without a meaningful element count).
    pub fn node_count(&self) -> usize {
        match self {
            AggregatorInstance::Flowtree(t) => ComputingPrimitive::node_count(t),
            AggregatorInstance::SampledSeries(s) => ComputingPrimitive::node_count(s),
            AggregatorInstance::TimeBins(b) => ComputingPrimitive::node_count(b),
            AggregatorInstance::TopFlows { sketch, .. } => ComputingPrimitive::node_count(sketch),
            AggregatorInstance::Exact(t) => ComputingPrimitive::node_count(t),
            AggregatorInstance::RawRing { buf, .. } => buf.len(),
        }
    }

    /// Property P3: sets the granularity dial.
    pub fn set_granularity(&mut self, g: Granularity) {
        match self {
            AggregatorInstance::Flowtree(t) => t.set_granularity(g),
            AggregatorInstance::SampledSeries(s) => s.set_granularity(g),
            AggregatorInstance::TimeBins(b) => b.set_granularity(g),
            AggregatorInstance::TopFlows { sketch, .. } => sketch.set_granularity(g),
            AggregatorInstance::Exact(t) => t.set_granularity(g),
            AggregatorInstance::RawRing { buf, capacity, .. } => {
                // The dial scales the retained-record count.
                *capacity = ((*capacity as f64) * g.value()).round().max(1.0) as usize;
                while buf.len() > *capacity {
                    buf.pop_front();
                }
            }
        }
    }

    /// The current granularity dial.
    pub fn granularity(&self) -> Granularity {
        match self {
            AggregatorInstance::Flowtree(t) => ComputingPrimitive::granularity(t),
            AggregatorInstance::SampledSeries(s) => s.granularity(),
            AggregatorInstance::TimeBins(b) => b.granularity(),
            AggregatorInstance::TopFlows { sketch, .. } => ComputingPrimitive::granularity(sketch),
            AggregatorInstance::Exact(t) => ComputingPrimitive::granularity(t),
            AggregatorInstance::RawRing { .. } => Granularity::FULL,
        }
    }

    /// Property P4: self-adapts to feedback.
    pub fn adapt(&mut self, feedback: &AdaptationFeedback) {
        match self {
            AggregatorInstance::Flowtree(t) => t.adapt(feedback),
            AggregatorInstance::SampledSeries(s) => s.adapt(feedback),
            AggregatorInstance::TimeBins(b) => b.adapt(feedback),
            AggregatorInstance::TopFlows { sketch, .. } => sketch.adapt(feedback),
            AggregatorInstance::Exact(t) => t.adapt(feedback),
            AggregatorInstance::RawRing { buf, capacity, .. } => {
                // Shrink the ring if over budget.
                let per_rec = FlowRecord::WIRE_BYTES;
                let max_records = (feedback.footprint_budget / per_rec).max(1);
                if *capacity > max_records {
                    *capacity = max_records;
                    while buf.len() > *capacity {
                        buf.pop_front();
                    }
                }
            }
        }
    }

    /// Short kind name matching [`Summary::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            AggregatorInstance::Flowtree(_) => "flowtree",
            AggregatorInstance::SampledSeries(_) => "series",
            AggregatorInstance::TimeBins(_) => "bins",
            AggregatorInstance::TopFlows { .. } => "top-flows",
            AggregatorInstance::Exact(_) => "exact",
            AggregatorInstance::RawRing { .. } => "raw",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .proto(6)
            .src("10.0.0.1".parse().unwrap(), 9000)
            .dst("1.1.1.1".parse().unwrap(), 443)
            .packets(packets)
            .build()
    }

    fn window() -> TimeWindow {
        TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(60))
    }

    #[test]
    fn spec_builds_matching_instances() {
        let specs = [
            AggregatorSpec::Flowtree(FlowtreeConfig::default()),
            AggregatorSpec::SampledSeries { seed: 1, rate: 0.5 },
            AggregatorSpec::TimeBins {
                width: TimeDelta::from_secs(1),
                seed: 1,
            },
            AggregatorSpec::TopFlows {
                capacity: 10,
                features: FeatureSet::FIVE_TUPLE,
                score_kind: ScoreKind::Packets,
            },
            AggregatorSpec::ExactFlows {
                features: FeatureSet::FIVE_TUPLE,
                score_kind: ScoreKind::Packets,
            },
        ];
        for spec in &specs {
            let inst = spec.build();
            assert_eq!(spec.kind(), inst.kind());
            assert_eq!(spec.kind(), inst.snapshot(window()).kind());
        }
    }

    #[test]
    fn flow_ingest_routes_to_flow_aggregators() {
        let mut ft = AggregatorSpec::Flowtree(FlowtreeConfig::default()).build();
        let mut series = AggregatorSpec::SampledSeries { seed: 1, rate: 1.0 }.build();
        ft.ingest_flow(&rec(5), Timestamp::ZERO);
        series.ingest_flow(&rec(5), Timestamp::ZERO); // no-op
        match ft.snapshot(window()) {
            Summary::Flowtree(t) => assert_eq!(t.total().value(), 5),
            _ => unreachable!(),
        }
        match series.snapshot(window()) {
            Summary::Series(s) => assert!(s.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn scalar_ingest_routes_to_scalar_aggregators() {
        let mut bins = AggregatorSpec::TimeBins {
            width: TimeDelta::from_secs(1),
            seed: 1,
        }
        .build();
        bins.ingest_scalar(42.0, Timestamp::ZERO);
        bins.ingest_flow(&rec(5), Timestamp::ZERO); // no-op
        match bins.snapshot(window()) {
            Summary::Bins(b) => {
                assert_eq!(b.aggregate(window()).count(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn top_flows_projects_and_scores() {
        let mut tf = AggregatorSpec::TopFlows {
            capacity: 4,
            features: FeatureSet::SRC_DST_IP,
            score_kind: ScoreKind::Bytes,
        }
        .build();
        let mut r = rec(5);
        r.bytes = 1000;
        tf.ingest_flow(&r, Timestamp::ZERO);
        match tf.snapshot(window()) {
            Summary::TopFlows(ss) => {
                assert_eq!(ss.total(), 1000);
                let key = FlowKey::from_record_projected(&r, FeatureSet::SRC_DST_IP);
                assert_eq!(ss.estimate(&key).unwrap().count, 1000);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn raw_ring_keeps_most_recent_records() {
        let mut ring = AggregatorSpec::RawRing {
            capacity: 3,
            score_kind: ScoreKind::Packets,
        }
        .build();
        for i in 0..5u64 {
            let mut r = rec(i + 1);
            r.ts = Timestamp::from_secs(i);
            ring.ingest_flow(&r, r.ts);
        }
        match ring.snapshot(window()) {
            Summary::Raw { records, .. } => {
                assert_eq!(records.len(), 3);
                // Oldest two evicted: packets 3, 4, 5 remain.
                assert_eq!(
                    records.iter().map(|r| r.packets).collect::<Vec<_>>(),
                    vec![3, 4, 5]
                );
            }
            other => panic!("expected raw summary, got {}", other.kind()),
        }
        assert_eq!(ring.footprint_bytes(), 3 * FlowRecord::WIRE_BYTES);
    }

    #[test]
    fn raw_summary_answers_exact_queries() {
        let mut ring = AggregatorSpec::RawRing {
            capacity: 16,
            score_kind: ScoreKind::Packets,
        }
        .build();
        ring.ingest_flow(&rec(7), Timestamp::ZERO);
        ring.ingest_flow(&rec(3), Timestamp::ZERO);
        let s = ring.snapshot(window());
        let key = FlowKey::from_record(&rec(0));
        assert_eq!(s.flow_score(&key).unwrap().value(), 10);
        assert_eq!(s.flow_score(&FlowKey::root()).unwrap().value(), 10);
    }

    #[test]
    fn raw_ring_adapt_shrinks_to_budget() {
        use megastream_primitives::aggregator::AdaptationFeedback;
        let mut ring = AggregatorSpec::RawRing {
            capacity: 1000,
            score_kind: ScoreKind::Packets,
        }
        .build();
        for i in 0..1000u64 {
            ring.ingest_flow(&rec(i), Timestamp::ZERO);
        }
        let before = ring.footprint_bytes();
        ring.adapt(&AdaptationFeedback::budget(before / 10));
        assert!(ring.footprint_bytes() <= before / 10 + FlowRecord::WIRE_BYTES);
    }

    #[test]
    fn reset_and_footprint_and_granularity() {
        let mut ft = AggregatorSpec::Flowtree(FlowtreeConfig::default().with_capacity(64)).build();
        ft.ingest_flow(&rec(5), Timestamp::ZERO);
        assert!(ft.footprint_bytes() > 0);
        ft.set_granularity(Granularity::new(0.5));
        assert!((ft.granularity().value() - 0.5).abs() < 0.02);
        ft.reset();
        match ft.snapshot(window()) {
            Summary::Flowtree(t) => assert!(t.is_empty()),
            _ => unreachable!(),
        }
    }
}
