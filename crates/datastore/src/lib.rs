//! The **data store** (paper §IV, Fig. 4): the only entity in the
//! architecture that persistently stores data.
//!
//! A data store selects and collects data from sensors, feeds it into
//! *aggregators* (instances of computing primitives that subscribed to the
//! respective streams), matches *triggers* against incoming data on behalf
//! of the controller, and manages its storage budget with one of three
//! strategies (§IV "Storage"):
//!
//! * **S1** fixed expiration — summaries live for a configured TTL,
//! * **S2** round-robin — the budget is fully used; the oldest summaries
//!   are dropped when space runs out,
//! * **S3** round-robin + hierarchical aggregation — instead of dropping,
//!   old summaries are merged and degraded to a coarser granularity with a
//!   smaller footprint ("long-term storage but at the price of reduced
//!   detail").
//!
//! Modules:
//!
//! * [`summary`] — the type-erased [`Summary`](summary::Summary) exchanged
//!   between stores, with schema-level lineage tags (§III-C),
//! * [`aggregator`] — installable aggregator instances,
//! * [`storage`] — the three storage strategies,
//! * [`trigger`] — trigger registry and matching,
//! * [`store`] — the [`DataStore`](store::DataStore) tying it together.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregator;
pub mod storage;
pub mod store;
pub mod summary;
pub mod trigger;

pub use aggregator::{AggregatorId, AggregatorInstance, AggregatorSpec};
pub use storage::{StorageStrategy, SummaryStore};
pub use store::{DataStore, StreamId};
pub use summary::{Lineage, StoredSummary, Summary};
pub use trigger::{Trigger, TriggerCondition, TriggerEngine, TriggerEvent, TriggerId};
