//! A vendored, zero-dependency stand-in for the subset of `proptest` that
//! megastream's property tests use.
//!
//! The build environment is offline (no crates.io), so the real `proptest`
//! cannot be fetched. This crate keeps the property tests' *source* intact
//! by re-implementing the consumed surface: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`Strategy`] with `prop_map`,
//! [`any`], integer-range strategies, [`collection::vec`],
//! [`sample::select`], and [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in one way: cases are drawn from a
//! seeded RNG with **no shrinking**. Failures print the drawn case number;
//! determinism (same binary → same cases) is preserved.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, Standard};

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: Copy + 'static> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Copy + 'static> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// The full-domain strategy, mirroring `proptest::prelude::any`.
pub fn any<T: Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy type of [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A strategy generating `Vec`s of `element` with a length drawn from
    /// `size`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy type of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Picks one element of `options` uniformly, mirroring
    /// `proptest::sample::select`.
    ///
    /// # Panics
    ///
    /// Panics (at sampling time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    /// Strategy type of [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            assert!(!self.options.is_empty(), "select of empty options");
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Stable per-test seed: FNV-1a over the test name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws of its strategies.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                use $crate::__rt::SeedableRng as _;
                let __cases = ($cfg).cases;
                let __seed = $crate::__rt::seed_for(stringify!($name));
                $(let $arg = $strat;)*
                for __case in 0..__cases {
                    let mut __rng = $crate::__rt::StdRng::seed_from_u64(
                        __seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(__case) + 1)),
                    );
                    $(let $arg = $arg.sample(&mut __rng);)*
                    (|| $body)();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
