//! Analytics: "transfer & process" (paper §III-A, Fig. 2a).
//!
//! The Analytics building block sits between data stores and applications:
//! it moves summaries (scatter & gather, publish & subscribe, request &
//! reply), processes them ("embarrassingly parallel" map/reduce/apply),
//! and runs inference (the paper lists machine learning and graph
//! analysis; the kernels here are the small models the two use cases
//! need — anomaly detection and trend extrapolation for predictive
//! maintenance).
//!
//! * [`pipeline`] — composable batch pipelines and parallel map-reduce,
//! * [`transfer`] — scatter/gather and publish/subscribe primitives,
//! * [`inference`] — EWMA anomaly detection, linear trend fitting with
//!   time-to-threshold prediction, and threshold classification.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod inference;
pub mod pipeline;
pub mod transfer;

pub use inference::{EwmaDetector, LinearTrend, ThresholdClassifier};
pub use pipeline::{map_reduce, Pipeline};
pub use transfer::{scatter_gather, PubSub};
