//! Composable processing pipelines and parallel map-reduce.

use std::collections::HashMap;
use std::hash::Hash;

/// A batch-processing pipeline from `I` to `O`, built by composing
/// map/filter/flat-map stages ("pre-processing (e.g., using MapReduce)").
///
/// ```
/// use megastream_analytics::pipeline::Pipeline;
///
/// let mut p = Pipeline::identity()
///     .map(|x: i32| x * 2)
///     .filter(|x| *x > 2)
///     .map(|x| x + 1);
/// assert_eq!(p.apply(vec![1, 2, 3]), vec![5, 7]);
/// ```
pub struct Pipeline<I, O> {
    f: Box<dyn FnMut(Vec<I>) -> Vec<O> + Send>,
    stages: usize,
}

impl<I: 'static> Pipeline<I, I> {
    /// The empty pipeline.
    pub fn identity() -> Self {
        Pipeline {
            f: Box::new(|v| v),
            stages: 0,
        }
    }
}

impl<I: 'static, O: 'static> Pipeline<I, O> {
    /// Appends a per-item transformation.
    #[must_use]
    pub fn map<U: 'static>(mut self, mut f: impl FnMut(O) -> U + Send + 'static) -> Pipeline<I, U> {
        Pipeline {
            f: Box::new(move |v| (self.f)(v).into_iter().map(&mut f).collect()),
            stages: self.stages + 1,
        }
    }

    /// Appends a filter stage.
    #[must_use]
    pub fn filter(mut self, mut p: impl FnMut(&O) -> bool + Send + 'static) -> Pipeline<I, O> {
        Pipeline {
            f: Box::new(move |v| (self.f)(v).into_iter().filter(|x| p(x)).collect()),
            stages: self.stages + 1,
        }
    }

    /// Appends a one-to-many expansion stage.
    #[must_use]
    pub fn flat_map<U: 'static, It>(
        mut self,
        mut f: impl FnMut(O) -> It + Send + 'static,
    ) -> Pipeline<I, U>
    where
        It: IntoIterator<Item = U>,
    {
        Pipeline {
            f: Box::new(move |v| (self.f)(v).into_iter().flat_map(&mut f).collect()),
            stages: self.stages + 1,
        }
    }

    /// Appends a whole-batch stage ("apply").
    #[must_use]
    pub fn apply_stage<U: 'static>(
        mut self,
        mut f: impl FnMut(Vec<O>) -> Vec<U> + Send + 'static,
    ) -> Pipeline<I, U> {
        Pipeline {
            f: Box::new(move |v| f((self.f)(v))),
            stages: self.stages + 1,
        }
    }

    /// Runs the pipeline on one batch.
    pub fn apply(&mut self, batch: Vec<I>) -> Vec<O> {
        (self.f)(batch)
    }

    /// Number of composed stages.
    pub fn stages(&self) -> usize {
        self.stages
    }
}

impl<I, O> std::fmt::Debug for Pipeline<I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pipeline({} stages)", self.stages)
    }
}

/// Parallel map-reduce over a batch: `map` emits `(key, value)` pairs from
/// each item (in parallel across worker threads), `reduce` folds the values
/// of each key.
///
/// ```
/// use megastream_analytics::pipeline::map_reduce;
///
/// let words = vec!["a", "b", "a", "c", "a"];
/// let counts = map_reduce(words, 4, |w| vec![(w, 1u32)], |a, b| a + b);
/// assert_eq!(counts[&"a"], 3);
/// ```
pub fn map_reduce<I, K, V>(
    items: Vec<I>,
    workers: usize,
    map: impl Fn(I) -> Vec<(K, V)> + Sync,
    reduce: impl Fn(V, V) -> V,
) -> HashMap<K, V>
where
    I: Send,
    K: Eq + Hash + Send,
    V: Send,
{
    let workers = workers.max(1);
    let chunk_size = items.len().div_ceil(workers).max(1);
    let chunks: Vec<Vec<I>> = {
        let mut chunks = Vec::new();
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk_size));
            chunks.push(items);
            items = rest;
        }
        chunks
    };
    let mapped: Vec<Vec<(K, V)>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let map = &map;
                s.spawn(move || chunk.into_iter().flat_map(map).collect::<Vec<(K, V)>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map worker panicked"))
            .collect()
    });

    let mut out: HashMap<K, V> = HashMap::new();
    for (k, v) in mapped.into_iter().flatten() {
        match out.remove(&k) {
            Some(prev) => {
                out.insert(k, reduce(prev, v));
            }
            None => {
                out.insert(k, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_composition_order() {
        let mut p = Pipeline::identity()
            .map(|x: i32| x + 1)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| vec![x, x * 10]);
        assert_eq!(p.apply(vec![1, 2, 3]), vec![2, 20, 4, 40]);
        assert_eq!(p.stages(), 3);
    }

    #[test]
    fn apply_stage_sees_whole_batch() {
        let mut p = Pipeline::identity().apply_stage(|mut v: Vec<i32>| {
            v.sort_unstable();
            v
        });
        assert_eq!(p.apply(vec![3, 1, 2]), vec![1, 2, 3]);
    }

    #[test]
    fn empty_batch() {
        let mut p = Pipeline::identity().map(|x: i32| x * 2);
        assert!(p.apply(vec![]).is_empty());
    }

    #[test]
    fn map_reduce_counts_words() {
        let words: Vec<String> = "the quick the lazy the dog"
            .split(' ')
            .map(str::to_owned)
            .collect();
        let counts = map_reduce(words, 3, |w| vec![(w, 1u32)], |a, b| a + b);
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["dog"], 1);
        assert_eq!(counts.len(), 4);
    }

    #[test]
    fn map_reduce_single_worker_matches_many() {
        let items: Vec<u64> = (0..1000).collect();
        let map = |x: u64| vec![(x % 7, x)];
        let one = map_reduce(items.clone(), 1, map, |a, b| a + b);
        let many = map_reduce(items, 8, map, |a, b| a + b);
        assert_eq!(one, many);
    }

    #[test]
    fn map_reduce_empty() {
        let out = map_reduce(Vec::<u32>::new(), 4, |x| vec![(x, x)], |a, _| a);
        assert!(out.is_empty());
    }

    #[test]
    fn map_reduce_more_workers_than_items() {
        let out = map_reduce(vec![1u32, 2], 16, |x| vec![((), x)], |a, b| a + b);
        assert_eq!(out[&()], 3);
    }
}
