//! Transfer semantics: scatter & gather, publish & subscribe.
//!
//! Fig. 2a lists the Analytics transfer repertoire as "Scatter & Gather,
//! Publish & Subscribe, Request & Reply, Forward & Replicate". This module
//! implements the first two as in-process primitives (request/reply is the
//! ordinary function call; forward/replicate is implemented by the
//! data-store/replication layers).

use std::collections::HashMap;

use std::sync::mpsc::{channel, Receiver, Sender};

/// Scatters `items` across `workers` threads, applies `work` to each item,
/// and gathers the results in input order.
///
/// ```
/// use megastream_analytics::transfer::scatter_gather;
///
/// let squares = scatter_gather(vec![1, 2, 3, 4], 2, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn scatter_gather<I, O>(items: Vec<I>, workers: usize, work: impl Fn(I) -> O + Sync) -> Vec<O>
where
    I: Send,
    O: Send,
{
    let workers = workers.max(1);
    let n = items.len();
    let indexed: Vec<(usize, I)> = items.into_iter().enumerate().collect();
    let chunk_size = n.div_ceil(workers).max(1);
    let mut results: Vec<(usize, O)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut rest = indexed;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(chunk_size));
            let chunk = std::mem::replace(&mut rest, tail);
            let work = &work;
            handles.push(s.spawn(move || {
                chunk
                    .into_iter()
                    .map(|(i, item)| (i, work(item)))
                    .collect::<Vec<(usize, O)>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scatter worker panicked"))
            .collect()
    });
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, o)| o).collect()
}

/// A topic-based publish/subscribe bus.
///
/// ```
/// use megastream_analytics::transfer::PubSub;
///
/// let mut bus = PubSub::new();
/// let rx = bus.subscribe("alerts");
/// bus.publish("alerts", "overheat");
/// assert_eq!(rx.try_recv().unwrap(), "overheat");
/// ```
#[derive(Debug)]
pub struct PubSub<T> {
    topics: HashMap<String, Vec<Sender<T>>>,
    published: u64,
    delivered: u64,
}

impl<T: Clone> PubSub<T> {
    /// Creates an empty bus.
    pub fn new() -> Self {
        PubSub {
            topics: HashMap::new(),
            published: 0,
            delivered: 0,
        }
    }

    /// Subscribes to `topic`, returning the receiving end.
    pub fn subscribe(&mut self, topic: impl Into<String>) -> Receiver<T> {
        let (tx, rx) = channel();
        self.topics.entry(topic.into()).or_default().push(tx);
        rx
    }

    /// Publishes `message` to all subscribers of `topic`. Returns how many
    /// subscribers received it. Disconnected subscribers are pruned.
    pub fn publish(&mut self, topic: &str, message: T) -> usize {
        self.published += 1;
        let Some(subs) = self.topics.get_mut(topic) else {
            return 0;
        };
        subs.retain(|tx| tx.send(message.clone()).is_ok());
        self.delivered += subs.len() as u64;
        subs.len()
    }

    /// Number of subscribers currently registered on `topic`.
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.topics.get(topic).map_or(0, Vec::len)
    }

    /// Total messages published.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Total deliveries (messages × subscribers reached).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl<T: Clone> Default for PubSub<T> {
    fn default() -> Self {
        PubSub::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gather_preserves_order() {
        let out = scatter_gather((0..100).collect(), 7, |x: u32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_gather_empty_and_single() {
        assert!(scatter_gather(Vec::<u8>::new(), 4, |x| x).is_empty());
        assert_eq!(scatter_gather(vec![9], 4, |x: u8| x + 1), vec![10]);
    }

    #[test]
    fn pubsub_routes_by_topic() {
        let mut bus = PubSub::new();
        let alerts = bus.subscribe("alerts");
        let stats = bus.subscribe("stats");
        assert_eq!(bus.publish("alerts", 1), 1);
        assert_eq!(bus.publish("stats", 2), 1);
        assert_eq!(bus.publish("nobody", 3), 0);
        assert_eq!(alerts.try_recv().unwrap(), 1);
        assert_eq!(stats.try_recv().unwrap(), 2);
        assert!(alerts.try_recv().is_err());
        assert_eq!(bus.published(), 3);
        assert_eq!(bus.delivered(), 2);
    }

    #[test]
    fn pubsub_fans_out_to_all_subscribers() {
        let mut bus = PubSub::new();
        let rx1 = bus.subscribe("t");
        let rx2 = bus.subscribe("t");
        assert_eq!(bus.publish("t", "x"), 2);
        assert_eq!(rx1.try_recv().unwrap(), "x");
        assert_eq!(rx2.try_recv().unwrap(), "x");
    }

    #[test]
    fn pubsub_prunes_dropped_subscribers() {
        let mut bus = PubSub::new();
        let rx = bus.subscribe("t");
        drop(rx);
        assert_eq!(bus.publish("t", 1), 0);
        assert_eq!(bus.subscriber_count("t"), 0);
    }
}
