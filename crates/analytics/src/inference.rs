//! Inference kernels: "model & learn" (Fig. 2a).
//!
//! Small, dependency-free models sufficient for the paper's application
//! examples: anomaly detection on sensor channels and failure-time
//! extrapolation for predictive maintenance.

use megastream_flow::time::Timestamp;

/// Exponentially-weighted moving average anomaly detector.
///
/// Tracks the EWMA and EW variance of a stream; a value more than
/// `k` standard deviations from the mean is an anomaly.
///
/// ```
/// use megastream_analytics::inference::EwmaDetector;
///
/// let mut det = EwmaDetector::new(0.1, 4.0);
/// for i in 0..100 { det.update(if i % 2 == 0 { 9.0 } else { 11.0 }); }
/// assert!(!det.is_anomaly(10.5));
/// assert!(det.is_anomaly(30.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaDetector {
    alpha: f64,
    k: f64,
    mean: Option<f64>,
    var: f64,
    observations: u64,
}

impl EwmaDetector {
    /// Creates a detector with smoothing factor `alpha ∈ (0, 1]` and
    /// threshold `k` standard deviations.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `k` is not positive.
    pub fn new(alpha: f64, k: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha outside (0, 1]");
        assert!(k > 0.0, "k must be positive");
        EwmaDetector {
            alpha,
            k,
            mean: None,
            var: 0.0,
            observations: 0,
        }
    }

    /// Feeds one observation, returning whether it was anomalous *before*
    /// being absorbed into the model.
    pub fn update(&mut self, value: f64) -> bool {
        let anomalous = self.is_anomaly(value);
        match self.mean {
            None => {
                self.mean = Some(value);
            }
            Some(m) => {
                let delta = value - m;
                let mean = m + self.alpha * delta;
                self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta);
                self.mean = Some(mean);
            }
        }
        self.observations += 1;
        anomalous
    }

    /// Whether `value` deviates more than `k` standard deviations from the
    /// current mean. Always `false` until enough observations accumulated.
    pub fn is_anomaly(&self, value: f64) -> bool {
        if self.observations < 8 {
            return false;
        }
        let Some(mean) = self.mean else { return false };
        let sd = self.var.sqrt().max(1e-9);
        (value - mean).abs() > self.k * sd
    }

    /// The current smoothed mean, if any observation was seen.
    pub fn mean(&self) -> Option<f64> {
        self.mean
    }
}

/// Least-squares linear trend over a window of `(t, value)` points, with
/// time-to-threshold extrapolation — the predictive-maintenance primitive:
/// *"given the vibration trend, when will this machine cross its limit?"*
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearTrend {
    /// Slope in value units per second.
    pub slope: f64,
    /// Value at `t = 0`.
    pub intercept: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearTrend {
    /// Fits a trend to `(timestamp, value)` points.
    ///
    /// Returns `None` for fewer than 2 points or a degenerate time spread.
    pub fn fit(points: &[(Timestamp, f64)]) -> Option<LinearTrend> {
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for (ts, v) in points {
            let x = ts.as_secs_f64();
            sx += x;
            sy += v;
            sxx += x * x;
            sxy += x * v;
        }
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        Some(LinearTrend {
            slope,
            intercept,
            n: points.len(),
        })
    }

    /// Predicted value at `ts`.
    pub fn predict(&self, ts: Timestamp) -> f64 {
        self.intercept + self.slope * ts.as_secs_f64()
    }

    /// Standard error of the fitted slope over the points it was fitted on
    /// (`None` for degenerate inputs). `slope / stderr` is the t-statistic
    /// used to reject noise-induced trends.
    pub fn slope_stderr(&self, points: &[(Timestamp, f64)]) -> Option<f64> {
        if points.len() < 3 {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|(t, _)| t.as_secs_f64()).sum::<f64>() / n;
        let mut ss_res = 0.0;
        let mut ss_x = 0.0;
        for (ts, v) in points {
            let r = v - self.predict(*ts);
            ss_res += r * r;
            let dx = ts.as_secs_f64() - mean_x;
            ss_x += dx * dx;
        }
        if ss_x < 1e-12 {
            return None;
        }
        Some((ss_res / (n - 2.0) / ss_x).sqrt())
    }

    /// When the trend crosses `threshold` (rising trends only): `None` if
    /// the trend is flat/falling or the crossing lies in the past.
    pub fn time_to_threshold(&self, threshold: f64) -> Option<Timestamp> {
        if self.slope <= 0.0 {
            return None;
        }
        let t = (threshold - self.intercept) / self.slope;
        if t < 0.0 {
            return None;
        }
        Some(Timestamp::from_micros((t * 1e6) as u64))
    }
}

/// A plain threshold classifier with hysteresis: enters the alarmed state
/// above `high`, leaves it below `low`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdClassifier {
    high: f64,
    low: f64,
    alarmed: bool,
}

impl ThresholdClassifier {
    /// Creates a classifier with the given hysteresis band.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low <= high, "hysteresis band reversed");
        ThresholdClassifier {
            high,
            low,
            alarmed: false,
        }
    }

    /// Feeds one value; returns the (possibly new) alarmed state.
    pub fn update(&mut self, value: f64) -> bool {
        if self.alarmed {
            if value < self.low {
                self.alarmed = false;
            }
        } else if value > self.high {
            self.alarmed = true;
        }
        self.alarmed
    }

    /// Whether the classifier is currently alarmed.
    pub fn alarmed(&self) -> bool {
        self.alarmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_flags_outliers_not_noise() {
        let mut det = EwmaDetector::new(0.2, 4.0);
        let mut flagged = 0;
        for i in 0..200 {
            // Noise in [9.5, 10.5].
            let v = 10.0 + ((i * 37) % 11) as f64 / 10.0 - 0.5;
            if det.update(v) {
                flagged += 1;
            }
        }
        assert_eq!(flagged, 0, "noise misflagged");
        assert!(det.update(20.0), "clear outlier not flagged");
        assert!((det.mean().unwrap() - 10.0).abs() < 3.0);
    }

    #[test]
    fn ewma_warmup_suppresses_alarms() {
        let mut det = EwmaDetector::new(0.2, 2.0);
        for _ in 0..5 {
            assert!(!det.update(1000.0));
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmaDetector::new(0.0, 3.0);
    }

    #[test]
    fn linear_trend_fits_exact_line() {
        let points: Vec<(Timestamp, f64)> = (0..10)
            .map(|i| (Timestamp::from_secs(i), 2.0 + 0.5 * i as f64))
            .collect();
        let trend = LinearTrend::fit(&points).unwrap();
        assert!((trend.slope - 0.5).abs() < 1e-9);
        assert!((trend.intercept - 2.0).abs() < 1e-9);
        assert!((trend.predict(Timestamp::from_secs(20)) - 12.0).abs() < 1e-9);
        // Crosses 7.0 at t = 10 s.
        let eta = trend.time_to_threshold(7.0).unwrap();
        assert!((eta.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn slope_stderr_separates_signal_from_noise() {
        // Clean rising line: tiny stderr, huge t-statistic.
        let clean: Vec<(Timestamp, f64)> = (0..30)
            .map(|i| (Timestamp::from_secs(i), i as f64 * 0.5))
            .collect();
        let t1 = LinearTrend::fit(&clean).unwrap();
        let se1 = t1.slope_stderr(&clean).unwrap();
        assert!(t1.slope / se1.max(1e-12) > 100.0);
        // Pure alternating noise: slope insignificant.
        let noisy: Vec<(Timestamp, f64)> = (0..30)
            .map(|i| (Timestamp::from_secs(i), if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let t2 = LinearTrend::fit(&noisy).unwrap();
        let se2 = t2.slope_stderr(&noisy).unwrap();
        assert!(
            t2.slope.abs() / se2 < 2.0,
            "t-stat {}",
            t2.slope.abs() / se2
        );
        // Too few points.
        assert!(t1.slope_stderr(&clean[..2]).is_none());
    }

    #[test]
    fn linear_trend_degenerate_cases() {
        assert!(LinearTrend::fit(&[]).is_none());
        assert!(LinearTrend::fit(&[(Timestamp::ZERO, 1.0)]).is_none());
        // Same timestamp twice → degenerate spread.
        assert!(LinearTrend::fit(&[(Timestamp::ZERO, 1.0), (Timestamp::ZERO, 2.0)]).is_none());
        // Falling trend never reaches a higher threshold.
        let falling = LinearTrend::fit(&[
            (Timestamp::from_secs(0), 10.0),
            (Timestamp::from_secs(10), 5.0),
        ])
        .unwrap();
        assert!(falling.time_to_threshold(20.0).is_none());
    }

    #[test]
    fn threshold_classifier_hysteresis() {
        let mut c = ThresholdClassifier::new(70.0, 80.0);
        assert!(!c.update(75.0)); // inside band, not alarmed
        assert!(c.update(85.0)); // crosses high
        assert!(c.update(75.0)); // inside band, stays alarmed
        assert!(!c.update(65.0)); // below low, clears
        assert!(!c.alarmed());
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn threshold_rejects_reversed_band() {
        let _ = ThresholdClassifier::new(10.0, 5.0);
    }
}
