//! Synthetic workload generators.
//!
//! The paper evaluates its vision against data we cannot have: live router
//! flow exports, factory sensor feeds, and an SAP-internal "enterprise-level
//! query trace" (§VII). This crate provides deterministic synthetic
//! equivalents that exercise the same code paths (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`netflow`] — sampled flow records with Zipf-skewed, hierarchically
//!   clustered addresses, diurnal rate modulation, and injectable
//!   DDoS/port-scan events,
//! * [`factory`] — machine sensor channels (temperature/vibration/current)
//!   with degradation models, plus camera byte-rate sources using the
//!   paper's own 52 GB/h (3D) and 17.5 GB/h (HD) figures,
//! * [`querytrace`] — per-partition access traces with configurable
//!   future-access distributions for the adaptive-replication experiments,
//! * [`dist`] — the small deterministic samplers (Zipf, exponential,
//!   Pareto, log-normal, binomial) the generators are built from.
//!
//! All generators are seeded and produce identical output for identical
//! parameters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod factory;
pub mod netflow;
pub mod querytrace;

pub use dist::Zipf;
pub use factory::{CameraKind, FactoryWorkload, SensorChannel, SensorReading};
pub use netflow::{FlowTraceConfig, FlowTraceGenerator};
pub use querytrace::{AccessDistribution, PartitionAccess, QueryTraceConfig};
