//! Deterministic samplers used by the workload generators.
//!
//! Only `rand`'s core RNG is available offline, so the classic distributions
//! are implemented here directly (inversion sampling for Zipf, exponential
//! and Pareto; Box–Muller for the normal/log-normal; exact Bernoulli
//! counting with a normal-approximation fast path for the binomial).

use rand::Rng;

/// A Zipf(`n`, `s`) sampler over ranks `0..n` (rank 0 most popular).
///
/// Uses a precomputed CDF and binary search, so sampling is `O(log n)` and
/// exact.
///
/// ```
/// use megastream_workloads::dist::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(1000, 1.1);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut hits0 = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) == 0 { hits0 += 1; }
/// }
/// // Rank 0 carries a large share of the mass under s = 1.1.
/// assert!(hits0 > 500);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Samples an exponential with the given `mean` (inversion method).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples a Pareto with scale `x_min` and shape `alpha` (inversion method).
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(
        x_min > 0.0 && alpha > 0.0,
        "pareto parameters must be positive"
    );
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a log-normal with the given parameters of the underlying normal.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Samples Binomial(`n`, `p`).
///
/// Exact Bernoulli counting for small `n`; for large `n` a clamped normal
/// approximation (adequate for the packet-thinning use case, where only the
/// aggregate behaviour matters).
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "binomial p outside 0..=1");
    if p == 0.0 || n == 0 {
        return 0;
    }
    if (p - 1.0).abs() < f64::EPSILON {
        return n;
    }
    if n <= 256 {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let draw = mean + sd * standard_normal(rng);
        draw.round().clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zipf_is_skewed_and_ordered() {
        let z = Zipf::new(100, 1.0);
        let mut counts = vec![0usize; 100];
        let mut r = rng();
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // Rank 0 beats rank 10 beats rank 90.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Harmonic weights: rank 0 share ≈ 1/H(100) ≈ 0.193.
        let share0 = counts[0] as f64 / 100_000.0;
        assert!((share0 - 0.193).abs() < 0.02, "share {share0}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        let mut r = rng();
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 5_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "support")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let mean: f64 = (0..50_000).map(|_| exponential(&mut r, 3.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn log_normal_is_positive_with_sane_median() {
        let mut r = rng();
        let mut vals: Vec<f64> = (0..10_001).map(|_| log_normal(&mut r, 1.0, 0.5)).collect();
        assert!(vals.iter().all(|v| *v > 0.0));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[5000];
        // Median of LogNormal(μ, σ) is e^μ ≈ 2.718.
        assert!(
            (median - std::f64::consts::E).abs() < 0.15,
            "median {median}"
        );
    }

    #[test]
    fn binomial_edges_and_mean() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
        // Small-n exact path.
        let m: f64 = (0..20_000)
            .map(|_| binomial(&mut r, 100, 0.3) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((m - 30.0).abs() < 0.5, "mean {m}");
        // Large-n approximate path.
        let m2: f64 = (0..5_000)
            .map(|_| binomial(&mut r, 100_000, 0.0001) as f64)
            .sum::<f64>()
            / 5_000.0;
        assert!((m2 - 10.0).abs() < 1.0, "mean {m2}");
    }

    #[test]
    fn determinism() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
