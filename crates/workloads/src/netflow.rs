//! Synthetic sampled-NetFlow traces.
//!
//! Substitutes for the live router exports of §II-B: "they typically rely on
//! either flow-level or packet-level captures from routers … packets are
//! sampled, e.g., 1 of every 10K packets". The generator produces flow
//! records whose keys are Zipf-skewed and hierarchically clustered (so
//! prefix-level aggregation is meaningful), with diurnal rate modulation and
//! injectable attack events, and supports packet sampling at a configurable
//! rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use megastream_flow::addr::Ipv4Addr;
use megastream_flow::record::FlowRecord;
use megastream_flow::time::{TimeDelta, TimeWindow, Timestamp};

use crate::dist::{self, Zipf};

/// A traffic anomaly injected into the trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficEvent {
    /// A volumetric DDoS: many random sources flood one destination.
    Ddos {
        /// When the attack is active.
        window: TimeWindow,
        /// The victim address.
        target: Ipv4Addr,
        /// The victim port.
        target_port: u16,
        /// Attack flows per second, added on top of the baseline.
        flows_per_sec: f64,
    },
    /// A port scan: one source probes many ports of one destination.
    PortScan {
        /// When the scan is active.
        window: TimeWindow,
        /// The scanning host.
        source: Ipv4Addr,
        /// The scanned host.
        target: Ipv4Addr,
        /// Probe flows per second.
        flows_per_sec: f64,
    },
}

/// Configuration of a [`FlowTraceGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowTraceConfig {
    /// RNG seed; identical configs produce identical traces.
    pub seed: u64,
    /// Baseline flow records per simulated second.
    pub flows_per_sec: f64,
    /// Trace duration.
    pub duration: TimeDelta,
    /// Number of internal (source) hosts.
    pub internal_hosts: usize,
    /// Number of external (destination) hosts.
    pub external_hosts: usize,
    /// Zipf exponent for host popularity.
    pub host_skew: f64,
    /// Zipf exponent for destination-port popularity.
    pub port_skew: f64,
    /// Amplitude of the diurnal rate modulation in `0..=1` (0 = flat,
    /// 1 = rate swings between 0× and 2× baseline over 24 h).
    pub diurnal_amplitude: f64,
    /// Injected anomalies.
    pub events: Vec<TrafficEvent>,
}

impl Default for FlowTraceConfig {
    fn default() -> Self {
        FlowTraceConfig {
            seed: 1,
            flows_per_sec: 100.0,
            duration: TimeDelta::from_mins(10),
            internal_hosts: 2_000,
            external_hosts: 5_000,
            host_skew: 1.1,
            port_skew: 1.2,
            diurnal_amplitude: 0.0,
            events: Vec::new(),
        }
    }
}

/// Well-known destination ports, most popular first.
const POPULAR_PORTS: [u16; 12] = [443, 80, 53, 22, 25, 123, 3389, 8080, 993, 5060, 1194, 8443];

/// Deterministic generator of sampled-NetFlow-like traces.
///
/// ```
/// use megastream_workloads::netflow::{FlowTraceConfig, FlowTraceGenerator};
///
/// let config = FlowTraceConfig::default();
/// let trace: Vec<_> = FlowTraceGenerator::new(config).collect();
/// assert!(!trace.is_empty());
/// // Timestamps are non-decreasing.
/// assert!(trace.windows(2).all(|w| w[0].ts <= w[1].ts));
/// ```
#[derive(Debug, Clone)]
pub struct FlowTraceGenerator {
    config: FlowTraceConfig,
    rng: StdRng,
    now: Timestamp,
    end: Timestamp,
    internal_pool: Vec<Ipv4Addr>,
    external_pool: Vec<Ipv4Addr>,
    host_zipf_internal: Zipf,
    host_zipf_external: Zipf,
    port_zipf: Zipf,
    /// Pending event flows scheduled before the next baseline flow.
    event_backlog: Vec<FlowRecord>,
}

impl FlowTraceGenerator {
    /// Creates a generator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the host pools are empty or the rate is not positive.
    pub fn new(config: FlowTraceConfig) -> Self {
        assert!(config.internal_hosts > 0, "internal host pool is empty");
        assert!(config.external_hosts > 0, "external host pool is empty");
        assert!(config.flows_per_sec > 0.0, "flow rate must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let internal_pool = hierarchical_pool(&mut rng, config.internal_hosts, 10);
        let external_pool = hierarchical_pool(&mut rng, config.external_hosts, 23);
        let host_zipf_internal = Zipf::new(config.internal_hosts, config.host_skew);
        let host_zipf_external = Zipf::new(config.external_hosts, config.host_skew);
        let port_zipf = Zipf::new(POPULAR_PORTS.len() + 100, config.port_skew);
        let end = Timestamp::ZERO + config.duration;
        FlowTraceGenerator {
            config,
            rng,
            now: Timestamp::ZERO,
            end,
            internal_pool,
            external_pool,
            host_zipf_internal,
            host_zipf_external,
            port_zipf,
            event_backlog: Vec::new(),
        }
    }

    /// The configuration this generator runs with.
    pub fn config(&self) -> &FlowTraceConfig {
        &self.config
    }

    /// Instantaneous rate multiplier from the diurnal model at `ts`.
    fn diurnal_factor(&self, ts: Timestamp) -> f64 {
        if self.config.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        // Peak at 20:00, trough at 08:00 of each simulated day.
        let day = 86_400.0;
        let phase = (ts.as_secs_f64() % day) / day * std::f64::consts::TAU;
        1.0 + self.config.diurnal_amplitude * (phase - 1.5 * std::f64::consts::PI).sin()
    }

    fn next_baseline(&mut self) -> FlowRecord {
        let rate = self.config.flows_per_sec * self.diurnal_factor(self.now);
        let gap = dist::exponential(&mut self.rng, 1.0 / rate.max(1e-9));
        self.now += TimeDelta::from_micros((gap * 1e6) as u64);
        let src = self.internal_pool[self.host_zipf_internal.sample(&mut self.rng)];
        let dst = self.external_pool[self.host_zipf_external.sample(&mut self.rng)];
        let port_rank = self.port_zipf.sample(&mut self.rng);
        let dst_port = if port_rank < POPULAR_PORTS.len() {
            POPULAR_PORTS[port_rank]
        } else {
            self.rng.gen_range(1024..=65535)
        };
        let proto = match self.rng.gen_range(0..100) {
            0..=79 => 6,
            80..=94 => 17,
            _ => 1,
        };
        let packets = dist::pareto(&mut self.rng, 1.0, 1.3).min(1e7) as u64;
        let mean_size = self.rng.gen_range(60u64..1400);
        FlowRecord::builder()
            .ts(self.now)
            .proto(proto)
            .src(src, self.rng.gen_range(32768..=65535))
            .dst(dst, dst_port)
            .packets(packets.max(1))
            .bytes(packets.max(1) * mean_size)
            .build()
    }

    /// Generates the attack flows an event contributes around `ts` (one
    /// inter-arrival's worth).
    fn event_flows(&mut self, upto: Timestamp) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        let events = self.config.events.clone();
        for ev in &events {
            match ev {
                TrafficEvent::Ddos {
                    window,
                    target,
                    target_port,
                    flows_per_sec,
                } if window.contains(upto) => {
                    // Expected number of attack flows in the last gap.
                    let gap = upto.saturating_since(window.start).as_secs_f64();
                    let _ = gap;
                    let expect = flows_per_sec / self.config.flows_per_sec;
                    let n =
                        expect.floor() as u64 + u64::from(self.rng.gen::<f64>() < expect.fract());
                    for _ in 0..n {
                        let spoofed = Ipv4Addr::from_octets([
                            self.rng.gen_range(1..224),
                            self.rng.gen(),
                            self.rng.gen(),
                            self.rng.gen(),
                        ]);
                        out.push(
                            FlowRecord::builder()
                                .ts(upto)
                                .proto(17)
                                .src(spoofed, self.rng.gen_range(1024..=65535))
                                .dst(*target, *target_port)
                                .packets(self.rng.gen_range(1..20))
                                .bytes(self.rng.gen_range(60..1200))
                                .build(),
                        );
                    }
                }
                TrafficEvent::PortScan {
                    window,
                    source,
                    target,
                    flows_per_sec,
                } if window.contains(upto) => {
                    let expect = flows_per_sec / self.config.flows_per_sec;
                    let n =
                        expect.floor() as u64 + u64::from(self.rng.gen::<f64>() < expect.fract());
                    for _ in 0..n {
                        out.push(
                            FlowRecord::builder()
                                .ts(upto)
                                .proto(6)
                                .src(*source, self.rng.gen_range(32768..=65535))
                                .dst(*target, self.rng.gen_range(1..=10_000))
                                .packets(1)
                                .bytes(60)
                                .build(),
                        );
                    }
                }
                _ => {}
            }
        }
        out
    }
}

impl Iterator for FlowTraceGenerator {
    type Item = FlowRecord;

    fn next(&mut self) -> Option<FlowRecord> {
        if let Some(rec) = self.event_backlog.pop() {
            return Some(rec);
        }
        let rec = self.next_baseline();
        if rec.ts >= self.end {
            return None;
        }
        self.event_backlog = self.event_flows(rec.ts);
        Some(rec)
    }
}

/// Builds an address pool with prefix locality: hosts cluster into /24s,
/// /24s into /16s, /16s into a handful of /8s — so prefix-level aggregation
/// (Flowtree's domain knowledge) has structure to exploit.
fn hierarchical_pool<R: Rng + ?Sized>(rng: &mut R, n: usize, base_octet: u8) -> Vec<Ipv4Addr> {
    let n_8 = 4usize;
    let n_16 = 8usize;
    let n_24 = 32usize;
    let zipf8 = Zipf::new(n_8, 1.2);
    let zipf16 = Zipf::new(n_16, 1.2);
    let zipf24 = Zipf::new(n_24, 1.2);
    let mut pool = Vec::with_capacity(n);
    for _ in 0..n {
        let a = base_octet.wrapping_add(zipf8.sample(rng) as u8 * 13);
        let b = (zipf16.sample(rng) * 5 % 256) as u8;
        let c = (zipf24.sample(rng) * 3 % 256) as u8;
        let d: u8 = rng.gen();
        pool.push(Ipv4Addr::from_octets([a.max(1), b, c, d]));
    }
    pool
}

/// Thins a trace by per-packet sampling at `1/rate` (e.g. `rate = 10_000`
/// for the paper's 1:10K): each packet of each record survives
/// independently; records with no surviving packet are dropped. Byte counts
/// scale with the surviving packet fraction.
///
/// Estimates over the thinned trace should be scaled back up by `rate`
/// (see [`Popularity::scaled`](megastream_flow::score::Popularity::scaled)).
///
/// # Panics
///
/// Panics if `rate` is zero.
pub fn sample_packets(
    records: impl IntoIterator<Item = FlowRecord>,
    rate: u64,
    seed: u64,
) -> Vec<FlowRecord> {
    assert!(rate > 0, "sampling rate must be non-zero");
    let mut rng = StdRng::seed_from_u64(seed);
    let p = 1.0 / rate as f64;
    records
        .into_iter()
        .filter_map(|rec| {
            let kept = dist::binomial(&mut rng, rec.packets, p);
            if kept == 0 {
                return None;
            }
            let mut out = rec;
            out.bytes = (rec.bytes as u128 * kept as u128 / rec.packets.max(1) as u128) as u64;
            out.packets = kept;
            Some(out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a: Vec<_> = FlowTraceGenerator::new(FlowTraceConfig::default()).collect();
        let b: Vec<_> = FlowTraceGenerator::new(FlowTraceConfig::default()).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn rate_roughly_matches_config() {
        let config = FlowTraceConfig {
            flows_per_sec: 200.0,
            duration: TimeDelta::from_secs(60),
            ..Default::default()
        };
        let n = FlowTraceGenerator::new(config).count();
        let expected = 200.0 * 60.0;
        assert!(
            (n as f64 - expected).abs() / expected < 0.15,
            "{n} records vs expected {expected}"
        );
    }

    #[test]
    fn traffic_is_skewed() {
        use std::collections::HashMap;
        let trace: Vec<_> = FlowTraceGenerator::new(FlowTraceConfig::default()).collect();
        let mut per_src: HashMap<_, usize> = HashMap::new();
        for r in &trace {
            *per_src.entry(r.src_ip).or_default() += 1;
        }
        let mut counts: Vec<usize> = per_src.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The top source sends far more than the median source.
        let median = counts[counts.len() / 2];
        assert!(counts[0] > median * 5, "top {} median {median}", counts[0]);
    }

    #[test]
    fn diurnal_modulation_changes_rate() {
        let config = FlowTraceConfig {
            flows_per_sec: 50.0,
            duration: TimeDelta::from_hours(24),
            diurnal_amplitude: 0.9,
            internal_hosts: 50,
            external_hosts: 50,
            ..Default::default()
        };
        let trace: Vec<_> = FlowTraceGenerator::new(config).collect();
        // Count flows in the trough hour (08:00) vs peak hour (20:00).
        let hour = |h: u64| {
            TimeWindow::starting_at(Timestamp::from_secs(h * 3600), TimeDelta::from_hours(1))
        };
        let trough = trace.iter().filter(|r| hour(8).contains(r.ts)).count();
        let peak = trace.iter().filter(|r| hour(20).contains(r.ts)).count();
        assert!(peak > trough * 3, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn ddos_event_floods_target() {
        let target: Ipv4Addr = "100.64.0.1".parse().unwrap();
        let window = TimeWindow::starting_at(Timestamp::from_secs(60), TimeDelta::from_secs(60));
        let config = FlowTraceConfig {
            duration: TimeDelta::from_secs(180),
            events: vec![TrafficEvent::Ddos {
                window,
                target,
                target_port: 53,
                flows_per_sec: 500.0,
            }],
            ..Default::default()
        };
        let trace: Vec<_> = FlowTraceGenerator::new(config).collect();
        let to_target_during = trace
            .iter()
            .filter(|r| r.dst_ip == target && window.contains(r.ts))
            .count();
        let to_target_outside = trace
            .iter()
            .filter(|r| r.dst_ip == target && !window.contains(r.ts))
            .count();
        assert!(
            to_target_during > 10_000,
            "only {to_target_during} attack flows"
        );
        assert!(to_target_during > to_target_outside * 100);
    }

    #[test]
    fn portscan_event_touches_many_ports() {
        use std::collections::HashSet;
        let source: Ipv4Addr = "6.6.6.6".parse().unwrap();
        let target: Ipv4Addr = "10.0.0.99".parse().unwrap();
        let window = TimeWindow::starting_at(Timestamp::ZERO, TimeDelta::from_secs(120));
        let config = FlowTraceConfig {
            duration: TimeDelta::from_secs(120),
            events: vec![TrafficEvent::PortScan {
                window,
                source,
                target,
                flows_per_sec: 100.0,
            }],
            ..Default::default()
        };
        let trace: Vec<_> = FlowTraceGenerator::new(config).collect();
        let ports: HashSet<u16> = trace
            .iter()
            .filter(|r| r.src_ip == source && r.dst_ip == target)
            .map(|r| r.dst_port)
            .collect();
        assert!(ports.len() > 1_000, "only {} distinct ports", ports.len());
    }

    #[test]
    fn packet_sampling_thins_and_preserves_mass_in_expectation() {
        let config = FlowTraceConfig {
            flows_per_sec: 500.0,
            duration: TimeDelta::from_secs(120),
            ..Default::default()
        };
        let trace: Vec<_> = FlowTraceGenerator::new(config).collect();
        let total_packets: u64 = trace.iter().map(|r| r.packets).sum();
        let sampled = sample_packets(trace.clone(), 100, 7);
        assert!(sampled.len() < trace.len());
        let sampled_packets: u64 = sampled.iter().map(|r| r.packets).sum();
        let scaled = sampled_packets * 100;
        let rel_err = (scaled as f64 - total_packets as f64).abs() / total_packets as f64;
        assert!(rel_err < 0.25, "relative error {rel_err}");
    }

    #[test]
    fn address_pool_has_prefix_locality() {
        use std::collections::HashSet;
        let mut rng = StdRng::seed_from_u64(3);
        let pool = hierarchical_pool(&mut rng, 1_000, 10);
        let slash8: HashSet<u8> = pool.iter().map(|a| a.octets()[0]).collect();
        let slash24: HashSet<[u8; 3]> = pool
            .iter()
            .map(|a| [a.octets()[0], a.octets()[1], a.octets()[2]])
            .collect();
        // Many hosts share few /8s; /24 diversity is bounded too.
        assert!(slash8.len() <= 4, "{} /8s", slash8.len());
        assert!(slash24.len() < 500, "{} /24s", slash24.len());
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn sampling_rejects_zero_rate() {
        let _ = sample_packets(Vec::new(), 0, 1);
    }
}
