//! Synthetic smart-factory sensor workloads.
//!
//! Substitutes for the factory data feeds of §II-A. Machines expose three
//! scalar channels (temperature, vibration, current) sampled at a
//! configurable rate, with an optional *degradation model* — a failure
//! precursor that drifts temperature and vibration upward until a failure
//! time, which is what predictive-maintenance applications look for.
//! Cameras are modelled as byte-rate sources using the paper's own numbers:
//! "a single 3D camera can produce 52 GB/h of uncompressed data and a
//! high-resolution camera can produce 17.5 GB/h".

use rand::rngs::StdRng;
use rand::SeedableRng;

use megastream_flow::time::{TimeDelta, Timestamp};

use crate::dist;

/// A scalar sensor channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorChannel {
    /// Bearing temperature, °C.
    Temperature,
    /// Vibration RMS, mm/s.
    Vibration,
    /// Motor current draw, A.
    Current,
}

impl SensorChannel {
    /// All channels.
    pub const ALL: [SensorChannel; 3] = [
        SensorChannel::Temperature,
        SensorChannel::Vibration,
        SensorChannel::Current,
    ];

    /// Healthy-operation baseline for the channel.
    pub fn baseline(self) -> f64 {
        match self {
            SensorChannel::Temperature => 60.0,
            SensorChannel::Vibration => 2.0,
            SensorChannel::Current => 12.0,
        }
    }

    /// Noise standard deviation around the baseline.
    pub fn noise_sd(self) -> f64 {
        match self {
            SensorChannel::Temperature => 0.8,
            SensorChannel::Vibration => 0.25,
            SensorChannel::Current => 0.5,
        }
    }
}

impl std::fmt::Display for SensorChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SensorChannel::Temperature => "temperature",
            SensorChannel::Vibration => "vibration",
            SensorChannel::Current => "current",
        };
        f.write_str(s)
    }
}

/// One sensor observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// Index of the machine producing the reading.
    pub machine: usize,
    /// Which channel.
    pub channel: SensorChannel,
    /// Observation time.
    pub ts: Timestamp,
    /// Observed value.
    pub value: f64,
}

/// Camera classes with the paper's uncompressed data rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CameraKind {
    /// 3D camera: 52 GB/h.
    ThreeD,
    /// High-resolution camera: 17.5 GB/h.
    HighRes,
}

impl CameraKind {
    /// Uncompressed data rate in bytes per second.
    pub fn bytes_per_sec(self) -> u64 {
        match self {
            // 52 GB/h and 17.5 GB/h, decimal gigabytes as in the paper.
            CameraKind::ThreeD => 52_000_000_000 / 3600,
            CameraKind::HighRes => 17_500_000_000 / 3600,
        }
    }
}

/// A machine's degradation (failure-precursor) model: from `onset`, the
/// temperature and vibration drift upward linearly, reaching `severity`
/// times the channel baseline at `failure`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// When drift begins.
    pub onset: Timestamp,
    /// When the machine would fail.
    pub failure: Timestamp,
    /// Drift magnitude at failure, as a fraction of the baseline
    /// (e.g. `0.5` → +50 % at failure time).
    pub severity: f64,
}

impl Degradation {
    /// Drift factor (≥ 0) at time `ts`.
    fn drift(&self, ts: Timestamp) -> f64 {
        if ts <= self.onset {
            return 0.0;
        }
        let span = self.failure.saturating_since(self.onset).as_secs_f64();
        if span <= 0.0 {
            return self.severity;
        }
        let progress = ts.saturating_since(self.onset).as_secs_f64() / span;
        self.severity * progress.min(1.5)
    }
}

/// Configuration and state of a factory sensor workload.
///
/// ```
/// use megastream_workloads::factory::FactoryWorkload;
/// use megastream_flow::time::{TimeDelta, Timestamp};
///
/// let mut factory = FactoryWorkload::new(4, TimeDelta::from_millis(100), 7);
/// let readings = factory.readings_until(Timestamp::from_secs(1));
/// // 4 machines × 3 channels × 10 ticks.
/// assert_eq!(readings.len(), 4 * 3 * 10);
/// ```
#[derive(Debug, Clone)]
pub struct FactoryWorkload {
    machines: usize,
    sample_interval: TimeDelta,
    rng: StdRng,
    next_tick: Timestamp,
    degradations: Vec<Option<Degradation>>,
    /// Smoothed state per (machine, channel) for mean-reverting noise.
    state: Vec<f64>,
}

impl FactoryWorkload {
    /// Creates a workload of `machines` healthy machines sampled every
    /// `sample_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is zero or the interval is zero.
    pub fn new(machines: usize, sample_interval: TimeDelta, seed: u64) -> Self {
        assert!(machines > 0, "at least one machine required");
        assert!(
            !sample_interval.is_zero(),
            "sample interval must be non-zero"
        );
        let state = (0..machines * SensorChannel::ALL.len())
            .map(|i| SensorChannel::ALL[i % 3].baseline())
            .collect();
        FactoryWorkload {
            machines,
            sample_interval,
            rng: StdRng::seed_from_u64(seed),
            next_tick: Timestamp::ZERO,
            degradations: vec![None; machines],
            state,
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Installs a degradation model on one machine.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn degrade(&mut self, machine: usize, degradation: Degradation) {
        assert!(machine < self.machines, "machine {machine} out of range");
        self.degradations[machine] = Some(degradation);
    }

    /// Produces all readings with `ts < until`, advancing internal time.
    pub fn readings_until(&mut self, until: Timestamp) -> Vec<SensorReading> {
        let mut out = Vec::new();
        while self.next_tick < until {
            let ts = self.next_tick;
            for m in 0..self.machines {
                for (ci, channel) in SensorChannel::ALL.into_iter().enumerate() {
                    let idx = m * 3 + ci;
                    let baseline = channel.baseline();
                    // Mean-reverting noise (discrete Ornstein–Uhlenbeck).
                    let noise = dist::standard_normal(&mut self.rng) * channel.noise_sd();
                    self.state[idx] += 0.2 * (baseline - self.state[idx]) + noise * 0.5;
                    let drift = match (self.degradations[m], channel) {
                        (Some(d), SensorChannel::Temperature | SensorChannel::Vibration) => {
                            baseline * d.drift(ts)
                        }
                        _ => 0.0,
                    };
                    out.push(SensorReading {
                        machine: m,
                        channel,
                        ts,
                        value: self.state[idx] + drift,
                    });
                }
            }
            self.next_tick += self.sample_interval;
        }
        out
    }

    /// Bytes a camera of `kind` produces over `span`.
    pub fn camera_bytes(kind: CameraKind, span: TimeDelta) -> u64 {
        (kind.bytes_per_sec() as u128 * span.as_micros() as u128 / 1_000_000) as u64
    }

    /// Total raw sensor byte rate of the whole factory (readings encoded at
    /// `bytes_per_reading`), per second.
    pub fn sensor_bytes_per_sec(&self, bytes_per_reading: u64) -> u64 {
        let per_tick = self.machines as u64 * SensorChannel::ALL.len() as u64 * bytes_per_reading;
        (per_tick as u128 * 1_000_000 / self.sample_interval.as_micros() as u128) as u64
    }

    /// Jittered sample of per-second readings for one machine channel —
    /// convenience for feeding scalar primitives.
    pub fn channel_series(
        &mut self,
        machine: usize,
        channel: SensorChannel,
        until: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        self.readings_until(until)
            .into_iter()
            .filter(|r| r.machine == machine && r.channel == channel)
            .map(|r| (r.ts, r.value))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_machine_stays_near_baseline() {
        let mut f = FactoryWorkload::new(1, TimeDelta::from_millis(100), 1);
        let readings = f.readings_until(Timestamp::from_secs(60));
        let temps: Vec<f64> = readings
            .iter()
            .filter(|r| r.channel == SensorChannel::Temperature)
            .map(|r| r.value)
            .collect();
        let mean = temps.iter().sum::<f64>() / temps.len() as f64;
        assert!((mean - 60.0).abs() < 2.0, "mean temperature {mean}");
        assert!(temps.iter().all(|t| (40.0..90.0).contains(t)));
    }

    #[test]
    fn degradation_raises_temperature_and_vibration() {
        let mut f = FactoryWorkload::new(2, TimeDelta::from_millis(500), 2);
        f.degrade(
            1,
            Degradation {
                onset: Timestamp::from_secs(10),
                failure: Timestamp::from_secs(60),
                severity: 0.5,
            },
        );
        let readings = f.readings_until(Timestamp::from_secs(60));
        let late = |m: usize, ch: SensorChannel| -> f64 {
            let vals: Vec<f64> = readings
                .iter()
                .filter(|r| r.machine == m && r.channel == ch && r.ts >= Timestamp::from_secs(55))
                .map(|r| r.value)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        // Degraded machine runs hot and shaky; healthy one does not.
        assert!(late(1, SensorChannel::Temperature) > 80.0);
        assert!(late(0, SensorChannel::Temperature) < 65.0);
        assert!(late(1, SensorChannel::Vibration) > late(0, SensorChannel::Vibration) + 0.5);
        // Current unaffected by this failure mode.
        assert!((late(1, SensorChannel::Current) - 12.0).abs() < 2.0);
    }

    #[test]
    fn camera_rates_match_the_paper() {
        // 52 GB/h → one hour of 3D camera output.
        let hour = TimeDelta::from_hours(1);
        let b3d = FactoryWorkload::camera_bytes(CameraKind::ThreeD, hour);
        assert!((b3d as i64 - 52_000_000_000i64).abs() < 4000);
        let bhr = FactoryWorkload::camera_bytes(CameraKind::HighRes, hour);
        assert!((bhr as i64 - 17_500_000_000i64).abs() < 4000);
        // Scales linearly with the window.
        assert_eq!(
            FactoryWorkload::camera_bytes(CameraKind::ThreeD, TimeDelta::from_secs(1)),
            CameraKind::ThreeD.bytes_per_sec()
        );
    }

    #[test]
    fn byte_rate_accounting() {
        let f = FactoryWorkload::new(10, TimeDelta::from_millis(100), 1);
        // 10 machines × 3 channels × 10 Hz × 16 B = 4800 B/s.
        assert_eq!(f.sensor_bytes_per_sec(16), 4800);
    }

    #[test]
    fn readings_are_deterministic_and_time_ordered() {
        let run = || {
            let mut f = FactoryWorkload::new(3, TimeDelta::from_millis(200), 9);
            f.readings_until(Timestamp::from_secs(5))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn channel_series_filters() {
        let mut f = FactoryWorkload::new(2, TimeDelta::from_millis(500), 3);
        let series = f.channel_series(0, SensorChannel::Vibration, Timestamp::from_secs(2));
        assert_eq!(series.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degrade_rejects_bad_machine() {
        let mut f = FactoryWorkload::new(1, TimeDelta::from_millis(100), 1);
        f.degrade(
            5,
            Degradation {
                onset: Timestamp::ZERO,
                failure: Timestamp::from_secs(1),
                severity: 0.1,
            },
        );
    }
}
