//! Synthetic partition-access traces for adaptive replication (§VII).
//!
//! The paper evaluates its ski-rental replication policies "on an
//! enterprise-level query trace" that is not public. What the policies
//! actually depend on is the *distribution of per-partition future
//! accesses* ("the aggregate result size for older partitions are from a
//! distribution that can be used to predict future access for partitions
//! created at a later date"). This generator draws each partition's access
//! count from a configurable [`AccessDistribution`], spreads the accesses
//! over time with exponential gaps, and attaches log-normal result volumes
//! — sweeping the distribution family reproduces the regimes the paper's
//! cited ski-rental literature distinguishes (worst-case/adversarial vs
//! known-distribution average case).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use megastream_flow::time::{TimeDelta, Timestamp};

use crate::dist;

/// Distribution of the number of times a partition will be accessed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessDistribution {
    /// Every partition is accessed exactly `n` times.
    Fixed(u64),
    /// Geometric with continuation probability `p` (mean `p/(1-p)`), i.e.
    /// after each access another follows with probability `p`. Memoryless —
    /// the regime where the deterministic break-even rule is optimal.
    Geometric(f64),
    /// Discretized exponential with the given mean (light tail).
    Exponential(f64),
    /// Discretized Pareto with scale 1 and the given shape (heavy tail:
    /// most partitions cold, a few extremely hot).
    Pareto(f64),
    /// Uniform over `0..=max`.
    Uniform(u64),
}

impl AccessDistribution {
    /// Draws one access count.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        match self {
            AccessDistribution::Fixed(n) => n,
            AccessDistribution::Geometric(p) => {
                assert!((0.0..1.0).contains(&p), "geometric p outside [0,1)");
                let mut n = 0;
                while rng.gen::<f64>() < p {
                    n += 1;
                }
                n
            }
            AccessDistribution::Exponential(mean) => dist::exponential(rng, mean).round() as u64,
            AccessDistribution::Pareto(shape) => {
                (dist::pareto(rng, 1.0, shape) - 1.0).round().min(1e7) as u64
            }
            AccessDistribution::Uniform(max) => rng.gen_range(0..=max),
        }
    }

    /// The distribution's mean (expected accesses per partition).
    pub fn mean(self) -> f64 {
        match self {
            AccessDistribution::Fixed(n) => n as f64,
            AccessDistribution::Geometric(p) => p / (1.0 - p),
            AccessDistribution::Exponential(mean) => mean,
            AccessDistribution::Pareto(shape) => {
                if shape > 1.0 {
                    shape / (shape - 1.0) - 1.0
                } else {
                    f64::INFINITY
                }
            }
            AccessDistribution::Uniform(max) => max as f64 / 2.0,
        }
    }
}

/// One recorded remote access to a partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionAccess {
    /// The accessed partition.
    pub partition: usize,
    /// When the access happened.
    pub ts: Timestamp,
    /// Bytes shipped to answer the query if not replicated.
    pub result_bytes: u64,
}

/// Configuration of a query-trace generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTraceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of partitions.
    pub partitions: usize,
    /// Per-partition access-count distribution.
    pub accesses: AccessDistribution,
    /// Mean gap between consecutive accesses to the same partition.
    pub mean_gap: TimeDelta,
    /// Median result size per access, bytes (log-normal, σ = 0.7).
    pub median_result_bytes: u64,
}

impl Default for QueryTraceConfig {
    fn default() -> Self {
        QueryTraceConfig {
            seed: 1,
            partitions: 100,
            accesses: AccessDistribution::Geometric(0.8),
            mean_gap: TimeDelta::from_secs(60),
            median_result_bytes: 1_000_000,
        }
    }
}

impl QueryTraceConfig {
    /// Generates the access trace, sorted by time.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn generate(&self) -> Vec<PartitionAccess> {
        assert!(self.partitions > 0, "at least one partition required");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mu = (self.median_result_bytes.max(1) as f64).ln();
        let mut out = Vec::new();
        for partition in 0..self.partitions {
            let n = self.accesses.sample(&mut rng);
            // Partitions are "created" staggered over time.
            let mut ts = Timestamp::from_micros(
                (partition as u64) * self.mean_gap.as_micros() / self.partitions.max(1) as u64,
            );
            for _ in 0..n {
                let gap = dist::exponential(&mut rng, self.mean_gap.as_secs_f64());
                ts += TimeDelta::from_micros((gap * 1e6) as u64);
                let result_bytes = dist::log_normal(&mut rng, mu, 0.7).min(1e12) as u64;
                out.push(PartitionAccess {
                    partition,
                    ts,
                    result_bytes: result_bytes.max(1),
                });
            }
        }
        out.sort_by_key(|a| (a.ts, a.partition));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometric_mean_matches() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = AccessDistribution::Geometric(0.8);
        let mean: f64 = (0..50_000).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / 50_000.0;
        assert!((mean - d.mean()).abs() < 0.2, "mean {mean} vs {}", d.mean());
    }

    #[test]
    fn fixed_and_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(AccessDistribution::Fixed(7).sample(&mut rng), 7);
        for _ in 0..100 {
            assert!(AccessDistribution::Uniform(10).sample(&mut rng) <= 10);
        }
        assert_eq!(AccessDistribution::Fixed(7).mean(), 7.0);
        assert_eq!(AccessDistribution::Uniform(10).mean(), 5.0);
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = AccessDistribution::Pareto(1.2);
        let counts: Vec<u64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        let zeros = counts.iter().filter(|&&c| c == 0).count();
        let max = counts.iter().max().copied().unwrap();
        // Most partitions cold, some extremely hot.
        assert!(zeros > 3_000, "{zeros} cold partitions");
        assert!(max > 100, "max {max}");
    }

    #[test]
    fn trace_sorted_and_deterministic() {
        let config = QueryTraceConfig::default();
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(a.iter().all(|acc| acc.partition < config.partitions));
        assert!(a.iter().all(|acc| acc.result_bytes >= 1));
    }

    #[test]
    fn trace_volume_tracks_distribution_mean() {
        let config = QueryTraceConfig {
            partitions: 2_000,
            accesses: AccessDistribution::Exponential(5.0),
            ..Default::default()
        };
        let trace = config.generate();
        let per_partition = trace.len() as f64 / config.partitions as f64;
        assert!((per_partition - 5.0).abs() < 0.5, "mean {per_partition}");
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn rejects_zero_partitions() {
        let config = QueryTraceConfig {
            partitions: 0,
            ..Default::default()
        };
        let _ = config.generate();
    }
}
